// Parallel compression engine (DESIGN.md §8): ThreadPool bounded-queue
// semantics, ReorderWindow ordered delivery + backpressure,
// ParallelBlockPipeline resequencing under adversarial completion order,
// and the ParallelSender facade — serial-equivalent output, strictly
// ordered frames on the wire, registry freezing, and the 8-worker ×
// 500-block mixed-workload stress run over a faulty transport.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include "adaptive/pipeline.hpp"
#include "compress/frame.hpp"
#include "engine/block_pipeline.hpp"
#include "engine/parallel_sender.hpp"
#include "engine/reorder_window.hpp"
#include "engine/thread_pool.hpp"
#include "netsim/link.hpp"
#include "obs/metrics.hpp"
#include "transport/fault_transport.hpp"
#include "transport/sim_transport.hpp"
#include "util/error.hpp"
#include "workloads/molecular.hpp"
#include "workloads/transactions.hpp"

namespace acex {
namespace {

using engine::ParallelBlockPipeline;
using engine::ParallelSender;
using engine::ReorderWindow;
using engine::ThreadPool;

// ------------------------------------------------------------ ThreadPool

TEST(EngineThreadPool, RunsEveryTaskBeforeJoin) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4, 8);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor drains
  EXPECT_EQ(ran.load(), 100);
}

TEST(EngineThreadPool, ZeroThreadsResolvesToHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.queue_capacity(), 2 * pool.size());
}

TEST(EngineThreadPool, TrySubmitRefusesWhenQueueFull) {
  ThreadPool pool(1, 1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::promise<void> started;
  // Occupy the single worker until the gate opens...
  pool.submit([opened, &started] {
    started.set_value();
    opened.wait();
  });
  started.get_future().wait();
  // ...fill the single queue slot...
  ASSERT_TRUE(pool.try_submit([] {}));
  // ...and the queue must now refuse further work.
  EXPECT_FALSE(pool.try_submit([] {}));
  gate.set_value();
}

TEST(EngineThreadPool, BlockingSubmitWaitsForASlot) {
  ThreadPool pool(1, 1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::promise<void> started;
  pool.submit([opened, &started] {
    started.set_value();
    opened.wait();
  });
  started.get_future().wait();
  pool.submit([] {});  // fills the queue slot
  std::atomic<bool> accepted{false};
  std::thread producer([&] {
    pool.submit([] {});  // must block until the worker frees a slot
    accepted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(accepted.load());
  gate.set_value();
  producer.join();
  EXPECT_TRUE(accepted.load());
}

// -------------------------------------------------------- ReorderWindow

TEST(EngineReorderWindow, DeliversInSequenceOrder) {
  ReorderWindow<int> window(8);
  window.push(2, 20);
  window.push(0, 0);
  window.push(1, 10);
  EXPECT_EQ(window.pop(), 0);
  EXPECT_EQ(window.pop(), 10);
  EXPECT_EQ(window.pop(), 20);
  EXPECT_EQ(window.next_sequence(), 3u);
}

TEST(EngineReorderWindow, TryPopOnlyWhenHeadReady) {
  ReorderWindow<int> window(8);
  int out = -1;
  EXPECT_FALSE(window.try_pop(out));
  window.push(1, 10);
  EXPECT_FALSE(window.try_pop(out));  // head (0) still missing
  window.push(0, 0);
  EXPECT_TRUE(window.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(window.try_pop(out));
  EXPECT_EQ(out, 10);
  EXPECT_FALSE(window.try_pop(out));
}

TEST(EngineReorderWindow, PushFarAheadBlocksUntilConsumerCatchesUp) {
  ReorderWindow<int> window(2);
  window.push(0, 0);
  window.push(1, 10);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    window.push(2, 20);  // sequence 2 is outside [0, 2): must block
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pushed.load());  // backpressure held it
  EXPECT_EQ(window.pop(), 0);  // base advances, slot frees
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(window.pop(), 10);
  EXPECT_EQ(window.pop(), 20);
}

TEST(EngineReorderWindow, DuplicateSequenceThrows) {
  ReorderWindow<int> window(4);
  window.push(0, 0);
  EXPECT_THROW(window.push(0, 1), ConfigError);
  EXPECT_EQ(window.pop(), 0);
  EXPECT_THROW(window.push(0, 2), ConfigError);  // already delivered
}

TEST(EngineReorderWindow, CloseReleasesBlockedProducers) {
  ReorderWindow<int> window(1);
  window.push(0, 0);
  std::thread producer([&] { window.push(1, 10); });  // blocks
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  window.close();
  producer.join();  // released, value discarded
  SUCCEED();
}

TEST(EngineReorderWindow, ExactCapacityOccupancyAndBoundary) {
  // The window's memory bound, pinned at the exact edge: sequence
  // capacity-1 is the last admissible push while base == 0, capacity
  // itself must block, and each pop frees exactly one slot. The global
  // occupancy gauge is checked as a delta (other windows may coexist).
  constexpr std::size_t kCap = 4;
  obs::Gauge& gauge =
      obs::MetricsRegistry::global().gauge("acex.engine.reorder_occupancy");
  const std::int64_t before = gauge.value();
  {
    ReorderWindow<int> window(kCap);
    EXPECT_EQ(window.capacity(), kCap);
    for (std::size_t s = kCap; s-- > 0;) {  // fill out of order, no block
      window.push(s, static_cast<int>(s * 10));
    }
    EXPECT_EQ(window.buffered(), kCap);
    EXPECT_EQ(gauge.value() - before, static_cast<std::int64_t>(kCap));

    std::atomic<bool> pushed{false};
    std::thread producer([&] {
      window.push(kCap, static_cast<int>(kCap * 10));  // one past: blocks
      pushed.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(pushed.load());
    EXPECT_EQ(window.pop(), 0);  // frees exactly one slot
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_EQ(window.buffered(), kCap);  // back at the exact bound

    for (std::size_t s = 1; s <= kCap; ++s) {
      EXPECT_EQ(window.pop(), static_cast<int>(s * 10));
    }
    EXPECT_EQ(window.buffered(), 0u);
    EXPECT_EQ(window.next_sequence(), kCap + 1);
    EXPECT_EQ(gauge.value(), before);
  }
  EXPECT_EQ(gauge.value(), before);  // empty-window destruction: no drift
}

// -------------------------------------------------- ParallelBlockPipeline

TEST(EnginePipeline, ResequencesOutOfOrderCompletions) {
  ThreadPool pool(4, 16);
  ParallelBlockPipeline<std::uint64_t> pipeline(pool, 16);
  constexpr std::uint64_t kJobs = 64;
  // Earlier jobs sleep longer, so completion order inverts submission
  // order as hard as the pool allows.  The driver drains the window
  // whenever it fills, as ParallelBlockPipeline's contract requires.
  std::vector<std::uint64_t> collected;
  for (std::uint64_t i = 0; i < kJobs; ++i) {
    while (pipeline.in_flight() >= pipeline.window_capacity()) {
      collected.push_back(pipeline.collect());
    }
    pipeline.submit([i] {
      std::this_thread::sleep_for(
          std::chrono::microseconds((kJobs - i) * 20));
      return i;
    });
  }
  while (collected.size() < kJobs) {
    collected.push_back(pipeline.collect());
  }
  for (std::uint64_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(collected[i], i);
  }
  EXPECT_EQ(pipeline.in_flight(), 0u);
}

TEST(EnginePipeline, DestructorDrainsInFlightJobs) {
  std::atomic<int> ran{0};
  ThreadPool pool(2, 8);
  {
    ParallelBlockPipeline<int> pipeline(pool, 8);
    for (int i = 0; i < 8; ++i) {
      pipeline.submit([&ran, i] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        ran.fetch_add(1);
        return i;
      });
    }
    // Collect nothing: the dtor must wait for all 8 and discard them.
  }
  EXPECT_EQ(ran.load(), 8);
}

// ------------------------------------------------------- CodecRegistry

TEST(EngineRegistry, FreezeRejectsLateRegistration) {
  CodecRegistry registry = CodecRegistry::with_builtins();
  EXPECT_FALSE(registry.frozen());
  registry.register_factory(static_cast<MethodId>(200),
                            [] { return make_codec(MethodId::kNone); });
  registry.freeze();
  EXPECT_TRUE(registry.frozen());
  EXPECT_THROW(registry.register_factory(
                   static_cast<MethodId>(201),
                   [] { return make_codec(MethodId::kNone); }),
               ConfigError);
  // Reads keep working.
  EXPECT_TRUE(registry.contains(static_cast<MethodId>(200)));
  EXPECT_NE(registry.create(MethodId::kHuffman), nullptr);
}

TEST(EngineRegistry, ConcurrentCreateOnFrozenRegistryIsSafe) {
  CodecRegistry registry = CodecRegistry::with_builtins();
  registry.freeze();
  std::vector<std::thread> readers;
  std::atomic<int> created{0};
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&registry, &created] {
      for (int i = 0; i < 50; ++i) {
        const CodecPtr codec = registry.create(MethodId::kLempelZiv);
        if (codec) created.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(created.load(), 8 * 50);
}

// ------------------------------------------------------- ParallelSender

netsim::LinkParams flat_link(double bps) {
  netsim::LinkParams p;
  p.bandwidth_Bps = bps;
  p.jitter_frac = 0;
  p.latency_s = 0;
  return p;
}

adaptive::AdaptiveConfig engine_config(std::size_t workers) {
  adaptive::AdaptiveConfig config;
  config.async_sampling = false;  // deterministic
  config.decision.block_size = 4096;
  config.decision.sample_size = 1024;
  config.worker_threads = workers;
  return config;
}

/// Mixed molecular + transactional bytes: compressible and incompressible
/// regions interleaved, so the selector exercises several methods.
Bytes mixed_workload(std::size_t blocks, std::size_t block_size) {
  workloads::MolecularConfig mc;
  mc.atom_count = 512;
  workloads::MolecularGenerator molecular(mc);
  workloads::TransactionGenerator transactions(7);
  Bytes data;
  data.reserve(blocks * block_size);
  while (data.size() < blocks * block_size) {
    const Bytes snapshot = molecular.pbio_snapshot();
    data.insert(data.end(), snapshot.begin(), snapshot.end());
    molecular.step();
    const Bytes text = transactions.text_block(block_size);
    data.insert(data.end(), text.begin(), text.end());
  }
  data.resize(blocks * block_size);
  return data;
}

class ParallelSenderTest : public ::testing::Test {
 protected:
  void wire(double bps = 1e8) {
    forward_.emplace(flat_link(bps), 1);
    reverse_.emplace(flat_link(1e9), 2);
    duplex_.emplace(*forward_, *reverse_, clock_);
  }

  VirtualClock clock_;
  std::optional<netsim::SimLink> forward_, reverse_;
  std::optional<transport::SimDuplex> duplex_;
};

TEST_F(ParallelSenderTest, SingleWorkerDelegatesToSerialPath) {
  wire();
  ParallelSender sender(duplex_->a(), engine_config(1));
  EXPECT_EQ(sender.worker_count(), 1u);
  const Bytes data = mixed_workload(8, 4096);
  const auto stream = sender.send_all(data);
  EXPECT_EQ(stream.blocks.size(), 8u);
  // Serial path never freezes the registry.
  EXPECT_FALSE(sender.sender().registry().frozen());
  adaptive::AdaptiveReceiver receiver(duplex_->b());
  EXPECT_EQ(receiver.receive_available(), data);
}

TEST_F(ParallelSenderTest, ParallelPayloadMatchesSerialByteForByte) {
  const Bytes data = mixed_workload(32, 4096);

  // Serial reference.
  VirtualClock serial_clock;
  netsim::SimLink sf(flat_link(1e8), 1), sr(flat_link(1e9), 2);
  transport::SimDuplex serial_duplex(sf, sr, serial_clock);
  adaptive::AdaptiveSender serial(serial_duplex.a(), engine_config(1));
  serial.send_all(data);
  adaptive::AdaptiveReceiver serial_rx(serial_duplex.b());
  const Bytes serial_payload = serial_rx.receive_available();
  ASSERT_EQ(serial_payload, data);

  // Parallel run, 4 workers.
  wire();
  ParallelSender parallel(duplex_->a(), engine_config(4));
  EXPECT_EQ(parallel.worker_count(), 4u);
  const auto stream = parallel.send_all(data);
  EXPECT_EQ(stream.blocks.size(), 32u);
  EXPECT_TRUE(parallel.sender().registry().frozen());
  adaptive::AdaptiveReceiver receiver(duplex_->b());
  EXPECT_EQ(receiver.receive_available(), serial_payload);
}

TEST_F(ParallelSenderTest, FramesLeaveInStrictlyIncreasingSequenceOrder) {
  wire();
  ParallelSender sender(duplex_->a(), engine_config(4));
  const Bytes data = mixed_workload(40, 4096);
  sender.send_all(data);

  std::uint64_t expected = 0;
  while (auto message = duplex_->b().receive()) {
    const Frame frame = frame_parse(*message);
    ASSERT_TRUE(frame.has_sequence);
    EXPECT_EQ(frame.sequence, expected) << "frame out of order on the wire";
    ++expected;
  }
  EXPECT_EQ(expected, 40u);
}

TEST_F(ParallelSenderTest, ReportsMatchBlockOrderAndSizes) {
  wire();
  ParallelSender sender(duplex_->a(), engine_config(4));
  const Bytes data = mixed_workload(16, 4096);
  const auto stream = sender.send_all(data);
  ASSERT_EQ(stream.blocks.size(), 16u);
  for (std::size_t i = 0; i < stream.blocks.size(); ++i) {
    EXPECT_EQ(stream.blocks[i].index, i);
    EXPECT_EQ(stream.blocks[i].original_size, 4096u);
    EXPECT_GT(stream.blocks[i].wire_size, 0u);
  }
  EXPECT_EQ(stream.original_bytes, data.size());
}

TEST_F(ParallelSenderTest, FixedMethodRoundTripsAndStaysFixed) {
  wire();
  ParallelSender sender(duplex_->a(), engine_config(4));
  const Bytes data = mixed_workload(12, 4096);
  const auto stream =
      sender.send_all_fixed(data, MethodId::kBurrowsWheeler);
  ASSERT_EQ(stream.blocks.size(), 12u);
  for (const auto& block : stream.blocks) {
    EXPECT_EQ(block.method, MethodId::kBurrowsWheeler);
    EXPECT_FALSE(block.fallback);
  }
  adaptive::AdaptiveReceiver receiver(duplex_->b());
  EXPECT_EQ(receiver.receive_available(), data);
}

/// Always-throwing codec (mirrors test_fault's): worker-side failures on
/// the no-degradation baseline path must surface on the driver thread.
class ThrowingCodec final : public Codec {
 public:
  MethodId id() const noexcept override { return MethodId::kBurrowsWheeler; }
  Bytes compress(ByteView) override { throw DecodeError("codec exploded"); }
  Bytes decompress(ByteView) override { throw DecodeError("codec exploded"); }
};

TEST_F(ParallelSenderTest, FixedSendPropagatesWorkerCodecFailure) {
  wire();
  auto config = engine_config(4);
  ParallelSender sender(duplex_->a(), config);
  sender.sender().registry().register_factory(
      MethodId::kBurrowsWheeler, [] { return std::make_unique<ThrowingCodec>(); });
  const Bytes data = mixed_workload(8, 4096);
  EXPECT_THROW(sender.send_all_fixed(data, MethodId::kBurrowsWheeler),
               DecodeError);
}

TEST_F(ParallelSenderTest, AdaptiveSendDegradesInsteadOfThrowing) {
  wire();
  ParallelSender sender(duplex_->a(), engine_config(4));
  sender.sender().registry().register_factory(
      MethodId::kBurrowsWheeler, [] { return std::make_unique<ThrowingCodec>(); });
  sender.sender().registry().register_factory(
      MethodId::kLempelZiv, [] { return std::make_unique<ThrowingCodec>(); });
  sender.sender().registry().register_factory(
      MethodId::kHuffman, [] { return std::make_unique<ThrowingCodec>(); });
  const Bytes data = mixed_workload(10, 4096);
  const auto stream = sender.send_all(data);  // must not throw
  EXPECT_EQ(stream.blocks.size(), 10u);
  adaptive::AdaptiveReceiver receiver(duplex_->b());
  EXPECT_EQ(receiver.receive_available(), data);
}

TEST_F(ParallelSenderTest, EmptyStreamIsANoOp) {
  wire();
  ParallelSender sender(duplex_->a(), engine_config(4));
  const auto stream = sender.send_all(Bytes{});
  EXPECT_TRUE(stream.blocks.empty());
  EXPECT_FALSE(duplex_->b().receive().has_value());
}

// --------------------------------------------------- concurrency stress

// Satellite acceptance: 8 workers × 500 blocks of mixed molecular +
// transactional data through ParallelSender over a FaultInjectingTransport
// (reorders + duplicates — nothing destroyed), asserting byte-identical
// reassembly versus the serial path and zero sequence gaps.
TEST_F(ParallelSenderTest, StressEightWorkers500BlocksOverFaultyTransport) {
  constexpr std::size_t kBlocks = 500;
  constexpr std::size_t kBlockSize = 4096;
  const Bytes data = mixed_workload(kBlocks, kBlockSize);

  // Serial reference over a clean link.
  VirtualClock serial_clock;
  netsim::SimLink sf(flat_link(1e8), 1), sr(flat_link(1e9), 2);
  transport::SimDuplex serial_duplex(sf, sr, serial_clock);
  adaptive::AdaptiveSender serial(serial_duplex.a(), engine_config(1));
  serial.send_all(data);
  adaptive::AdaptiveReceiver serial_rx(serial_duplex.b());
  const Bytes serial_payload = serial_rx.receive_available();
  ASSERT_EQ(serial_payload, data);

  // Parallel run over a reordering, duplicating link.
  wire();
  transport::FaultConfig faults;
  faults.reorder_prob = 0.10;
  faults.duplicate_prob = 0.05;
  faults.seed = 11;
  transport::FaultInjectingTransport lossy(duplex_->a(), faults);
  ParallelSender sender(lossy, engine_config(8));
  EXPECT_EQ(sender.worker_count(), 8u);
  const auto stream = sender.send_all(data);
  EXPECT_EQ(stream.blocks.size(), kBlocks);
  lossy.flush();

  adaptive::ReceiverConfig rx_config;
  rx_config.policy = adaptive::RecoveryPolicy::kSkip;
  adaptive::AdaptiveReceiver receiver(duplex_->b(), rx_config);
  const auto report = receiver.receive_report();

  EXPECT_EQ(report.gaps.size(), 0u) << "sequence gaps after reassembly";
  EXPECT_EQ(report.frames_corrupt, 0u);
  EXPECT_EQ(report.frames_ok, kBlocks);
  EXPECT_EQ(report.data, serial_payload) << "reassembly diverged from serial";
  EXPECT_EQ(report.data, data);
}

}  // namespace
}  // namespace acex
