#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "adaptive/pipeline.hpp"
#include "broker/broker.hpp"
#include "colpipe/columnar_codec.hpp"
#include "colpipe/planner.hpp"
#include "colpipe/stage.hpp"
#include "compress/frame.hpp"
#include "compress/registry.hpp"
#include "compress/zlib_codec.hpp"
#include "engine/parallel_sender.hpp"
#include "net/handshake.hpp"
#include "netsim/link.hpp"
#include "pbio/columnar.hpp"
#include "qa/mutate.hpp"
#include "qa/oracles.hpp"
#include "testdata.hpp"
#include "transport/sim_transport.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workloads/molecular.hpp"
#include "workloads/transactions.hpp"

namespace acex::colpipe {
namespace {

// Stage/width combinations every per-stage property sweeps.
const std::vector<StageSpec> kWidthStages = {
    {StageId::kDelta, 1},     {StageId::kDelta, 2},
    {StageId::kDelta, 4},     {StageId::kDelta, 8},
    {StageId::kZigzag, 1},    {StageId::kZigzag, 4},
    {StageId::kZigzag, 8},    {StageId::kBytePlane, 2},
    {StageId::kBytePlane, 4}, {StageId::kBytePlane, 8},
    {StageId::kDict, 4},      {StageId::kDict, 8},
};

const std::vector<StageSpec> kAnyLengthStages = {
    {StageId::kXorDelta, 1},  {StageId::kXorDelta, 4},
    {StageId::kXorDelta, 8},  {StageId::kMtf, 0},
    {StageId::kRle, 0},       {StageId::kHuffman, 0},
    {StageId::kArithmetic, 0}, {StageId::kLz, 0},
};

/// A column of `n` elements of `width` bytes drawn from `cardinality`
/// distinct values — low cardinality keeps the dict stage in play.
Bytes column_of(std::size_t n, std::size_t width, std::size_t cardinality,
                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> values;
  for (std::size_t v = 0; v < cardinality; ++v) values.push_back(rng.bytes(width));
  Bytes out;
  for (std::size_t i = 0; i < n; ++i) {
    const Bytes& value = values[rng.below(cardinality)];
    out.insert(out.end(), value.begin(), value.end());
  }
  return out;
}

// ------------------------------------------------------------------ stages

TEST(ColpipeStage, WidthStagesRoundTripAlone) {
  for (const StageSpec spec : kWidthStages) {
    const StagePtr stage = make_stage(spec.id, spec.param);
    for (const std::size_t elements : {0u, 1u, 2u, 37u, 256u}) {
      const Bytes data =
          column_of(elements, spec.param, std::min<std::size_t>(64, 200), 9);
      const Bytes encoded = stage->encode(data);
      EXPECT_EQ(stage->decode(encoded), data)
          << stage_name(spec.id) << "(" << spec.param << ") x " << elements;
    }
  }
}

TEST(ColpipeStage, AnyLengthStagesRoundTripAlone) {
  for (const StageSpec spec : kAnyLengthStages) {
    const StagePtr stage = make_stage(spec.id, spec.param);
    for (const std::size_t size : {0u, 1u, 2u, 255u, 4096u}) {
      const Bytes data = testdata::low_entropy(size, 11);
      const Bytes encoded = stage->encode(data);
      EXPECT_EQ(stage->decode(encoded), data)
          << stage_name(spec.id) << " on " << size << " bytes";
    }
  }
}

TEST(ColpipeStage, AllEqualColumnRoundTrips) {
  const Bytes data(512, 0x7E);
  for (const StageSpec spec : kWidthStages) {
    const StagePtr stage = make_stage(spec.id, spec.param);
    EXPECT_EQ(stage->decode(stage->encode(data)), data) << stage_name(spec.id);
  }
}

TEST(ColpipeStage, WidthStagesRejectMisalignedTrustedInput) {
  const Bytes odd(7, 1);  // not a multiple of 4
  EXPECT_THROW(make_stage(StageId::kDelta, 4)->encode(odd), ConfigError);
  EXPECT_THROW(make_stage(StageId::kBytePlane, 4)->encode(odd), ConfigError);
  // The same misalignment arriving from the wire is data corruption.
  EXPECT_THROW(make_stage(StageId::kDelta, 4)->decode(odd), DecodeError);
}

TEST(ColpipeStage, DictOverflowIsConfigError) {
  // 300 distinct 4-byte values cannot fit the 256-entry wire dictionary.
  const Bytes wide = column_of(1024, 4, 300, 3);
  EXPECT_THROW(make_stage(StageId::kDict, 4)->encode(wide), ConfigError);
}

TEST(ColpipeStage, MakeStageRejectsBadIdentity) {
  EXPECT_THROW(make_stage(static_cast<StageId>(0), 0), DecodeError);
  EXPECT_THROW(make_stage(static_cast<StageId>(99), 0), DecodeError);
  EXPECT_THROW(make_stage(StageId::kDelta, 3), DecodeError);   // bad width
  EXPECT_THROW(make_stage(StageId::kDelta, 0), DecodeError);
  EXPECT_THROW(make_stage(StageId::kXorDelta, 0), DecodeError);  // bad lag
}

// --------------------------------------------------------------- pipeline

TEST(ColpipePipeline, EmptyPipelineIsIdentityWithHeader) {
  const Pipeline null;
  const Bytes data = testdata::random_bytes(100, 5);
  const Bytes blob = null.encode(data);
  EXPECT_EQ(blob.size(), data.size() + null.header_size());
  EXPECT_EQ(Pipeline::decode(blob), data);
  EXPECT_EQ(null.describe(), "null");
}

TEST(ColpipePipeline, RandomCompositionsToDepthFourRoundTrip) {
  // Any composition of any-length stages must invert from the wire form
  // alone — the decoder never sees the planner.
  Rng rng(77);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<StageSpec> specs;
    const std::size_t depth = rng.below(5);  // 0..4
    for (std::size_t s = 0; s < depth; ++s) {
      specs.push_back(kAnyLengthStages[rng.below(kAnyLengthStages.size())]);
    }
    const Pipeline pipeline(specs);
    for (const std::size_t size : {0u, 1u, 777u}) {
      const Bytes data = testdata::low_entropy(size, trial);
      EXPECT_EQ(Pipeline::decode(pipeline.encode(data)), data)
          << pipeline.describe() << " on " << size << " bytes";
    }
  }
}

TEST(ColpipePipeline, TypedCompositionRoundTripsAndDescribes) {
  const Pipeline pipeline({{StageId::kDelta, 4},
                           {StageId::kZigzag, 4},
                           {StageId::kBytePlane, 4},
                           {StageId::kHuffman, 0}});
  EXPECT_EQ(pipeline.describe(), "delta(4)|zigzag(4)|byteplane(4)|huffman");
  const Bytes data = column_of(512, 4, 8, 21);
  EXPECT_EQ(Pipeline::decode(pipeline.encode(data)), data);
}

TEST(ColpipePipeline, DecodeRejectsUnknownStageId) {
  const Pipeline pipeline({{StageId::kDelta, 4}});
  Bytes blob = pipeline.encode(column_of(64, 4, 4, 1));
  ASSERT_GE(blob.size(), 2u);
  blob[1] = 9;  // forge the stage-id varint (9 is unassigned)
  // Header CRC now mismatches; both corruptions must surface as DecodeError.
  EXPECT_THROW(Pipeline::decode(blob), DecodeError);
}

TEST(ColpipePipeline, DecodeRejectsTruncationAndCrcDamage) {
  const Pipeline pipeline({{StageId::kMtf, 0}, {StageId::kHuffman, 0}});
  const Bytes blob = pipeline.encode(testdata::low_entropy(400, 2));
  for (std::size_t len = 0; len < std::min<std::size_t>(blob.size(), 16);
       ++len) {
    const Bytes prefix(blob.begin(),
                       blob.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(Pipeline::decode(prefix), DecodeError) << "cut at " << len;
  }
  Bytes crc_flip = blob;
  crc_flip[pipeline.header_size() - 1] ^= 0x01;
  EXPECT_THROW(Pipeline::decode(crc_flip), DecodeError);
}

TEST(ColpipePipeline, ConstructorRejectsDepthAndUnknownStages) {
  std::vector<StageSpec> deep(kMaxStages + 1, StageSpec{StageId::kMtf, 0});
  EXPECT_THROW(Pipeline{deep}, ConfigError);
  EXPECT_THROW(Pipeline({{static_cast<StageId>(55), 0}}), ConfigError);
}

// ---------------------------------------------------------------- planner

TEST(ColpipePlanner, CandidatesAreTypeAware) {
  const PipelinePlanner planner;
  const auto has_stage = [](const std::vector<Pipeline>& options, StageId id) {
    return std::any_of(options.begin(), options.end(), [&](const Pipeline& p) {
      return std::any_of(p.specs().begin(), p.specs().end(),
                         [&](const StageSpec& s) { return s.id == id; });
    });
  };
  const auto ints = planner.candidates(pbio::FieldType::kUInt32, 4, false);
  EXPECT_TRUE(has_stage(ints, StageId::kDelta));
  EXPECT_FALSE(has_stage(ints, StageId::kXorDelta));
  EXPECT_FALSE(has_stage(ints, StageId::kDict));

  const auto low_card = planner.candidates(pbio::FieldType::kInt32, 4, true);
  EXPECT_TRUE(has_stage(low_card, StageId::kDict));

  const auto floats = planner.candidates(pbio::FieldType::kFloat64, 8, false);
  EXPECT_TRUE(has_stage(floats, StageId::kXorDelta));
  EXPECT_FALSE(has_stage(floats, StageId::kDelta));
}

TEST(ColpipePlanner, PlansEveryColumnDeterministically) {
  workloads::TransactionGenerator gen(5);
  const Bytes shuffled = pbio::columnar_shuffle(gen.pbio_block(400));
  const pbio::ColumnSlices slices = pbio::column_slices(shuffled);

  const PipelinePlanner planner;
  const ColumnPlan plan = planner.plan_columns(shuffled, slices);
  ASSERT_EQ(plan.columns.size(), slices.columns.size());

  // Same bytes, same plan — the determinism the shared-encode cache needs.
  const ColumnPlan again = planner.plan_columns(shuffled, slices);
  for (std::size_t c = 0; c < plan.columns.size(); ++c) {
    EXPECT_EQ(plan.columns[c].pipeline, again.columns[c].pipeline) << c;
  }
}

TEST(ColpipePlanner, CostWeightScalesWithDepth) {
  const Pipeline cheap({{StageId::kDelta, 4}});
  const Pipeline deep({{StageId::kDelta, 4},
                       {StageId::kBytePlane, 4},
                       {StageId::kArithmetic, 0}});
  EXPECT_LT(pipeline_cost_weight(Pipeline{}), pipeline_cost_weight(cheap));
  EXPECT_LT(pipeline_cost_weight(cheap), pipeline_cost_weight(deep));
}

TEST(ColpipePlanner, HigherLambdaNeverPlansCostlierPipelines) {
  workloads::TransactionGenerator gen(5);
  const Bytes shuffled = pbio::columnar_shuffle(gen.pbio_block(400));
  const pbio::ColumnSlices slices = pbio::column_slices(shuffled);
  PlannerConfig frugal;
  frugal.cpu_lambda = 50.0;
  const ColumnPlan rich = PipelinePlanner{}.plan_columns(shuffled, slices);
  const ColumnPlan lean = PipelinePlanner{frugal}.plan_columns(shuffled, slices);
  for (std::size_t c = 0; c < rich.columns.size(); ++c) {
    EXPECT_LE(lean.columns[c].cost_weight, rich.columns[c].cost_weight) << c;
  }
}

// ------------------------------------------------------------------ codec

TEST(ColpipeCodec, RoundTripsPbioTextRandomAndEmpty) {
  ColumnarCodec codec;
  workloads::TransactionGenerator txn(3);
  workloads::MolecularConfig mdc;
  mdc.atom_count = 300;
  workloads::MolecularGenerator md(mdc);
  const std::vector<Bytes> inputs = {
      txn.pbio_block(500),
      md.pbio_snapshot(),
      txn.text_block(6000),
      testdata::random_bytes(4096, 1),
      Bytes{},
      Bytes{0x42},
  };
  for (const Bytes& data : inputs) {
    const Bytes packed = codec.compress(data);
    EXPECT_EQ(codec.decompress(packed), data) << data.size() << " bytes";
    // Determinism: compress is a pure function of the input.
    EXPECT_EQ(codec.compress(data), packed);
  }
}

TEST(ColpipeCodec, CompressesTransactionalBlocks) {
  workloads::TransactionGenerator txn(8);
  const Bytes block = txn.pbio_block(2000);
  ColumnarCodec codec;
  const Bytes packed = codec.compress(block);
  EXPECT_LT(packed.size(), block.size() / 2)
      << "columnar pipelines should at least halve the TPC-H-like block";
}

TEST(ColpipeCodec, DecompressRejectsDamage) {
  ColumnarCodec codec;
  workloads::TransactionGenerator txn(4);
  const Bytes packed = codec.compress(txn.pbio_block(200));

  EXPECT_THROW(codec.decompress(Bytes{}), DecodeError);
  EXPECT_THROW(codec.decompress(Bytes{0x77}), DecodeError);  // unknown mode

  for (std::size_t len = 1; len < std::min<std::size_t>(packed.size(), 32);
       ++len) {
    const Bytes prefix(packed.begin(),
                       packed.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(codec.decompress(prefix), DecodeError) << "cut at " << len;
  }

  Bytes trailing = packed;
  trailing.push_back(0);
  EXPECT_THROW(codec.decompress(trailing), DecodeError);
}

TEST(ColpipeCodec, FuzzOraclesHoldOnSeedInputs) {
  workloads::TransactionGenerator txn(6);
  EXPECT_TRUE(qa::colpipe_roundtrip(txn.pbio_block(128)).ok);
  EXPECT_TRUE(qa::colpipe_roundtrip(testdata::random_bytes(2048, 2)).ok);
  Rng rng(15);
  ColumnarCodec codec;
  const Bytes packed = codec.compress(txn.pbio_block(128));
  for (int i = 0; i < 50; ++i) {
    const Bytes mutated = qa::mutate_colpipe(packed, rng);
    const qa::Verdict verdict = qa::colpipe_survives(mutated, packed.size());
    EXPECT_TRUE(verdict.ok) << verdict.detail;
  }
}

// --------------------------------------------------------------- registry

TEST(ColpipeRegistry, BuiltinsExcludeColumnarUntilRegistered) {
  CodecRegistry registry = CodecRegistry::with_builtins();
  EXPECT_FALSE(registry.contains(MethodId::kColumnar));
  EXPECT_THROW(make_codec(MethodId::kColumnar), ConfigError);

  register_columnar(registry);
  ASSERT_TRUE(registry.contains(MethodId::kColumnar));
  const CodecPtr codec = registry.create(MethodId::kColumnar);
  EXPECT_EQ(codec->id(), MethodId::kColumnar);
  EXPECT_EQ(std::string(method_name(MethodId::kColumnar)), "colpipe");
  EXPECT_EQ(method_from_name("colpipe"), MethodId::kColumnar);
}

TEST(ColpipeRegistry, FrozenRegistryRejectsLateRegistration) {
  // Regression for the freeze-after-init contract on the new id: once the
  // parallel engine freezes the registry, registering colpipe must throw
  // instead of racing concurrent readers.
  CodecRegistry registry = CodecRegistry::with_builtins();
  registry.freeze();
  EXPECT_THROW(register_columnar(registry), ConfigError);
  EXPECT_FALSE(registry.contains(MethodId::kColumnar));
}

// --------------------------------------------------------- byte identity

adaptive::AdaptiveConfig fixed_config(std::size_t block_size) {
  adaptive::AdaptiveConfig config;
  config.async_sampling = false;
  config.decision.block_size = block_size;
  config.decision.sample_size = std::min<std::size_t>(1024, block_size);
  return config;
}

netsim::LinkParams flat(double bandwidth_Bps) {
  netsim::LinkParams p;
  p.bandwidth_Bps = bandwidth_Bps;
  p.jitter_frac = 0;
  p.latency_s = 0;
  return p;
}

std::vector<Bytes> drain(transport::SimHalf& endpoint) {
  std::vector<Bytes> frames;
  while (auto frame = endpoint.receive()) frames.push_back(std::move(*frame));
  return frames;
}

TEST(ColpipeIdentity, SerialAndParallelWiresAreByteIdentical) {
  workloads::TransactionGenerator txn(12);
  const Bytes data = txn.pbio_block(3000);
  for (const std::size_t workers : {2u, 4u}) {
    std::size_t blocks = 0;
    const qa::Verdict verdict = qa::serial_parallel_identity(
        data, MethodId::kColumnar, workers, 8 * 1024, &blocks);
    EXPECT_TRUE(verdict.ok) << verdict.detail;
    EXPECT_GT(blocks, 1u);
  }
}

TEST(ColpipeIdentity, BrokerSharedEncodeMatchesSerialWire) {
  // One txn block, small enough to be a single frame everywhere. The frame
  // the broker's shared-encode cache emits must equal the frame a private
  // serial AdaptiveSender puts on the wire for the same bytes.
  workloads::TransactionGenerator txn(9);
  const Bytes block = txn.pbio_block(800);
  const std::size_t block_size = 128 * 1024;

  VirtualClock serial_clock;
  netsim::SimLink sf(flat(1e8), 1), sr(flat(1e9), 2);
  transport::SimDuplex serial_duplex(sf, sr, serial_clock);
  adaptive::AdaptiveSender serial(serial_duplex.a(), fixed_config(block_size));
  register_columnar(serial.registry());
  serial.send_all_fixed(block, MethodId::kColumnar);
  const std::vector<Bytes> serial_wire = drain(serial_duplex.b());
  ASSERT_EQ(serial_wire.size(), 1u);

  VirtualClock broker_clock;
  netsim::SimLink bf(flat(1e8), 1), br(flat(1e9), 2);
  transport::SimDuplex broker_duplex(bf, br, broker_clock);
  broker::FanoutBroker broker;
  register_columnar(broker.registry());
  broker::SubscriberConfig sub;
  sub.adaptive = fixed_config(block_size);
  sub.adaptive.method_governor = [](MethodId) { return MethodId::kColumnar; };
  broker.subscribe(broker_duplex.a(), sub);
  broker.publish(block);
  broker.pump_all();
  const std::vector<Bytes> broker_wire = drain(broker_duplex.b());
  ASSERT_EQ(broker_wire.size(), 1u);

  EXPECT_EQ(broker_wire[0], serial_wire[0])
      << "broker shared-encode frame diverged from the serial sender's";

  CodecRegistry registry = CodecRegistry::with_builtins();
  register_columnar(registry);
  EXPECT_EQ(frame_decompress(broker_wire[0], registry), block);
}

// -------------------------------------------------------------- handshake

TEST(ColpipeHandshake, NegotiatesColumnarWhenBothSidesOfferIt) {
  net::CompressionOffer offer;
  offer.methods = {MethodId::kColumnar, MethodId::kHuffman, MethodId::kNone};
  net::ServerPolicy policy;
  policy.methods.push_back(MethodId::kColumnar);
  const net::NegotiatedParams params = net::negotiate(offer, policy);
  ASSERT_FALSE(params.methods.empty());
  EXPECT_EQ(params.methods.front(), MethodId::kColumnar);

  // And the id survives the offer/params wire codec round trip.
  EXPECT_EQ(net::offer_decode(net::offer_encode(offer)).methods,
            offer.methods);
  EXPECT_EQ(net::params_decode(net::params_encode(params)), params);
}

TEST(ColpipeHandshake, PolicyWithoutColumnarFiltersItOut) {
  net::CompressionOffer offer;
  offer.methods = {MethodId::kColumnar, MethodId::kHuffman};
  const net::NegotiatedParams params =
      net::negotiate(offer, net::ServerPolicy{});  // default: no colpipe
  EXPECT_EQ(std::count(params.methods.begin(), params.methods.end(),
                       MethodId::kColumnar),
            0);
  EXPECT_EQ(params.methods.front(), MethodId::kHuffman);
}

TEST(ColpipeHandshake, GovernorLadderDegradesThroughColumnar) {
  // Ladder: BW > colpipe > LZW > LZ > arithmetic > Huffman > none. A
  // selector asking for BW on a link that only negotiated colpipe+none
  // degrades to colpipe, not all the way to none.
  const std::vector<MethodId> allowed = {MethodId::kColumnar, MethodId::kNone};
  EXPECT_EQ(net::governed_method(allowed, MethodId::kBurrowsWheeler),
            MethodId::kColumnar);
  EXPECT_EQ(net::governed_method(allowed, MethodId::kColumnar),
            MethodId::kColumnar);
  // colpipe sits above LZW: an LZW ask must not be promoted to colpipe.
  EXPECT_EQ(net::governed_method(allowed, MethodId::kLzw), MethodId::kNone);
}

// --------------------------------------------------------------- workload

TEST(ColpipeWorkload, TransactionalPbioIsColumnarEligible) {
  const pbio::RecordFormat& format =
      workloads::TransactionGenerator::record_format();
  EXPECT_TRUE(pbio::is_columnar_eligible(format));
  EXPECT_EQ(format.fields().size(), 12u);

  workloads::TransactionGenerator gen(31);
  const Bytes block = gen.pbio_block(100);
  const Bytes shuffled = pbio::columnar_shuffle(block);
  EXPECT_EQ(pbio::columnar_unshuffle(shuffled), block);
  EXPECT_EQ(pbio::column_slices(shuffled).records, 100u);
}

TEST(ColpipeWorkload, SameSeedSameBlock) {
  workloads::TransactionGenerator a(17), b(17);
  EXPECT_EQ(a.pbio_block(64), b.pbio_block(64));
  // The binary rendering draws from the same stream as the text one, so
  // interleaving renderings must not de-synchronise two generators.
  EXPECT_EQ(a.next_text(), b.next_text());
}

}  // namespace
}  // namespace acex::colpipe
