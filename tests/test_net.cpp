#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "broker/broker.hpp"
#include "net/client.hpp"
#include "net/daemon.hpp"
#include "net/demo_stream.hpp"
#include "net/event_loop.hpp"
#include "net/handshake.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "qa/mutate.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace acex::net {
namespace {

void msleep(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// --- NetSocket: shared helper layer -----------------------------------

TEST(NetSocket, LengthPrefixRoundTrip) {
  std::uint8_t buf[kLengthPrefixBytes];
  for (const std::uint32_t v : {0u, 1u, 255u, 65536u, 0xFFFFFFFFu}) {
    put_length_prefix(buf, v);
    EXPECT_EQ(get_length_prefix(buf), v);
  }
}

TEST(NetSocket, MessageRoundTripOverSocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ScopedFd a(fds[0]), b(fds[1]);
  const Bytes msg = to_bytes("negotiate me");
  send_message(a.get(), msg);
  const auto got = recv_message(b.get());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, msg);

  a.reset();  // close -> clean EOF at a message boundary
  EXPECT_FALSE(recv_message(b.get()).has_value());
}

TEST(NetSocket, OversizedLengthPrefixIsIoErrorNotAllocation) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ScopedFd a(fds[0]), b(fds[1]);
  std::uint8_t prefix[kLengthPrefixBytes];
  put_length_prefix(prefix, 0xFFFFFFFFu);  // claims a ~4 GiB body
  send_all(a.get(), prefix, sizeof prefix);
  EXPECT_THROW(recv_message(b.get()), IoError);
}

TEST(NetSocket, NonBlockingReadReportsWouldBlockAndEof) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ScopedFd a(fds[0]), b(fds[1]);
  set_nonblocking(b.get());
  std::uint8_t buf[16];
  EXPECT_EQ(read_some(b.get(), buf, sizeof buf), -1);  // nothing yet
  send_all(a.get(), buf, 4);
  EXPECT_EQ(read_some(b.get(), buf, sizeof buf), 4);
  a.reset();
  EXPECT_EQ(read_some(b.get(), buf, sizeof buf), 0);  // EOF
}

TEST(NetSocket, ListenConnectAcceptLoopback) {
  std::uint16_t port = 0;
  ScopedFd listener(listen_loopback(0, 8, &port));
  ASSERT_GT(port, 0);
  EXPECT_EQ(accept_client(listener.get()), -1);  // nothing pending yet
  ScopedFd client(connect_loopback(port));
  ASSERT_TRUE(wait_readable(listener.get(), 1000));
  ScopedFd server(accept_client(listener.get()));
  ASSERT_TRUE(server.valid());
  send_message(client.get(), to_bytes("hi"));
  const auto got = recv_message(server.get());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(to_string(*got), "hi");
}

// --- NetLoop: both readiness backends ---------------------------------

class NetLoop : public ::testing::TestWithParam<LoopBackend> {};

TEST_P(NetLoop, DispatchesReadableAndHonorsRemove) {
  EventLoop loop({GetParam()});
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ScopedFd a(fds[0]), b(fds[1]);
  set_nonblocking(b.get());

  int fired = 0;
  loop.add(b.get(), true, false, [&](int fd, Ready ready) {
    EXPECT_EQ(fd, b.get());
    EXPECT_TRUE(ready.readable);
    ++fired;
    std::uint8_t buf[64];
    while (read_some(fd, buf, sizeof buf) > 0) {
    }
  });
  EXPECT_EQ(loop.size(), 1u);

  EXPECT_EQ(loop.poll_once(0), 0u);  // idle
  send_all(a.get(), reinterpret_cast<const std::uint8_t*>("x"), 1);
  EXPECT_EQ(loop.poll_once(1000), 1u);
  EXPECT_EQ(fired, 1);

  loop.remove(b.get());
  send_all(a.get(), reinterpret_cast<const std::uint8_t*>("y"), 1);
  EXPECT_EQ(loop.poll_once(0), 0u);
  EXPECT_EQ(fired, 1);
  EXPECT_GE(loop.wakeups(), 3u);
}

TEST_P(NetLoop, WriteInterestFollowsModify) {
  EventLoop loop({GetParam()});
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ScopedFd a(fds[0]), b(fds[1]);
  set_nonblocking(a.get());

  int writable = 0;
  loop.add(a.get(), false, false, [&](int, Ready ready) {
    if (ready.writable) ++writable;
  });
  EXPECT_EQ(loop.poll_once(0), 0u);  // no interest, no dispatch
  loop.modify(a.get(), false, true);
  EXPECT_EQ(loop.poll_once(1000), 1u);  // empty socket buffer: writable
  EXPECT_EQ(writable, 1);
  loop.modify(a.get(), false, false);
  EXPECT_EQ(loop.poll_once(0), 0u);
}

TEST_P(NetLoop, CallbackMayRemovePeerFdMidBatch) {
  EventLoop loop({GetParam()});
  int p1[2], p2[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, p1), 0);
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, p2), 0);
  ScopedFd a1(p1[0]), b1(p1[1]), a2(p2[0]), b2(p2[1]);
  set_nonblocking(b1.get());
  set_nonblocking(b2.get());

  // Whichever fires first removes BOTH registrations; the second ready fd
  // must be skipped, not dispatched against a dangling entry.
  int fired = 0;
  const auto cb = [&](int, Ready) {
    ++fired;
    loop.remove(b1.get());
    loop.remove(b2.get());
  };
  loop.add(b1.get(), true, false, cb);
  loop.add(b2.get(), true, false, cb);
  send_all(a1.get(), reinterpret_cast<const std::uint8_t*>("x"), 1);
  send_all(a2.get(), reinterpret_cast<const std::uint8_t*>("x"), 1);
  loop.poll_once(1000);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, NetLoop,
                         ::testing::Values(LoopBackend::kAuto,
                                           LoopBackend::kPoll),
                         [](const auto& info) {
                           return info.param == LoopBackend::kPoll ? "poll"
                                                                   : "auto";
                         });

// --- NetHandshake: negotiation + codec --------------------------------

TEST(NetHandshake, OfferRoundTrip) {
  CompressionOffer offer;
  offer.methods = {MethodId::kLzw, MethodId::kHuffman};
  offer.block_size = 32 * 1024;
  offer.expansion_slack = 128;
  offer.context_takeover = false;
  offer.target_rate_Bps = 123456789;
  offer.name = "edge-client";
  EXPECT_EQ(offer_decode(offer_encode(offer)), offer);

  offer.resume_session = 7;
  offer.resume_token = 0xDEADBEEF;
  offer.resume_from = 42;
  EXPECT_EQ(offer_decode(offer_encode(offer)), offer);
}

TEST(NetHandshake, ParamsRoundTrip) {
  NegotiatedParams params;
  params.methods = {MethodId::kBurrowsWheeler, MethodId::kNone};
  params.block_size = 8 * 1024;
  params.expansion_slack = 0;
  params.context_takeover = false;
  params.target_rate_Bps = 1ull << 40;
  EXPECT_EQ(params_decode(params_encode(params)), params);
}

TEST(NetHandshake, IntersectionKeepsOfferPreferenceOrder) {
  CompressionOffer offer;
  offer.methods = {MethodId::kLzw, MethodId::kBurrowsWheeler,
                   MethodId::kHuffman};
  ServerPolicy policy;
  policy.methods = {MethodId::kHuffman, MethodId::kBurrowsWheeler};
  const NegotiatedParams params = negotiate(offer, policy);
  const std::vector<MethodId> expect = {MethodId::kBurrowsWheeler,
                                        MethodId::kHuffman, MethodId::kNone};
  EXPECT_EQ(params.methods, expect);
}

TEST(NetHandshake, EmptyIntersectionIsCleanTypedReject) {
  CompressionOffer offer;
  offer.methods = {MethodId::kArithmetic};
  ServerPolicy policy;
  policy.methods = {MethodId::kHuffman};
  try {
    negotiate(offer, policy);
    FAIL() << "expected HandshakeError";
  } catch (const HandshakeError& e) {
    EXPECT_EQ(e.status(), HandshakeStatus::kNoCommonMethod);
  }
}

TEST(NetHandshake, NullOnlyOfferNeedsNoCommonCodec) {
  // A client that only ever wanted pass-through is not "no common method".
  CompressionOffer offer;
  offer.methods = {MethodId::kNone};
  ServerPolicy policy;
  policy.methods = {MethodId::kHuffman};
  const NegotiatedParams params = negotiate(offer, policy);
  EXPECT_EQ(params.methods, std::vector<MethodId>{MethodId::kNone});
}

TEST(NetHandshake, ParameterClampingAndBadParameter) {
  CompressionOffer offer;
  offer.block_size = 1;  // below policy floor
  offer.expansion_slack = 1 << 20;
  ServerPolicy policy;
  policy.max_target_rate_Bps = 1000;
  offer.target_rate_Bps = 5000;
  const NegotiatedParams params = negotiate(offer, policy);
  EXPECT_EQ(params.block_size, policy.min_block_size);
  EXPECT_EQ(params.expansion_slack, policy.max_expansion_slack);
  EXPECT_EQ(params.target_rate_Bps, 1000u);

  offer.block_size = 0;
  try {
    negotiate(offer, policy);
    FAIL() << "expected HandshakeError";
  } catch (const HandshakeError& e) {
    EXPECT_EQ(e.status(), HandshakeStatus::kBadParameter);
  }
}

TEST(NetHandshake, ContextTakeoverIsOfferAndPolicy) {
  CompressionOffer offer;
  ServerPolicy policy;
  EXPECT_TRUE(negotiate(offer, policy).context_takeover);
  policy.allow_context_takeover = false;
  EXPECT_FALSE(negotiate(offer, policy).context_takeover);
  policy.allow_context_takeover = true;
  offer.context_takeover = false;
  EXPECT_FALSE(negotiate(offer, policy).context_takeover);
}

TEST(NetHandshake, PolicyIdRoundTripsOnTheWire) {
  CompressionOffer offer;
  offer.policy_id =
      static_cast<std::uint64_t>(adaptive::DecisionPolicy::kEnergyProxy);
  EXPECT_EQ(offer_decode(offer_encode(offer)), offer);

  NegotiatedParams params;
  params.policy = adaptive::DecisionPolicy::kTargetRate;
  EXPECT_EQ(params_decode(params_encode(params)), params);

  // The default policy (kBandwidth = 0) encodes as an EMPTY extension
  // block — byte-identical to the pre-policy wire format, so old peers
  // interoperate without noticing.
  CompressionOffer default_offer;
  CompressionOffer explicit_bandwidth;
  explicit_bandwidth.policy_id = 0;
  EXPECT_EQ(offer_encode(default_offer), offer_encode(explicit_bandwidth));
}

TEST(NetHandshake, UnknownPolicyIdIsTypedReject) {
  // A policy id from a newer build must produce the typed reject, not a
  // parse error and not a silent downgrade.
  CompressionOffer offer;
  offer.policy_id = 99;
  EXPECT_EQ(offer_decode(offer_encode(offer)).policy_id, 99u)
      << "unknown ids must survive decode so negotiate() can name them";
  ServerPolicy policy;
  try {
    negotiate(offer, policy);
    FAIL() << "expected HandshakeError";
  } catch (const HandshakeError& e) {
    EXPECT_EQ(e.status(), HandshakeStatus::kUnsupportedPolicy);
  }
}

TEST(NetHandshake, ServerPolicyListGatesKnownPolicies) {
  // A known policy the server chose not to allow is rejected with the same
  // typed status as an unknown one.
  CompressionOffer offer;
  offer.policy_id =
      static_cast<std::uint64_t>(adaptive::DecisionPolicy::kCpuEfficiency);
  ServerPolicy policy;
  policy.policies = {adaptive::DecisionPolicy::kBandwidth};
  try {
    negotiate(offer, policy);
    FAIL() << "expected HandshakeError";
  } catch (const HandshakeError& e) {
    EXPECT_EQ(e.status(), HandshakeStatus::kUnsupportedPolicy);
  }
  policy.policies.push_back(adaptive::DecisionPolicy::kCpuEfficiency);
  EXPECT_EQ(negotiate(offer, policy).policy,
            adaptive::DecisionPolicy::kCpuEfficiency);
}

TEST(NetHandshake, WelcomeNamingUnknownPolicyIsTyped) {
  // The server side of the skew: a welcome whose extension names a policy
  // this build cannot run must throw typed, never half-apply.
  NegotiatedParams params;
  params.policy = adaptive::DecisionPolicy::kEnergyProxy;
  Bytes wire = params_encode(params);
  // The policy extension is the last thing before the CRC: field id 1,
  // length 1, value. Corrupt the value byte to an unknown id.
  ASSERT_GE(wire.size(), 8u);
  wire[wire.size() - 5] = 77;
  const std::size_t body = wire.size() - 4;
  const std::uint32_t crc = crc32(ByteView(wire.data(), body));
  for (std::size_t i = 0; i < 4; ++i) {
    wire[body + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  try {
    params_decode(wire);
    FAIL() << "expected HandshakeError";
  } catch (const HandshakeError& e) {
    EXPECT_EQ(e.status(), HandshakeStatus::kUnsupportedPolicy);
  }
}

TEST(NetHandshake, NegotiatedPolicyAppliesToAdaptiveConfig) {
  NegotiatedParams params;
  params.policy = adaptive::DecisionPolicy::kCpuEfficiency;
  adaptive::AdaptiveConfig config;
  apply(params, config);
  EXPECT_EQ(config.decision.policy, adaptive::DecisionPolicy::kCpuEfficiency);
}

TEST(NetHandshake, UnknownMethodIdsIgnoredNotFatal) {
  CompressionOffer offer;
  offer.methods = {MethodId::kHuffman};
  Bytes wire = offer_encode(offer);
  // Re-encode by hand with a bogus method id spliced into the list: bump
  // the count varint (1 -> 2 stays single-byte) and insert unknown id 77.
  // Offsets: magic(2) version(1) flags(1) count(1) id...
  ASSERT_EQ(wire[4], 1);
  wire[4] = 2;
  wire.insert(wire.begin() + 6, static_cast<std::uint8_t>(77));
  // Recompute the trailing CRC over the edited body.
  const std::size_t body = wire.size() - 4;
  const std::uint32_t crc = crc32(ByteView(wire.data(), body));
  for (std::size_t i = 0; i < 4; ++i) {
    wire[body + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  const CompressionOffer decoded = offer_decode(wire);
  EXPECT_EQ(decoded.methods, offer.methods);  // 77 skipped silently
}

TEST(NetHandshake, VNextExtensionFieldIsSkipped) {
  CompressionOffer offer;
  Bytes wire = offer_encode(offer);
  // The encoder wrote an empty extension block (varint 0) just before the
  // CRC. Replace it with a block carrying an unknown TLV field (id 7,
  // 2 payload bytes) a v-next peer might send; this decoder must skip the
  // field by its declared length and still parse cleanly — with the
  // default policy, since no policy field was present.
  Bytes edited(wire.begin(), wire.end() - 5);  // drop "00" ext + CRC
  edited.push_back(4);     // extension block length
  edited.push_back(7);     // unknown field id
  edited.push_back(2);     // field length
  edited.push_back(0xAA);
  edited.push_back(0xBB);
  const std::uint32_t crc = crc32(edited);
  for (std::size_t i = 0; i < 4; ++i) {
    edited.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  EXPECT_EQ(offer_decode(edited), offer);
  EXPECT_EQ(offer_decode(edited).policy_id, 0u);
}

TEST(NetHandshake, VersionSkewIsTyped) {
  Bytes wire = offer_encode(CompressionOffer{});
  wire[2] = kHandshakeVersion + 1;
  const std::size_t body = wire.size() - 4;
  const std::uint32_t crc = crc32(ByteView(wire.data(), body));
  for (std::size_t i = 0; i < 4; ++i) {
    wire[body + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  try {
    offer_decode(wire);
    FAIL() << "expected HandshakeError";
  } catch (const HandshakeError& e) {
    EXPECT_EQ(e.status(), HandshakeStatus::kVersionSkew);
  }
}

TEST(NetHandshake, GovernedMethodDemotesAlongStrengthLadder) {
  const std::vector<MethodId> allowed = {MethodId::kLempelZiv,
                                         MethodId::kNone};
  // Stronger-than-allowed demotes to the strongest allowed weaker method.
  EXPECT_EQ(governed_method(allowed, MethodId::kBurrowsWheeler),
            MethodId::kLempelZiv);
  EXPECT_EQ(governed_method(allowed, MethodId::kLzw), MethodId::kLempelZiv);
  // Allowed methods pass through; weaker-than-anything falls to kNone.
  EXPECT_EQ(governed_method(allowed, MethodId::kLempelZiv),
            MethodId::kLempelZiv);
  EXPECT_EQ(governed_method(allowed, MethodId::kHuffman), MethodId::kNone);
  EXPECT_EQ(governed_method(allowed, MethodId::kNone), MethodId::kNone);
}

TEST(NetHandshake, ApplyMapsOntoAdaptiveConfig) {
  NegotiatedParams params;
  params.methods = {MethodId::kHuffman, MethodId::kNone};
  params.block_size = 8192;
  params.expansion_slack = 16;
  params.context_takeover = false;
  params.target_rate_Bps = 777;
  adaptive::AdaptiveConfig config;
  config.async_sampling = true;
  apply(params, config);
  EXPECT_EQ(config.decision.block_size, 8192u);
  EXPECT_EQ(config.expansion_slack_bytes, 16u);
  EXPECT_DOUBLE_EQ(config.target_rate_Bps, 777.0);
  EXPECT_FALSE(config.async_sampling);  // no context takeover
  ASSERT_TRUE(static_cast<bool>(config.method_governor));
  EXPECT_EQ(config.method_governor(MethodId::kBurrowsWheeler),
            MethodId::kHuffman);
}

TEST(NetHandshake, RandomizedOfferRoundTripProperty) {
  Rng rng(0xC0FFEE);
  const std::vector<MethodId> pool = {
      MethodId::kNone,       MethodId::kHuffman,        MethodId::kArithmetic,
      MethodId::kLempelZiv,  MethodId::kBurrowsWheeler, MethodId::kLzw};
  for (int iter = 0; iter < 200; ++iter) {
    CompressionOffer offer;
    offer.methods.clear();
    const std::size_t n = 1 + rng.below(pool.size());
    for (std::size_t i = 0; i < n; ++i) {
      const MethodId m = pool[rng.below(pool.size())];
      if (std::find(offer.methods.begin(), offer.methods.end(), m) ==
          offer.methods.end()) {
        offer.methods.push_back(m);
      }
    }
    offer.block_size = static_cast<std::uint32_t>(1 + rng.below(1 << 22));
    offer.expansion_slack = static_cast<std::uint32_t>(rng.below(4096));
    offer.context_takeover = rng.chance(0.5);
    offer.target_rate_Bps = rng.below(1ull << 40);
    offer.name = "c" + std::to_string(rng.below(1000));
    if (rng.chance(0.3)) {
      offer.resume_session = 1 + rng.below(1000);
      offer.resume_token = rng();
      offer.resume_from = rng.below(10000);
    }
    ASSERT_EQ(offer_decode(offer_encode(offer)), offer) << "iter " << iter;

    // Negotiation, when it succeeds, must emit only offered-or-kNone
    // methods, honor policy bounds, and be idempotent under re-check.
    ServerPolicy policy;
    policy.min_block_size = static_cast<std::uint32_t>(1 + rng.below(8192));
    policy.max_block_size =
        policy.min_block_size + static_cast<std::uint32_t>(rng.below(1 << 22));
    try {
      const NegotiatedParams params = negotiate(offer, policy);
      EXPECT_GE(params.block_size, policy.min_block_size);
      EXPECT_LE(params.block_size, policy.max_block_size);
      for (const MethodId m : params.methods) {
        EXPECT_TRUE(m == MethodId::kNone ||
                    std::find(offer.methods.begin(), offer.methods.end(),
                              m) != offer.methods.end());
      }
      EXPECT_FALSE(params.methods.empty());
    } catch (const HandshakeError&) {
      // typed rejects are legal outcomes of random offers
    }
  }
}

TEST(NetHandshake, MutatedOffersNeverCrashOrMisparse) {
  // Truncation + bit-flip fuzz via qa::mutate: every mutation either
  // decodes to SOMETHING (CRC collision at ~2^-32, structurally valid) or
  // throws a typed HandshakeError — never anything else, never a crash.
  Rng rng(0xFEED5EED);
  CompressionOffer offer;
  offer.name = "fuzz-victim";
  offer.resume_session = 3;
  offer.resume_token = 9;
  const Bytes clean = offer_encode(offer);
  int rejected = 0;
  const int iters = qa::fuzz_iterations(300);
  for (int i = 0; i < iters; ++i) {
    Bytes evil = qa::mutate(clean, rng);
    if (rng.chance(0.3) && !evil.empty()) {
      evil.resize(rng.below(evil.size()));  // hard truncation
    }
    try {
      (void)offer_decode(evil);
    } catch (const HandshakeError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, iters / 2);  // most mutations must be caught
}

// --- NetProtocol: message envelopes -----------------------------------

TEST(NetProtocol, WrapUnwrapRoundTrip) {
  const Bytes payload = to_bytes("payload");
  const Bytes framed = wrap(MsgKind::kNack, payload);
  const Msg msg = unwrap(framed);
  EXPECT_EQ(msg.kind, MsgKind::kNack);
  EXPECT_EQ(msg.payload, payload);
  EXPECT_THROW(unwrap(Bytes{}), HandshakeError);
  EXPECT_THROW(unwrap(Bytes{99}), HandshakeError);
}

TEST(NetProtocol, WelcomeRejectNackStatsRoundTrip) {
  Welcome welcome;
  welcome.session_id = 11;
  welcome.token = 0xABCD;
  welcome.heartbeat_interval_ms = 250;
  welcome.resumed = true;
  welcome.replayed = 5;
  welcome.params.methods = {MethodId::kLzw, MethodId::kNone};
  EXPECT_EQ(welcome_decode(welcome_encode(welcome)), welcome);

  Reject reject;
  reject.status = HandshakeStatus::kNoCommonMethod;
  reject.reason = "no overlap";
  EXPECT_EQ(reject_decode(reject_encode(reject)), reject);

  const std::vector<std::uint64_t> seqs = {1, 5, 1000000};
  EXPECT_EQ(nack_decode(nack_encode(seqs)), seqs);

  DaemonStats stats;
  stats.connections_total = 64;
  stats.bytes_out = 1ull << 33;
  stats.loop_wakeups = 12345;
  EXPECT_EQ(stats_decode(stats_encode(stats)), stats);
}

TEST(NetProtocol, DemoBlocksSelfVerify) {
  const Bytes block = demo_block(42, 7, 4096);
  EXPECT_EQ(block.size(), 4096u);
  EXPECT_EQ(demo_block_index(block), 7);
  EXPECT_EQ(demo_block_size(block), 4096u);
  EXPECT_TRUE(demo_block_verify(42, block));
  Bytes bad = block;
  bad[100] ^= 1;
  EXPECT_FALSE(demo_block_verify(42, bad));
  EXPECT_FALSE(demo_block_verify(43, block));
  EXPECT_EQ(demo_block_index(to_bytes("not a block")), -1);
}

// --- NetDaemon: end-to-end over real sockets --------------------------

DaemonConfig quick_daemon_config() {
  DaemonConfig config;
  config.tick_interval = 0.02;
  config.session.liveness_timeout = 1.0;
  config.session.suspect_grace = 0.5;
  config.session.park_grace = 10.0;
  config.session.heartbeat_interval = 0.1;
  return config;
}

CompressionOffer deterministic_offer(std::vector<MethodId> methods) {
  CompressionOffer offer;
  offer.methods = std::move(methods);
  // Unreachable target rate: every block escalates to the strongest
  // negotiated method, so selections do not depend on socket timing.
  offer.target_rate_Bps = 1ull << 60;
  return offer;
}

/// Replay `blocks` through a private broker configured exactly like the
/// daemon configures the negotiated subscriber; returns (frames, crc).
std::pair<std::uint64_t, std::uint32_t> private_wire(
    const NegotiatedParams& params, const std::vector<Bytes>& blocks) {
  struct Capture final : transport::Transport {
    void send(ByteView m) override {
      crc.update(m);
      ++frames;
    }
    std::optional<Bytes> receive() override { return std::nullopt; }
    const Clock& clock() const override { return clk; }
    MonotonicClock clk;
    Crc32 crc;
    std::uint64_t frames = 0;
  } capture;
  broker::FanoutBroker broker;
  broker::SubscriberConfig sub;
  apply(params, sub.adaptive);
  const broker::SubscriberId id = broker.subscribe(capture, sub);
  for (const Bytes& block : blocks) {
    broker.publish(block);
    broker.pump(id);
  }
  return {capture.frames, capture.crc.value()};
}

TEST(NetDaemon, HeterogeneousClientsDecodeAndMatchPrivateWire) {
  Daemon daemon(quick_daemon_config());
  daemon.start();

  struct Spec {
    std::vector<MethodId> methods;
    std::uint32_t block_size;
  };
  const std::vector<Spec> specs = {
      {{MethodId::kBurrowsWheeler, MethodId::kNone}, 64 * 1024},
      {{MethodId::kLempelZiv, MethodId::kNone}, 16 * 1024},
      {{MethodId::kHuffman, MethodId::kNone}, 8 * 1024},
      {{MethodId::kNone}, 32 * 1024},
  };
  std::vector<std::unique_ptr<DaemonClient>> clients;
  for (const Spec& spec : specs) {
    DaemonClientConfig cfg;
    cfg.offer = deterministic_offer(spec.methods);
    if (spec.methods == std::vector<MethodId>{MethodId::kNone}) {
      cfg.offer.target_rate_Bps = 0;  // pass-through client: no escalation
    }
    cfg.offer.block_size = spec.block_size;
    clients.push_back(std::make_unique<DaemonClient>(daemon.port(), cfg));
    // Negotiation honored per client: strongest offered method survives.
    EXPECT_EQ(clients.back()->welcome().params.methods.front(),
              spec.methods.front());
    EXPECT_EQ(clients.back()->welcome().params.block_size, spec.block_size);
  }

  constexpr int kBlocks = 12;
  constexpr std::size_t kBlockBytes = 24 * 1024;
  std::vector<Bytes> blocks;
  Bytes expected_stream;
  for (int i = 0; i < kBlocks; ++i) {
    blocks.push_back(demo_block(9, static_cast<std::uint32_t>(i),
                                kBlockBytes));
    expected_stream.insert(expected_stream.end(), blocks.back().begin(),
                           blocks.back().end());
  }
  for (const Bytes& block : blocks) daemon.publish(block);

  for (auto& client : clients) {
    ASSERT_TRUE(client->poll_until(expected_stream.size(), 15000));
    // Content identity: every client decodes the byte-exact publish
    // stream regardless of its negotiated parameters.
    EXPECT_EQ(client->stream(), expected_stream);
  }

  // Wire identity: the frames each client saw equal a private
  // AdaptiveSender run with the same negotiated config (deterministic
  // because of the forced target rate; valid only if nothing was dropped
  // and re-requested, hence the frame-count gate).
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const auto [frames, crc] =
        private_wire(clients[i]->welcome().params, blocks);
    ASSERT_EQ(clients[i]->data_frames(), frames) << "client " << i;
    EXPECT_EQ(clients[i]->wire_crc(), crc) << "client " << i;
  }

  for (auto& client : clients) client->bye();
  daemon.stop();
  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.handshakes, specs.size());
  EXPECT_EQ(stats.rejects, 0u);
  EXPECT_GT(stats.bytes_out, 0u);
  EXPECT_GT(stats.loop_wakeups, 0u);
}

TEST(NetDaemon, RejectsRideTypedStatuses) {
  DaemonConfig config = quick_daemon_config();
  config.policy.methods = {MethodId::kHuffman};
  Daemon daemon(config);
  daemon.start();

  DaemonClientConfig cfg;
  cfg.offer.methods = {MethodId::kBurrowsWheeler};
  try {
    DaemonClient client(daemon.port(), cfg);
    FAIL() << "expected HandshakeError";
  } catch (const HandshakeError& e) {
    EXPECT_EQ(e.status(), HandshakeStatus::kNoCommonMethod);
  }

  // Garbage instead of a hello: typed malformed reject.
  {
    ScopedFd raw(connect_loopback(daemon.port()));
    send_message(raw.get(), wrap(MsgKind::kHello, to_bytes("garbage")));
    const auto answer = recv_message(raw.get());
    ASSERT_TRUE(answer.has_value());
    const Msg msg = unwrap(*answer);
    ASSERT_EQ(msg.kind, MsgKind::kReject);
    EXPECT_EQ(reject_decode(msg.payload).status, HandshakeStatus::kMalformed);
    EXPECT_FALSE(recv_message(raw.get()).has_value());  // then EOF
  }

  // Version-skewed offer: typed version reject.
  {
    Bytes wire = offer_encode(CompressionOffer{});
    wire[2] = kHandshakeVersion + 3;
    const std::size_t body = wire.size() - 4;
    const std::uint32_t crc = crc32(ByteView(wire.data(), body));
    for (std::size_t i = 0; i < 4; ++i) {
      wire[body + i] = static_cast<std::uint8_t>(crc >> (8 * i));
    }
    ScopedFd raw(connect_loopback(daemon.port()));
    send_message(raw.get(), wrap(MsgKind::kHello, wire));
    const auto answer = recv_message(raw.get());
    ASSERT_TRUE(answer.has_value());
    EXPECT_EQ(reject_decode(unwrap(*answer).payload).status,
              HandshakeStatus::kVersionSkew);
  }

  daemon.stop();
  EXPECT_EQ(daemon.stats().rejects, 3u);
  EXPECT_EQ(daemon.stats().handshakes, 0u);
}

TEST(NetDaemon, StatProbeAnswersWithoutSubscription) {
  Daemon daemon(quick_daemon_config());
  daemon.start();
  ScopedFd raw(connect_loopback(daemon.port()));
  send_message(raw.get(), wrap(MsgKind::kStatRequest, {}));
  const auto answer = recv_message(raw.get());
  ASSERT_TRUE(answer.has_value());
  const Msg msg = unwrap(*answer);
  ASSERT_EQ(msg.kind, MsgKind::kStatReply);
  const DaemonStats stats = stats_decode(msg.payload);
  EXPECT_GE(stats.connections_total, 1u);
  daemon.stop();
}

TEST(NetDaemon, KilledClientResumesByteIdentically) {
  DaemonConfig config = quick_daemon_config();
  Daemon daemon(config);
  daemon.start();

  DaemonClientConfig cfg;
  cfg.offer = deterministic_offer({MethodId::kLempelZiv, MethodId::kNone});
  cfg.offer.name = "lazarus";
  DaemonClient client(daemon.port(), cfg);

  constexpr int kBlocks = 10;
  constexpr std::size_t kBlockBytes = 8 * 1024;
  Bytes expected;
  for (int i = 0; i < kBlocks / 2; ++i) {
    Bytes b = demo_block(5, static_cast<std::uint32_t>(i), kBlockBytes);
    expected.insert(expected.end(), b.begin(), b.end());
    daemon.publish(std::move(b));
  }
  ASSERT_TRUE(client.poll_until(expected.size(), 10000));

  // Kill: no bye, no warning. The daemon parks the session on EOF.
  const std::uint64_t session = client.session().session_id();
  client.drop();
  msleep(100);

  // Blocks published while the client is dead must survive the outage
  // (parked sessions keep planning; the ring holds the gap).
  for (int i = kBlocks / 2; i < kBlocks; ++i) {
    Bytes b = demo_block(5, static_cast<std::uint32_t>(i), kBlockBytes);
    expected.insert(expected.end(), b.begin(), b.end());
    daemon.publish(std::move(b));
  }
  msleep(100);

  client.resume(daemon.port());
  EXPECT_TRUE(client.welcome().resumed);
  EXPECT_EQ(client.welcome().session_id, session);
  ASSERT_TRUE(client.poll_until(expected.size(), 10000));
  // No gap, no duplicate: the resumed stream is byte-identical to one
  // that never dropped.
  EXPECT_EQ(client.stream(), expected);

  client.bye();
  daemon.stop();
  EXPECT_EQ(daemon.manager().counters().resumes, 1u);
}

TEST(NetDaemon, ResumeWithBadTokenIsTypedReject) {
  Daemon daemon(quick_daemon_config());
  daemon.start();
  DaemonClientConfig cfg;
  DaemonClient client(daemon.port(), cfg);
  const std::uint64_t session = client.session().session_id();
  client.drop();

  CompressionOffer offer;
  offer.resume_session = session;
  offer.resume_token = 0xBAD70CEA;  // wrong credential
  offer.resume_from = 0;
  ScopedFd raw(connect_loopback(daemon.port()));
  send_message(raw.get(), wrap(MsgKind::kHello, offer_encode(offer)));
  const auto answer = recv_message(raw.get());
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(reject_decode(unwrap(*answer).payload).status,
            HandshakeStatus::kResumeRejected);
  daemon.stop();
}

TEST(NetDaemon, OverloadLadderStaysInsideNegotiatedSet) {
  // Under memory pressure the session ladder demotes methods — but the
  // composed governor (ladder first, allowlist last) must never emit a
  // method outside the client's negotiated set.
  const std::vector<MethodId> allowed = {MethodId::kLempelZiv,
                                         MethodId::kNone};
  adaptive::AdaptiveConfig config;
  NegotiatedParams params;
  params.methods = allowed;
  apply(params, config);
  // Simulate the manager's composition with a ladder that demotes
  // everything to Huffman (a method the client did NOT negotiate).
  auto ladder = [](MethodId) { return MethodId::kHuffman; };
  auto user = config.method_governor;
  auto composed = [&](MethodId m) { return user(ladder(m)); };
  // Huffman is not in the set: the allowlist pushes it down to kNone
  // rather than letting it onto the wire.
  EXPECT_EQ(composed(MethodId::kBurrowsWheeler), MethodId::kNone);
  EXPECT_EQ(composed(MethodId::kLempelZiv), MethodId::kNone);
}

TEST(NetDaemon, PollBackendServesClientsToo) {
  DaemonConfig config = quick_daemon_config();
  config.backend = LoopBackend::kPoll;
  Daemon daemon(config);
  daemon.start();
  DaemonClientConfig cfg;
  cfg.offer = deterministic_offer({MethodId::kHuffman, MethodId::kNone});
  DaemonClient client(daemon.port(), cfg);
  Bytes expected;
  for (int i = 0; i < 4; ++i) {
    Bytes b = demo_block(3, static_cast<std::uint32_t>(i), 4096);
    expected.insert(expected.end(), b.begin(), b.end());
    daemon.publish(std::move(b));
  }
  ASSERT_TRUE(client.poll_until(expected.size(), 10000));
  EXPECT_EQ(client.stream(), expected);
  client.bye();
  daemon.stop();
}

// --- NetClient: heartbeat liveness over a real socket ------------------

TEST(NetClient, HeartbeatsKeepSessionLiveAcrossSilence) {
  DaemonConfig config = quick_daemon_config();
  config.session.liveness_timeout = 0.3;
  config.session.suspect_grace = 0.2;
  Daemon daemon(config);
  daemon.start();

  DaemonClientConfig cfg;
  DaemonClient client(daemon.port(), cfg);
  const std::uint64_t session = client.session().session_id();

  // Nothing published for several liveness windows; polling sends the due
  // heartbeats, so the session must still be live afterwards — real
  // sockets deliver with latency, which is exactly what this exercises.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(1200);
  while (std::chrono::steady_clock::now() < deadline) client.poll(20);
  ASSERT_TRUE(client.connected());

  Bytes b = demo_block(1, 0, 4096);
  const Bytes expected = b;
  daemon.publish(std::move(b));
  ASSERT_TRUE(client.poll_until(expected.size(), 10000));
  EXPECT_EQ(client.stream(), expected);

  client.bye();
  // bye() does not wait for the ack; give the loop a moment to read the
  // kBye (or the EOF behind it) and park the session before inspecting.
  for (int i = 0; i < 100; ++i) {
    if (daemon.manager().state(session) == session::SessionState::kParked) {
      break;
    }
    msleep(10);
  }
  daemon.stop();
  EXPECT_EQ(daemon.manager().state(session), session::SessionState::kParked);
  EXPECT_GT(daemon.manager().counters().heartbeats, 2u);
}

TEST(NetClient, SilentClientGetsParkedNotDropped) {
  DaemonConfig config = quick_daemon_config();
  config.session.liveness_timeout = 0.15;
  config.session.suspect_grace = 0.1;
  config.session.park_grace = 30.0;
  Daemon daemon(config);
  daemon.start();

  DaemonClientConfig cfg;
  cfg.offer = deterministic_offer({MethodId::kHuffman, MethodId::kNone});
  DaemonClient client(daemon.port(), cfg);
  const std::uint64_t session = client.session().session_id();

  // Go silent (no polls, no heartbeats) while staying connected: the
  // liveness machinery must walk live -> suspect -> parked.
  for (int i = 0; i < 300; ++i) {
    if (daemon.manager().state(session) == session::SessionState::kParked) {
      break;
    }
    msleep(10);
  }
  EXPECT_EQ(daemon.manager().state(session), session::SessionState::kParked);

  // A parked session resumes — over the SAME kind of path a killed one
  // does — and the stream picks up with everything published meanwhile.
  Bytes b = demo_block(2, 0, 4096);
  const Bytes expected = b;
  daemon.publish(std::move(b));
  msleep(100);
  client.drop();
  client.resume(daemon.port());
  ASSERT_TRUE(client.poll_until(expected.size(), 10000));
  EXPECT_EQ(client.stream(), expected);
  client.bye();
  daemon.stop();
}

}  // namespace
}  // namespace acex::net
