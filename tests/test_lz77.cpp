#include <gtest/gtest.h>

#include "compress/huffman.hpp"
#include "compress/lz77.hpp"
#include "testdata.hpp"
#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex {
namespace {

// -------------------------------------------------------------- tokenizer

TEST(LzTokenizer, LiteralOnlyForShortInput) {
  const Bytes data = to_bytes("ab");
  const auto tokens = lz::tokenize(data);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_TRUE(tokens[0].is_literal());
  EXPECT_TRUE(tokens[1].is_literal());
  EXPECT_EQ(lz::reconstruct(tokens), data);
}

TEST(LzTokenizer, FindsSimpleRepeat) {
  const Bytes data = to_bytes("abcdefabcdef");
  const auto tokens = lz::tokenize(data);
  bool found_match = false;
  for (const auto& t : tokens) {
    if (!t.is_literal()) {
      found_match = true;
      EXPECT_EQ(t.dist, 6u);
      EXPECT_GE(t.len, lz::kMinMatch);
    }
  }
  EXPECT_TRUE(found_match);
  EXPECT_EQ(lz::reconstruct(tokens), data);
}

TEST(LzTokenizer, OverlappingRunMatch) {
  const Bytes data(1000, 'x');
  const auto tokens = lz::tokenize(data);
  EXPECT_LT(tokens.size(), 10u);  // a couple of tokens cover the run
  EXPECT_EQ(lz::reconstruct(tokens), data);
}

TEST(LzTokenizer, TokensCoverInputExactly) {
  for (const auto& pattern : testdata::patterns()) {
    const Bytes data = pattern.make(10000, 77);
    const auto tokens = lz::tokenize(data);
    EXPECT_EQ(lz::reconstruct(tokens), data) << pattern.name;
  }
}

TEST(LzTokenizer, RespectsMaxMatchLength) {
  const Bytes data(4096, 'r');
  for (const auto& t : lz::tokenize(data)) {
    if (!t.is_literal()) {
      EXPECT_LE(t.len, lz::kMaxMatch);
    }
  }
}

TEST(LzTokenizer, GreedyModeStillRoundTrips) {
  lz::Params params;
  params.lazy = false;
  const Bytes data = testdata::repetitive_text(20000, 5);
  EXPECT_EQ(lz::reconstruct(lz::tokenize(data, params)), data);
}

TEST(LzTokenizer, SmallWindowLimitsDistance) {
  lz::Params params;
  params.window_bits = 8;  // 256-byte window
  const Bytes data = testdata::repetitive_text(8192, 6);
  for (const auto& t : lz::tokenize(data, params)) {
    if (!t.is_literal()) {
      EXPECT_LE(t.dist, 256u);
    }
  }
}

TEST(LzTokenizer, LazyMatchingNeverLosesToGreedy) {
  // Lazy matching optimizes encoded size (it may emit MORE tokens while
  // covering the input with longer matches), so compare compressed bytes.
  lz::Params greedy;
  greedy.lazy = false;
  LempelZivCodec lazy_codec;  // default params: lazy
  LempelZivCodec greedy_codec(greedy);
  const Bytes data = testdata::repetitive_text(50000, 7);
  const std::size_t lazy_size = lazy_codec.compress(data).size();
  const std::size_t greedy_size = greedy_codec.compress(data).size();
  EXPECT_LE(lazy_size, greedy_size + greedy_size / 50);
}

TEST(LzReconstruct, RejectsInvalidBackReference) {
  std::vector<lz::Token> tokens = {
      {0, 0, 'a'},
      {5, 3, 0},  // distance 5 with only 1 byte of history
  };
  EXPECT_THROW(lz::reconstruct(tokens), DecodeError);
}

// ---------------------------------------------------------------- buckets

TEST(LzBuckets, LengthBucketsInvertExactly) {
  for (unsigned len = lz::kMinMatch; len <= lz::kMaxMatch; ++len) {
    const auto b = lz::length_bucket(len);
    ASSERT_LT(b.symbol, lz::kLenSymbols);
    unsigned eb = 0;
    const unsigned base = lz::length_base(b.symbol, &eb);
    EXPECT_EQ(eb, b.extra_bits);
    EXPECT_EQ(base + b.extra, len);
  }
}

TEST(LzBuckets, DistanceBucketsInvertExactly) {
  for (std::uint32_t d = 1; d <= 65536; d = d < 128 ? d + 1 : d * 2 - 7) {
    const auto b = lz::distance_bucket(d);
    ASSERT_LT(b.symbol, lz::kDistSymbols);
    unsigned eb = 0;
    const std::uint32_t base = lz::distance_base(b.symbol, &eb);
    EXPECT_EQ(eb, b.extra_bits);
    EXPECT_EQ(base + b.extra, d);
  }
}

TEST(LzBuckets, SmallValuesGetDedicatedSymbols) {
  // §2.3: "both of the numbers tend to be small ... shorter representation
  // for small numbers" — small values must not need extra bits.
  for (unsigned len = 3; len <= 10; ++len) {
    EXPECT_EQ(lz::length_bucket(len).extra_bits, 0u);
  }
  for (std::uint32_t d = 1; d <= 4; ++d) {
    EXPECT_EQ(lz::distance_bucket(d).extra_bits, 0u);
  }
}

TEST(LzBuckets, InvalidSymbolsThrow) {
  unsigned eb = 0;
  EXPECT_THROW(lz::length_base(lz::kLenSymbols, &eb), DecodeError);
  EXPECT_THROW(lz::distance_base(lz::kDistSymbols, &eb), DecodeError);
}

// ------------------------------------------------------------------ codec

TEST(LempelZivCodec, RoundTripsAllPatterns) {
  LempelZivCodec codec;
  for (const auto& pattern : testdata::patterns()) {
    const Bytes data = pattern.make(30000, 11);
    EXPECT_EQ(codec.decompress(codec.compress(data)), data) << pattern.name;
  }
}

TEST(LempelZivCodec, EmptyInput) {
  LempelZivCodec codec;
  EXPECT_TRUE(codec.decompress(codec.compress(Bytes{})).empty());
}

TEST(LempelZivCodec, CompressesRepetitiveTextWell) {
  LempelZivCodec codec;
  const Bytes data = testdata::repetitive_text(128 * 1024, 12);
  EXPECT_LT(codec.compress(data).size(), data.size() / 4);
}

TEST(LempelZivCodec, StoredModeForRandomData) {
  LempelZivCodec codec;
  const Bytes data = testdata::random_bytes(16 * 1024, 13);
  const Bytes packed = codec.compress(data);
  // Stored fallback bounds expansion to the tiny header.
  EXPECT_LE(packed.size(), data.size() + 16);
  EXPECT_EQ(codec.decompress(packed), data);
}

TEST(LempelZivCodec, BeatsHuffmanOnRepetitiveData) {
  LempelZivCodec lzc;
  HuffmanCodec hc;
  const Bytes data = testdata::repetitive_text(64 * 1024, 14);
  EXPECT_LT(lzc.compress(data).size(), hc.compress(data).size());
}

TEST(LempelZivCodec, TruncatedInputThrows) {
  LempelZivCodec codec;
  Bytes packed = codec.compress(testdata::repetitive_text(8192, 15));
  packed.resize(packed.size() / 3);
  EXPECT_THROW(codec.decompress(packed), DecodeError);
}

TEST(LempelZivCodec, CorruptModeByteThrows) {
  LempelZivCodec codec;
  Bytes packed = codec.compress(testdata::repetitive_text(1024, 16));
  std::size_t pos = 0;
  (void)get_varint(packed, &pos);
  packed[pos] = 9;  // invalid mode
  EXPECT_THROW(codec.decompress(packed), DecodeError);
}

TEST(LempelZivCodec, StoredSizeMismatchThrows) {
  LempelZivCodec codec;
  const Bytes data = testdata::random_bytes(512, 17);
  Bytes packed = codec.compress(data);  // stored mode
  packed.push_back(0);                  // trailing junk
  EXPECT_THROW(codec.decompress(packed), DecodeError);
}

TEST(LempelZivCodec, DecodedSizeIsBounded) {
  // A corrupted bitstream must not emit more than the declared size.
  LempelZivCodec codec;
  const Bytes data = testdata::long_runs(4096, 18);
  Bytes packed = codec.compress(data);
  // Flip bits in the payload; decode either throws or yields <= 4096 bytes.
  for (std::size_t i = packed.size() / 2; i < packed.size(); i += 7) {
    Bytes corrupt = packed;
    corrupt[i] ^= 0x55;
    try {
      const Bytes out = codec.decompress(corrupt);
      EXPECT_LE(out.size(), data.size());
    } catch (const DecodeError&) {
      // acceptable: corruption detected
    }
  }
}

}  // namespace
}  // namespace acex
