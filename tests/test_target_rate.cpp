// Tests for the user-expressed target transmission rate (§1: users express
// "the target rates of data transmission") and the monitor's achieved-ratio
// estimate it builds on.

#include <gtest/gtest.h>

#include <optional>

#include "adaptive/monitor.hpp"
#include "adaptive/pipeline.hpp"
#include "netsim/link.hpp"
#include "transport/sim_transport.hpp"
#include "util/error.hpp"
#include "workloads/transactions.hpp"

namespace acex::adaptive {
namespace {

// ------------------------------------------------------------ ratio_or

TEST(MonitorRatio, FallbackBeforeSamples) {
  ReducingSpeedMonitor monitor;
  EXPECT_DOUBLE_EQ(monitor.ratio_or(MethodId::kLempelZiv, 0.4), 0.4);
}

TEST(MonitorRatio, DerivedFromSpeedSeries) {
  ReducingSpeedMonitor monitor;
  // 1000 -> 300 in 0.1 s: ratio 0.3.
  monitor.record(MethodId::kLempelZiv, 1000, 300, 0.1);
  EXPECT_NEAR(monitor.ratio_or(MethodId::kLempelZiv, 1.0), 0.3, 1e-9);
}

TEST(MonitorRatio, ExpansionClampsToOne) {
  ReducingSpeedMonitor monitor;
  monitor.record(MethodId::kHuffman, 1000, 1500, 0.1);
  EXPECT_DOUBLE_EQ(monitor.ratio_or(MethodId::kHuffman, 0.5), 1.0);
}

// ------------------------------------------------------ target-rate gate

netsim::LinkParams flat_link(double bps) {
  netsim::LinkParams p;
  p.bandwidth_Bps = bps;
  p.jitter_frac = 0;
  p.latency_s = 0;
  return p;
}

struct Rig {
  VirtualClock clock;
  netsim::SimLink forward, reverse;
  transport::SimDuplex duplex;
  AdaptiveSender sender;

  Rig(double bps, AdaptiveConfig config)
      : forward(flat_link(bps), 1),
        reverse(flat_link(1e9), 2),
        duplex(forward, reverse, clock),
        sender(duplex.a(), patch(std::move(config))) {}

  static AdaptiveConfig patch(AdaptiveConfig config) {
    config.async_sampling = false;
    return config;
  }
};

TEST(TargetRate, DisabledKeepsBreakEvenChoice) {
  workloads::TransactionGenerator gen(1);
  const Bytes data = gen.text_block(512 * 1024);

  AdaptiveConfig config;
  config.initial_bandwidth_Bps = 1e9;
  Rig rig(1e9, config);  // effectively infinite link
  const auto report = rig.sender.send_all(data);
  for (std::size_t i = 1; i < report.blocks.size(); ++i) {
    EXPECT_EQ(report.blocks[i].method, MethodId::kNone);
  }
}

TEST(TargetRate, MetByRawTransferChangesNothing) {
  workloads::TransactionGenerator gen(2);
  const Bytes data = gen.text_block(512 * 1024);

  AdaptiveConfig config;
  config.initial_bandwidth_Bps = 1e9;
  config.target_rate_Bps = 1e6;  // the 1 GB/s link meets this raw
  Rig rig(1e9, config);
  const auto report = rig.sender.send_all(data);
  for (std::size_t i = 1; i < report.blocks.size(); ++i) {
    EXPECT_EQ(report.blocks[i].method, MethodId::kNone);
  }
}

TEST(TargetRate, EscalatesWhenLinkFallsShort) {
  // A 1 MB/s link cannot carry 2 MB/s of payload raw; the selector must
  // compress even though break-even alone might already do so — force the
  // contrast by giving the link plenty of CPU headroom.
  workloads::TransactionGenerator gen(3);
  const Bytes data = gen.text_block(1024 * 1024);

  AdaptiveConfig config;
  config.initial_bandwidth_Bps = 1e6;
  config.target_rate_Bps = 2e6;
  Rig rig(1e6, config);
  const auto report = rig.sender.send_all(data);
  std::size_t compressed = 0;
  for (const auto& b : report.blocks) {
    compressed += b.method != MethodId::kNone;
  }
  EXPECT_EQ(compressed, report.blocks.size());
  // Effective payload rate delivered must approach the target: with ~25 %
  // wire ratio a 1 MB/s link carries ~4 MB/s of payload.
  const double payload_rate =
      static_cast<double>(report.original_bytes) / report.total_seconds;
  EXPECT_GT(payload_rate, 1.5e6);
}

TEST(TargetRate, UnreachableTargetEscalatesToStrongest) {
  workloads::TransactionGenerator gen(4);
  const Bytes data = gen.text_block(512 * 1024);

  AdaptiveConfig config;
  config.initial_bandwidth_Bps = 1e5;   // 100 KB/s link
  config.target_rate_Bps = 100e6;       // absurd target
  Rig rig(1e5, config);
  const auto report = rig.sender.send_all(data);
  for (const auto& b : report.blocks) {
    EXPECT_EQ(b.method, MethodId::kBurrowsWheeler);
  }
}

TEST(TargetRate, EscalationNeverWeakensBreakEvenChoice) {
  // On a link slow enough that break-even already picks BW, a modest
  // target must not demote the method.
  workloads::TransactionGenerator gen(5);
  const Bytes data = gen.text_block(512 * 1024);

  AdaptiveConfig config;
  config.initial_bandwidth_Bps = 2e4;
  config.target_rate_Bps = 1e3;  // trivially met
  Rig rig(2e4, config);
  const auto report = rig.sender.send_all(data);
  std::size_t bw_blocks = 0;
  for (const auto& b : report.blocks) {
    bw_blocks += b.method == MethodId::kBurrowsWheeler;
  }
  EXPECT_GE(bw_blocks, report.blocks.size() - 1);
}

TEST(TargetRate, NegativeTargetRejected) {
  VirtualClock clock;
  netsim::SimLink fwd(flat_link(1e6), 1), rev(flat_link(1e6), 2);
  transport::SimDuplex duplex(fwd, rev, clock);
  AdaptiveConfig config;
  config.target_rate_Bps = -1;
  EXPECT_THROW(AdaptiveSender(duplex.a(), config), ConfigError);
}

TEST(TargetRate, UsesMonitoredRatiosOnceAvailable) {
  // After a few blocks the ladder's ratio estimates come from real
  // achievements; on incompressible data even BW cannot reach the target,
  // but the selector must still settle on SOME rung without thrashing.
  Rng rng(6);
  const Bytes data = rng.bytes(512 * 1024);

  AdaptiveConfig config;
  config.initial_bandwidth_Bps = 1e5;
  config.target_rate_Bps = 10e6;
  Rig rig(1e5, config);
  const auto report = rig.sender.send_all(data);
  // All blocks escalate to the strongest method (stored-mode fallback
  // bounds the damage on random data).
  for (const auto& b : report.blocks) {
    EXPECT_EQ(b.method, MethodId::kBurrowsWheeler);
    EXPECT_LE(b.wire_size, b.original_size + 64);
  }
}

}  // namespace
}  // namespace acex::adaptive
