// Cross-module integration tests: the full middleware stack over real TCP
// sockets (threads, kernel buffers, wall-clock), paced experiments, and
// the seams between experiment configuration and the stream drivers.

#include <gtest/gtest.h>

#include <thread>

#include "adaptive/echo_integration.hpp"
#include "adaptive/experiment.hpp"
#include "adaptive/pipeline.hpp"
#include "echo/bridge.hpp"
#include "echo/bus.hpp"
#include "netsim/load_trace.hpp"
#include "testdata.hpp"
#include "transport/sim_transport.hpp"
#include "transport/tcp_transport.hpp"
#include "util/error.hpp"
#include "workloads/transactions.hpp"

namespace acex {
namespace {

// ------------------------------------------------------ adaptive over TCP

TEST(TcpIntegration, AdaptiveStreamOverSockets) {
  auto [client, server] = transport::socket_pair();
  workloads::TransactionGenerator gen(1);
  const Bytes data = gen.text_block(2 * 1024 * 1024);

  std::thread sender_thread([&client, &data] {
    adaptive::AdaptiveConfig config;
    config.initial_bandwidth_Bps = 100e6;
    adaptive::AdaptiveSender sender(client, config);
    const auto report = sender.send_all(data);
    EXPECT_EQ(report.original_bytes, data.size());
    client.shutdown_send();
  });

  adaptive::AdaptiveReceiver receiver(server);
  const Bytes restored = receiver.receive_available();
  sender_thread.join();
  EXPECT_EQ(restored, data);
  EXPECT_EQ(receiver.frames_received(), 16u);
}

TEST(TcpIntegration, BridgedChannelsAcrossSockets) {
  // Producer process side: channel -> compressor handler -> bridge sender.
  // Consumer side: bridge receiver -> channel -> controller + decompress.
  auto [producer_end, consumer_end] = transport::socket_pair();

  echo::EventChannel producer_channel("ois");
  adaptive::SwitchableCompressor compressor(MethodId::kLempelZiv);
  echo::EventChannel wire_channel("ois.wire");
  const auto handler = compressor.handler();
  producer_channel.subscribe([&](const echo::Event& e) {
    if (auto compressed = handler(e)) wire_channel.submit(*compressed);
  });
  echo::ChannelSender bridge_out(wire_channel, producer_end);

  echo::EventChannel consumer_channel("ois.inbound");
  echo::ChannelReceiver bridge_in(consumer_channel, consumer_end);

  const auto decompress = adaptive::make_decompression_handler();
  std::vector<Bytes> received;
  consumer_channel.subscribe([&](const echo::Event& e) {
    received.push_back(decompress(e)->payload);
  });

  workloads::TransactionGenerator gen(2);
  std::vector<Bytes> sent;
  std::thread producer([&] {
    for (int i = 0; i < 25; ++i) {
      sent.push_back(gen.text_block(20000 + 100 * i));
      producer_channel.submit(echo::Event(sent.back()));
    }
    producer_end.shutdown_send();
  });

  while (received.size() < 25) {
    if (bridge_in.poll(1) == 0) break;  // 0 only at EOF
  }
  producer.join();
  ASSERT_EQ(received.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(received[i], sent[i]) << "event " << i;
  }
}

TEST(TcpIntegration, ControlAttributesFlowUpstreamOverSockets) {
  auto [producer_end, consumer_end] = transport::socket_pair();

  echo::EventChannel wire_channel("ctl");
  adaptive::SwitchableCompressor compressor(MethodId::kNone);
  wire_channel.on_control(compressor.control_sink());
  echo::ChannelSender bridge_out(wire_channel, producer_end);

  echo::EventChannel consumer_channel("ctl.inbound");
  echo::ChannelReceiver bridge_in(consumer_channel, consumer_end);

  echo::AttributeMap request;
  request.set_int(adaptive::kMethodAttr,
                  static_cast<int>(MethodId::kBurrowsWheeler));
  bridge_in.signal_control(request);
  consumer_end.shutdown_send();

  EXPECT_EQ(bridge_out.pump_control(), 1u);
  EXPECT_EQ(compressor.method(), MethodId::kBurrowsWheeler);
}

// ---------------------------------------------------------- paced driver

TEST(PacedExperiment, BlocksFollowThePace) {
  workloads::TransactionGenerator gen(3);
  const Bytes data = gen.text_block(10 * 128 * 1024);

  adaptive::ExperimentConfig config;
  config.link.jitter_frac = 0;
  config.pace = 2.0;
  config.adaptive.async_sampling = false;

  const auto result = run_adaptive(data, config);
  ASSERT_TRUE(result.verified);
  ASSERT_EQ(result.stream.blocks.size(), 10u);
  for (std::size_t i = 0; i < result.stream.blocks.size(); ++i) {
    EXPECT_GE(result.stream.blocks[i].submitted,
              2.0 * static_cast<double>(i) - 1e-9)
        << "block " << i;
  }
  EXPECT_GE(result.stream.total_seconds, 18.0);
}

TEST(PacedExperiment, FixedPolicyAlsoPaces) {
  workloads::TransactionGenerator gen(4);
  const Bytes data = gen.text_block(5 * 128 * 1024);

  adaptive::ExperimentConfig config;
  config.link.jitter_frac = 0;
  config.pace = 1.0;
  config.adaptive.async_sampling = false;

  const auto result = run_fixed(data, config, MethodId::kHuffman);
  ASSERT_TRUE(result.verified);
  for (const auto& b : result.stream.blocks) {
    EXPECT_EQ(b.method, MethodId::kHuffman);
  }
  EXPECT_GE(result.stream.blocks.back().submitted, 4.0);
}

TEST(PacedExperiment, ZeroPaceIsBulk) {
  workloads::TransactionGenerator gen(5);
  const Bytes data = gen.text_block(4 * 128 * 1024);
  adaptive::ExperimentConfig config;
  config.link.jitter_frac = 0;
  config.adaptive.async_sampling = false;
  const auto result = run_adaptive(data, config);
  ASSERT_TRUE(result.verified);
  EXPECT_LT(result.stream.total_seconds, 1.0);
}

// --------------------------------------------------------- small seams

TEST(SendBlockFixed, RespectsBlockSizeLimit) {
  VirtualClock clock;
  netsim::LinkParams flat;
  flat.jitter_frac = 0;
  netsim::SimLink fwd(flat, 1), rev(flat, 2);
  transport::SimDuplex duplex(fwd, rev, clock);
  adaptive::AdaptiveConfig config;
  config.async_sampling = false;
  adaptive::AdaptiveSender sender(duplex.a(), config);

  const Bytes ok(config.decision.block_size, 1);
  EXPECT_NO_THROW(sender.send_block_fixed(ok, MethodId::kHuffman));
  const Bytes big(config.decision.block_size + 1, 1);
  EXPECT_THROW(sender.send_block_fixed(big, MethodId::kHuffman), ConfigError);
}

TEST(LoadTraceTimeScaled, CompressesTimeAxis) {
  const netsim::LoadTrace trace({{0, 1}, {8, 5}, {16, 2}});
  const netsim::LoadTrace fast = trace.time_scaled(0.5);
  EXPECT_DOUBLE_EQ(fast.duration(), 8.0);
  EXPECT_DOUBLE_EQ(fast.value_at(3.9), 1.0);
  EXPECT_DOUBLE_EQ(fast.value_at(4.0), 5.0);
  EXPECT_DOUBLE_EQ(fast.peak(), trace.peak());
  EXPECT_THROW(trace.time_scaled(0.0), ConfigError);
  EXPECT_THROW(trace.time_scaled(-1.0), ConfigError);
}

TEST(ExperimentSeeds, DifferentSeedsDifferentJitter) {
  workloads::TransactionGenerator gen(6);
  const Bytes data = gen.text_block(512 * 1024);
  adaptive::ExperimentConfig a, b;
  a.link = b.link = netsim::international_link();  // heavy jitter
  a.adaptive.async_sampling = b.adaptive.async_sampling = false;
  a.seed = 1;
  b.seed = 2;
  const auto ra = run_fixed(data, a, MethodId::kNone);
  const auto rb = run_fixed(data, b, MethodId::kNone);
  EXPECT_NE(ra.stream.total_seconds, rb.stream.total_seconds);
}

TEST(ExperimentSeeds, SameSeedReproducesWireTimeline) {
  workloads::TransactionGenerator gen(7);
  const Bytes data = gen.text_block(512 * 1024);
  adaptive::ExperimentConfig config;
  config.link = netsim::international_link();
  config.adaptive.async_sampling = false;
  const auto ra = run_fixed(data, config, MethodId::kNone);
  const auto rb = run_fixed(data, config, MethodId::kNone);
  ASSERT_EQ(ra.stream.blocks.size(), rb.stream.blocks.size());
  for (std::size_t i = 0; i < ra.stream.blocks.size(); ++i) {
    // Wire time is seeded; only the (real) compression timings differ.
    EXPECT_DOUBLE_EQ(ra.stream.blocks[i].send_seconds,
                     rb.stream.blocks[i].send_seconds);
  }
}

}  // namespace
}  // namespace acex
