#include <gtest/gtest.h>

#include "netsim/rudp.hpp"
#include "util/error.hpp"

namespace acex::netsim::rudp {
namespace {

LinkParams clean_link(double bps, double latency = 0.001) {
  LinkParams p;
  p.bandwidth_Bps = bps;
  p.latency_s = latency;
  p.jitter_frac = 0;
  return p;
}

struct Rig {
  SimLink forward;
  SimLink reverse;
  Rng rng;

  explicit Rig(double bps = 1e6, double latency = 0.001,
               std::uint64_t seed = 1)
      : forward(clean_link(bps, latency), seed),
        reverse(clean_link(bps, latency), seed + 1),
        rng(seed + 2) {}
};

TEST(Rudp, LosslessTransferApproachesLinkRate) {
  Rig rig(1e6);
  const auto r = simulate_transfer(1'000'000, rig.forward, rig.reverse, 0,
                                   rig.rng);
  EXPECT_EQ(r.retransmissions, 0u);
  EXPECT_EQ(r.data_packets, (1'000'000 + 1399) / 1400);
  // Goodput within ~15 % of the wire rate (window fill + final RTT).
  EXPECT_GT(r.goodput_Bps, 0.85e6);
  EXPECT_LE(r.goodput_Bps, 1.01e6);
  EXPECT_DOUBLE_EQ(r.efficiency, 1.0);
}

TEST(Rudp, EmptyPayloadIsFree) {
  Rig rig;
  const auto r = simulate_transfer(0, rig.forward, rig.reverse, 0, rig.rng);
  EXPECT_EQ(r.data_packets, 0u);
  EXPECT_DOUBLE_EQ(r.completion, 0.0);
}

TEST(Rudp, SinglePacketPayload) {
  Rig rig;
  const auto r = simulate_transfer(100, rig.forward, rig.reverse, 0, rig.rng);
  EXPECT_EQ(r.data_packets, 1u);
  // One packet + one ack: roughly a base RTT.
  EXPECT_GT(r.completion, 0.002);
  EXPECT_LT(r.completion, 0.01);
}

TEST(Rudp, DeliversReliablyUnderHeavyLoss) {
  Rig rig(1e6, 0.001, 7);
  RudpParams params;
  params.data_loss = 0.2;
  params.ack_loss = 0.1;
  const auto r = simulate_transfer(500'000, rig.forward, rig.reverse, 0,
                                   rig.rng, params);
  EXPECT_GT(r.retransmissions, 0u);
  EXPECT_LT(r.efficiency, 1.0);
  // Cumulative-ACK ARQ go-back-N-ishly re-sends behind every hole; at 20 %
  // data loss, efficiency well below the no-loss ideal but clearly above a
  // pathological floor is the expected envelope.
  EXPECT_GT(r.efficiency, 0.25);
  EXPECT_GT(r.goodput_Bps, 0.1e6);  // still makes real progress
}

TEST(Rudp, LossDegradesGoodputMonotonically) {
  double previous = 1e18;
  for (const double loss : {0.0, 0.05, 0.2, 0.4}) {
    Rig rig(1e6, 0.001, 11);
    RudpParams params;
    params.data_loss = loss;
    const auto r = simulate_transfer(400'000, rig.forward, rig.reverse, 0,
                                     rig.rng, params);
    EXPECT_LT(r.goodput_Bps, previous * 1.02) << "loss=" << loss;
    previous = r.goodput_Bps;
  }
}

TEST(Rudp, WindowOneIsStopAndWait) {
  // One packet per RTT: goodput ~ packet / RTT, far below the wire rate on
  // a long-latency path.
  Rig rig(1e6, 0.02, 3);  // 40 ms RTT
  RudpParams params;
  params.window = 1;
  const auto r = simulate_transfer(200'000, rig.forward, rig.reverse, 0,
                                   rig.rng, params);
  const double rtt = 0.04 + 1400.0 / 1e6;
  EXPECT_NEAR(r.goodput_Bps, 1400.0 / rtt, 1400.0 / rtt * 0.2);
}

TEST(Rudp, LargerWindowFillsLongFatPipe) {
  Rig slow_window(1e6, 0.02, 5);
  RudpParams small;
  small.window = 2;
  const auto a = simulate_transfer(400'000, slow_window.forward,
                                   slow_window.reverse, 0, slow_window.rng,
                                   small);
  Rig big_window(1e6, 0.02, 5);
  RudpParams big;
  big.window = 64;
  const auto b = simulate_transfer(400'000, big_window.forward,
                                   big_window.reverse, 0, big_window.rng,
                                   big);
  EXPECT_GT(b.goodput_Bps, a.goodput_Bps * 3);
}

TEST(Rudp, DeterministicForSeed) {
  const auto run = [] {
    Rig rig(1e6, 0.001, 21);
    RudpParams params;
    params.data_loss = 0.1;
    return simulate_transfer(300'000, rig.forward, rig.reverse, 0, rig.rng,
                             params);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.completion, b.completion);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
}

TEST(Rudp, QueueStateCarriesAcrossTransfers) {
  Rig rig(1e6);
  const auto first =
      simulate_transfer(500'000, rig.forward, rig.reverse, 0, rig.rng);
  // Starting a second transfer at t=0 must queue behind the first's
  // packets still draining through the link.
  const auto second =
      simulate_transfer(500'000, rig.forward, rig.reverse, 0, rig.rng);
  EXPECT_GT(second.completion, first.completion * 1.5);
}

// ---------------------------------------------------- RTO corner cases

TEST(Rudp, RtoMultipleGovernsStopAndWaitLossRecovery) {
  // With window=1 every dropped packet stalls for exactly one RTO before
  // its resend, so the configured multiple shows up directly in the
  // completion time.
  const auto run = [](double multiple) {
    Rig rig(1e6, 0.001, 31);
    RudpParams params;
    params.window = 1;
    params.data_loss = 0.3;
    params.rto_rtt_multiple = multiple;
    return simulate_transfer(100'000, rig.forward, rig.reverse, 0, rig.rng,
                             params);
  };
  const auto quick = run(2.0);
  const auto slow = run(16.0);
  EXPECT_GT(quick.retransmissions, 0u);
  EXPECT_GT(slow.retransmissions, 0u);
  EXPECT_GT(slow.completion, quick.completion * 1.5);
}

TEST(Rudp, PureAckLossIsHealedByRtoAndDuplicateAcks) {
  // Zero data loss, heavy ACK loss, stop-and-wait: progress depends on RTO
  // resends whose duplicate arrivals re-trigger the cumulative ACK. The
  // transfer completes, every retransmission is pure overhead, and — since
  // no data packet is ever dropped — every send produces exactly one ACK.
  Rig rig(1e6, 0.001, 33);
  RudpParams params;
  params.window = 1;
  params.ack_loss = 0.5;
  const auto r = simulate_transfer(50'000, rig.forward, rig.reverse, 0,
                                   rig.rng, params);
  EXPECT_GT(r.retransmissions, 0u);
  EXPECT_LT(r.efficiency, 1.0);
  EXPECT_GT(r.goodput_Bps, 0.0);
  EXPECT_EQ(r.acks_sent, r.data_packets);
}

TEST(Rudp, ZeroLatencyLinksStillConvergeUnderLoss) {
  // latency=0 exercises the RTO floor: base RTT reduces to the two
  // serialization delays, and the simulation must still terminate.
  Rig rig(1e6, 0.0, 35);
  RudpParams params;
  params.data_loss = 0.2;
  const auto r = simulate_transfer(200'000, rig.forward, rig.reverse, 0,
                                   rig.rng, params);
  EXPECT_GT(r.retransmissions, 0u);
  EXPECT_GT(r.goodput_Bps, 0.0);
}

TEST(Rudp, RejectsInvalidParameters) {
  Rig rig;
  RudpParams params;
  params.window = 0;
  EXPECT_THROW(
      simulate_transfer(1000, rig.forward, rig.reverse, 0, rig.rng, params),
      ConfigError);
  params = {};
  params.data_loss = 1.0;
  EXPECT_THROW(
      simulate_transfer(1000, rig.forward, rig.reverse, 0, rig.rng, params),
      ConfigError);
  params = {};
  params.packet_bytes = 0;
  EXPECT_THROW(
      simulate_transfer(1000, rig.forward, rig.reverse, 0, rig.rng, params),
      ConfigError);
}

}  // namespace
}  // namespace acex::netsim::rudp
