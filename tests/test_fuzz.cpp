// Randomized robustness suite: every parser in acex must survive arbitrary
// corruption — throw acex::Error or return bounded garbage, never crash,
// hang, or allocate unboundedly. Seeds are parameterized so ctest runs
// each seed as its own case; set ACEX_FUZZ_ITERS for deeper fuzzing (the
// ctest default stays at 60 mutations per seed).

#include <gtest/gtest.h>

#include <set>

#include "adaptive/pipeline.hpp"
#include "compress/frame.hpp"
#include "compress/bwt_codec.hpp"
#include "compress/quant_codec.hpp"
#include "compress/registry.hpp"
#include "echo/channel.hpp"
#include "pbio/pbio.hpp"
#include "qa/mutate.hpp"
#include "testdata.hpp"
#include "transport/fault_transport.hpp"
#include "transport/sim_transport.hpp"
#include "util/error.hpp"
#include "workloads/molecular.hpp"

namespace acex {
namespace {

using qa::mutate;

const int kMutationsPerSeed = qa::fuzz_iterations(60);

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fuzz, CodecsSurviveMutatedStreams) {
  Rng rng(GetParam());
  const Bytes data = testdata::repetitive_text(20000, GetParam());
  for (const MethodId id : paper_methods()) {
    const CodecPtr codec = make_codec(id);
    const Bytes packed = codec->compress(data);
    for (int i = 0; i < kMutationsPerSeed; ++i) {
      const Bytes bad = mutate(packed, rng);
      try {
        const Bytes out = codec->decompress(bad);
        EXPECT_LE(out.size(), (bad.size() + 64) * 2100);  // decoder bounds
      } catch (const Error&) {
      }
    }
  }
}

TEST_P(Fuzz, FramesSurviveMutation) {
  Rng rng(GetParam() + 1000);
  const CodecRegistry registry = CodecRegistry::with_builtins();
  const CodecPtr codec = make_codec(MethodId::kLempelZiv);
  const Bytes framed =
      frame_compress(*codec, testdata::low_entropy(8000, GetParam()));
  int accepted = 0;
  for (int i = 0; i < kMutationsPerSeed; ++i) {
    const Bytes bad = mutate(framed, rng);
    try {
      (void)frame_decompress(bad, registry);
      ++accepted;  // CRC collision or identity mutation: astronomically rare
    } catch (const Error&) {
    }
  }
  // At most the occasional identity mutation sneaks through.
  EXPECT_LE(accepted, 2);
}

TEST_P(Fuzz, FaultedStreamRecoversEveryIntactFrame) {
  // Mutated frames ride a faulty link into a kSkip receiver: the drain must
  // never throw, every frame that reached the wire undamaged must decode to
  // its original block, and transport/receiver counters must reconcile.
  Rng rng(GetParam() + 7000);
  netsim::LinkParams params;
  params.bandwidth_Bps = 1e6;
  params.jitter_frac = 0;
  params.latency_s = 0;
  VirtualClock clock;
  netsim::SimLink forward(params, 1), reverse(params, 2);
  transport::SimDuplex duplex(forward, reverse, clock);
  transport::FaultConfig faults;
  faults.drop_prob = 0.1;
  faults.reorder_prob = 0.1;
  faults.duplicate_prob = 0.1;
  faults.seed = GetParam();
  transport::FaultInjectingTransport lossy(duplex.a(), faults);

  const CodecPtr codec = make_codec(MethodId::kLempelZiv);
  constexpr std::uint64_t kFrames = 40;
  std::vector<Bytes> blocks;
  std::set<std::uint64_t> mutated;
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    blocks.push_back(testdata::low_entropy(2000 + i * 7, GetParam() + i));
    Bytes framed = frame_compress_seq(*codec, blocks.back(), i);
    if (rng.chance(0.3)) {
      framed = mutate(framed, rng);
      mutated.insert(i);
    }
    lossy.send(framed);
  }
  lossy.flush();

  adaptive::AdaptiveReceiver rx(duplex.b(),
                                {adaptive::RecoveryPolicy::kSkip, 3});
  const adaptive::ReceiveReport report = rx.receive_report();  // never throws

  const transport::FaultCounters& c = lossy.counters();
  EXPECT_EQ(c.messages, kFrames);
  EXPECT_EQ(c.messages, c.drops + c.reorders + c.duplicates + c.bit_flips +
                            c.truncations + c.clean);
  EXPECT_EQ(report.frames_ok + report.frames_corrupt + report.frames_duplicate,
            report.frames.size());

  std::set<std::uint64_t> ok_seqs;
  std::size_t ok_bytes = 0;
  for (const adaptive::FrameOutcome& f : report.frames) {
    if (f.status != adaptive::FrameOutcome::Status::kOk) continue;
    ASSERT_TRUE(f.has_sequence);
    ASSERT_LT(f.sequence, kFrames);
    EXPECT_EQ(f.data, blocks[f.sequence]) << "seq " << f.sequence;
    ok_seqs.insert(f.sequence);
    ok_bytes += f.data.size();
  }
  EXPECT_EQ(report.bytes_recovered, ok_bytes);
  // Only frames we mutated ourselves or the link dropped may be missing
  // (an identity mutation can sneak through, hence >=, not ==).
  EXPECT_GE(ok_seqs.size(), kFrames - mutated.size() - c.drops);
}

TEST_P(Fuzz, PbioSurvivesMutation) {
  Rng rng(GetParam() + 2000);
  workloads::MolecularConfig config;
  config.atom_count = 64;
  config.seed = GetParam();
  workloads::MolecularGenerator gen(config);
  const Bytes stream = gen.pbio_snapshot();
  for (int i = 0; i < kMutationsPerSeed; ++i) {
    const Bytes bad = mutate(stream, rng);
    try {
      const auto records = pbio::decode_stream(bad);
      EXPECT_LE(records.size(), 100000u);
    } catch (const Error&) {
    }
  }
}

TEST_P(Fuzz, AttributesSurviveMutation) {
  Rng rng(GetParam() + 3000);
  echo::AttributeMap attrs;
  attrs.set_int("alpha", -5);
  attrs.set_double("beta", 3.48);
  attrs.set_string("gamma", "quality attribute value");
  attrs.set_bytes("delta", rng.bytes(64));
  Bytes wire;
  attrs.serialize(wire);
  for (int i = 0; i < kMutationsPerSeed; ++i) {
    const Bytes bad = mutate(wire, rng);
    try {
      std::size_t pos = 0;
      (void)echo::AttributeMap::deserialize(bad, &pos);
    } catch (const Error&) {
    }
  }
}

TEST_P(Fuzz, EventsSurviveMutation) {
  Rng rng(GetParam() + 4000);
  echo::Event event(rng.bytes(500));
  event.attributes.set_int("seq", 1);
  const Bytes wire = serialize_event(event);
  for (int i = 0; i < kMutationsPerSeed; ++i) {
    const Bytes bad = mutate(wire, rng);
    try {
      (void)echo::deserialize_event(bad);
    } catch (const Error&) {
    }
  }
}

TEST_P(Fuzz, QuantCodecSurvivesMutation) {
  Rng rng(GetParam() + 5000);
  workloads::MolecularConfig config;
  config.atom_count = 256;
  config.seed = GetParam();
  workloads::MolecularGenerator gen(config);
  FloatQuantCodec codec(1e-3);
  const Bytes packed = codec.compress(gen.coordinates_bytes());
  for (int i = 0; i < kMutationsPerSeed; ++i) {
    const Bytes bad = mutate(packed, rng);
    try {
      const Bytes out = codec.decompress(bad);
      EXPECT_LE(out.size(), (std::size_t{1} << 34) * 4);
    } catch (const Error&) {
    }
  }
}

TEST_P(Fuzz, BwtRecoveryNeverCrashesOnArbitraryOffsets) {
  Rng rng(GetParam() + 6000);
  BurrowsWheelerCodec codec(1024);
  const Bytes packed =
      codec.compress(testdata::repetitive_text(16384, GetParam()));
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t offset = rng.below(packed.size() * 8 + 16);
    try {
      const auto chunks = codec.recover_from_bit(packed, offset);
      EXPECT_LE(chunks.size(), 16u);
    } catch (const Error&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace acex
