// Edge-of-contract tests across modules: fallback paths, degenerate
// configurations, and seams the main suites reach only incidentally.

#include <gtest/gtest.h>

#include "adaptive/calibrator.hpp"
#include "adaptive/decision.hpp"
#include "compress/frame.hpp"
#include "compress/huffman.hpp"
#include "compress/metrics.hpp"
#include "compress/null_codec.hpp"
#include "echo/bus.hpp"
#include "netsim/probe.hpp"
#include "pbio/pbio.hpp"
#include "testdata.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace acex {
namespace {

// ------------------------------------------------------------- calibrator

TEST(CalibratorEdge, IncompressibleSampleKeepsBaseBeta) {
  // On random data every method's ratio is ~100 %: the BW-vs-LZ crossing
  // is undefined and the calibrator must fall back to the base constants.
  const Bytes sample = testdata::random_bytes(256 * 1024, 1);
  const adaptive::DecisionParams base;
  const auto report = adaptive::Calibrator().calibrate(sample, base);
  EXPECT_DOUBLE_EQ(report.params.beta, base.beta);
  EXPECT_NO_THROW(report.params.validate());
}

TEST(CalibratorEdge, ZeroRunsClampIntoBand) {
  // All-zero data: extreme ratios and speeds must still produce valid,
  // clamped constants.
  const Bytes sample(256 * 1024, 0);
  const auto report = adaptive::Calibrator().calibrate(sample);
  EXPECT_GE(report.params.ratio_cut_percent, 30.0);
  EXPECT_LE(report.params.ratio_cut_percent, 70.0);
  EXPECT_LE(report.params.beta, 50.0);
  EXPECT_NO_THROW(report.params.validate());
}

// ---------------------------------------------------------------- metrics

TEST(MetricsEdge, EmptyInputRatioIsOneHundred) {
  CompressionMeasurement m;
  EXPECT_DOUBLE_EQ(m.ratio_percent(), 100.0);
  EXPECT_DOUBLE_EQ(m.reducing_speed(), 0.0);
  EXPECT_DOUBLE_EQ(m.compress_throughput(), 0.0);
}

TEST(MetricsEdge, ExpansionHasZeroReducingSpeed) {
  CompressionMeasurement m;
  m.original_size = 100;
  m.compressed_size = 150;
  m.compress_time = 0.1;
  EXPECT_DOUBLE_EQ(m.reducing_speed(), 0.0);
  EXPECT_DOUBLE_EQ(m.ratio_percent(), 150.0);
}

TEST(MetricsEdge, MeasureCodecThrowsOnBrokenCodec) {
  // A codec whose decompress loses data must be caught by measure_codec.
  class Broken final : public Codec {
   public:
    MethodId id() const noexcept override { return MethodId::kNone; }
    Bytes compress(ByteView input) override {
      return Bytes(input.begin(), input.end());
    }
    Bytes decompress(ByteView input) override {
      Bytes out(input.begin(), input.end());
      if (!out.empty()) out[0] ^= 0xFF;
      return out;
    }
  };
  Broken codec;
  MonotonicClock clock;
  const Bytes data = testdata::random_bytes(64, 2);
  EXPECT_THROW(measure_codec(codec, data, clock), Error);
}

// --------------------------------------------------------- bucket ratings

TEST(BucketRatingEdge, DegenerateRangeIsGood) {
  EXPECT_EQ(adaptive::bucket_rating(5, 5, 5, true), adaptive::Rating::kGood);
}

TEST(BucketRatingEdge, LogScaleKicksInForWideSpreads) {
  // value at the geometric midpoint of a 100x spread rates mid-scale, not
  // near-worst as a linear scale would put it.
  const auto r = adaptive::bucket_rating(10.0, 100.0, 1.0, true);
  EXPECT_GE(r, adaptive::Rating::kSatisfactory);
}

TEST(BucketRatingEdge, NonPositiveValueSurvives) {
  EXPECT_EQ(adaptive::bucket_rating(0.0, 100.0, 1.0, true),
            adaptive::Rating::kPoor);
}

// ------------------------------------------------------------- event bus

TEST(EventBusEdge, RemovingMiddleOfDerivationChain) {
  echo::EventBus bus;
  const auto a = bus.create_channel("a");
  const auto b = bus.derive_channel(
      a, [](echo::Event e) -> std::optional<echo::Event> { return e; }, "b");
  const auto c = bus.derive_channel(
      b, [](echo::Event e) -> std::optional<echo::Event> { return e; }, "c");

  int c_events = 0;
  bus.channel(c).subscribe([&](const echo::Event&) { ++c_events; });

  bus.remove_channel(b);  // severs the chain
  bus.channel(a).submit(echo::Event(to_bytes("x")));
  EXPECT_EQ(c_events, 0);
  // c survives as an ordinary channel.
  bus.channel(c).submit(echo::Event(to_bytes("y")));
  EXPECT_EQ(c_events, 1);
  bus.remove_channel(c);
  EXPECT_EQ(bus.channel_count(), 1u);
}

TEST(EventBusEdge, RemoveUnknownChannelThrows) {
  echo::EventBus bus;
  EXPECT_THROW(bus.remove_channel(42), ConfigError);
}

// ----------------------------------------------------------------- frame

TEST(FrameEdge, OverheadFormulaMatchesReality) {
  NullCodec null;
  for (const std::size_t n : {0u, 1u, 127u, 128u, 100000u}) {
    const Bytes data(n, 7);
    const Bytes framed = frame_compress(null, data);
    EXPECT_EQ(framed.size(), n + frame_overhead(n)) << "n=" << n;
  }
}

// ------------------------------------------------------------------ pbio

TEST(PbioEdge, RejectsBadByteOrderFlag) {
  const pbio::Encoder enc(
      pbio::RecordFormat("t", {{"a", pbio::FieldType::kInt32}}));
  Bytes header;
  enc.encode_format(header);
  header[3] = 7;  // invalid order flag
  EXPECT_THROW(pbio::decode_stream(header), DecodeError);
}

TEST(PbioEdge, SenderOrderIsExposed) {
  const auto fmt = pbio::RecordFormat("t", {{"a", pbio::FieldType::kInt32}});
  const pbio::ByteOrder foreign =
      pbio::host_order() == pbio::ByteOrder::kLittle
          ? pbio::ByteOrder::kBig
          : pbio::ByteOrder::kLittle;
  Bytes header;
  pbio::Encoder(fmt, foreign).encode_format(header);
  std::size_t pos = 0;
  const auto decoder = pbio::Decoder::open(header, &pos);
  EXPECT_EQ(decoder.sender_order(), foreign);
}

// --------------------------------------------------------------- huffman

TEST(HuffmanEdge, LargeAlphabetRoundTrips) {
  // The LZ litlen alphabet (274) exceeds a byte; the generic helpers must
  // handle it end to end.
  constexpr std::size_t kAlphabet = 274;
  std::vector<std::uint64_t> freqs(kAlphabet, 0);
  Rng rng(3);
  std::vector<unsigned> symbols;
  for (int i = 0; i < 5000; ++i) {
    const auto s = static_cast<unsigned>(rng.below(kAlphabet));
    ++freqs[s];
    symbols.push_back(s);
  }
  const auto lengths = huff::build_code_lengths(freqs);
  BitWriter bw;
  huff::write_lengths(bw, lengths);
  const huff::Encoder enc(lengths);
  for (const auto s : symbols) enc.encode(bw, s);
  const Bytes buf = bw.take();

  BitReader br(buf);
  const huff::Decoder dec(huff::read_lengths(br, kAlphabet));
  for (const auto s : symbols) ASSERT_EQ(dec.decode(br), s);
}

TEST(HuffmanEdge, MaxBitsParameterIsEnforced) {
  std::vector<std::uint64_t> freqs(64, 0);
  std::uint64_t f = 1;
  for (std::size_t i = 0; i < 40; ++i, f = f * 3 / 2 + 1) freqs[i] = f;
  const auto lengths = huff::build_code_lengths(freqs, 9);
  for (const auto len : lengths) EXPECT_LE(len, 9);
  EXPECT_THROW(huff::build_code_lengths(freqs, 0), ConfigError);
  EXPECT_THROW(huff::build_code_lengths(freqs, 16), ConfigError);
}

// ------------------------------------------------------------- statistics

TEST(StatsEdge, HistogramQuantileExtremes) {
  Histogram h(0, 10, 5);
  for (int i = 0; i < 10; ++i) h.add(5.0);
  EXPECT_NEAR(h.quantile(0.0), 5.0, 1.1);
  EXPECT_NEAR(h.quantile(1.0), 10.0, 1.1);
  Histogram empty(0, 1, 2);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(StatsEdge, RunningStatsSingleSample) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

// ---------------------------------------------------------------- probes

TEST(ProbeEdge, ZeroGapBackToBackPairs) {
  netsim::LinkParams p;
  p.bandwidth_Bps = 1e6;
  p.jitter_frac = 0;
  netsim::SimLink link(p, 5);
  const auto r = netsim::packet_pair_probe(link, 0.0, 1500, 3, 0.0);
  EXPECT_NEAR(r.bandwidth_Bps, 1e6, 1e4);
}

}  // namespace
}  // namespace acex
