#include <gtest/gtest.h>

#include "compress/registry.hpp"
#include "pbio/columnar.hpp"
#include "testdata.hpp"
#include "util/error.hpp"
#include "workloads/molecular.hpp"

namespace acex::pbio {
namespace {

Bytes md_stream(std::size_t atoms) {
  workloads::MolecularConfig config;
  config.atom_count = atoms;
  workloads::MolecularGenerator gen(config);
  return gen.pbio_snapshot();
}

TEST(Columnar, RoundTripsByteIdentically) {
  for (const std::size_t atoms : {1u, 2u, 37u, 1000u}) {
    const Bytes stream = md_stream(atoms);
    const Bytes shuffled = columnar_shuffle(stream);
    EXPECT_EQ(columnar_unshuffle(shuffled), stream) << atoms << " atoms";
  }
}

TEST(Columnar, HeaderOnlyStream) {
  const Encoder enc(workloads::MolecularGenerator::snapshot_format());
  Bytes header;
  enc.encode_format(header);
  const Bytes shuffled = columnar_shuffle(header);
  EXPECT_EQ(columnar_unshuffle(shuffled), header);
}

TEST(Columnar, EligibilityCheck) {
  EXPECT_TRUE(is_columnar_eligible(
      workloads::MolecularGenerator::snapshot_format()));
  const RecordFormat with_string(
      "x", {{"a", FieldType::kInt32}, {"s", FieldType::kString}});
  EXPECT_FALSE(is_columnar_eligible(with_string));
  EXPECT_FALSE(is_columnar_eligible(RecordFormat{}));
}

TEST(Columnar, RejectsVariableSizeFields) {
  const RecordFormat fmt("v", {{"s", FieldType::kString}});
  const Encoder enc(fmt);
  Record r(fmt);
  r.set("s", std::string("hello"));
  const Bytes stream = encode_stream(enc, {r});
  EXPECT_THROW(columnar_shuffle(stream), ConfigError);
}

TEST(Columnar, RejectsTruncatedRecords) {
  Bytes stream = md_stream(10);
  stream.pop_back();
  EXPECT_THROW(columnar_shuffle(stream), DecodeError);
}

TEST(Columnar, RejectsInconsistentShuffledCount) {
  Bytes shuffled = columnar_shuffle(md_stream(10));
  shuffled.push_back(0);  // stray byte breaks the count/body invariant
  EXPECT_THROW(columnar_unshuffle(shuffled), DecodeError);
}

TEST(Columnar, DecodableAfterRoundTrip) {
  const Bytes stream = md_stream(25);
  const auto records =
      decode_stream(columnar_unshuffle(columnar_shuffle(stream)));
  ASSERT_EQ(records.size(), 25u);
  EXPECT_EQ(records[24].as<std::uint32_t>("id"), 24u);
}

TEST(Columnar, ImprovesCompressionOnMolecularData) {
  // The payoff: same bytes, same lossless codecs, markedly better ratios
  // because each field's statistics stay contiguous (Fig. 6's split).
  const Bytes stream = md_stream(16384);
  const Bytes shuffled = columnar_shuffle(stream);
  ASSERT_EQ(shuffled.size(), stream.size() + 3);  // header + varint only

  // Context-sensitive codecs gain; order-0 Huffman is permutation-blind
  // (the byte histogram is unchanged), which is itself worth asserting.
  for (const MethodId m :
       {MethodId::kLempelZiv, MethodId::kBurrowsWheeler}) {
    const CodecPtr codec = make_codec(m);
    const std::size_t interleaved = codec->compress(stream).size();
    const std::size_t columnar = codec->compress(shuffled).size();
    EXPECT_LT(columnar, interleaved - interleaved / 20)
        << method_name(m) << ": expected >5 % gain";
  }
  {
    const CodecPtr huffman = make_codec(MethodId::kHuffman);
    const double interleaved =
        static_cast<double>(huffman->compress(stream).size());
    const double columnar =
        static_cast<double>(huffman->compress(shuffled).size());
    EXPECT_NEAR(columnar / interleaved, 1.0, 0.01);
  }
}

TEST(Columnar, MixedWidthFieldsRoundTrip) {
  const RecordFormat fmt("mixed", {{"a", FieldType::kInt32},
                                   {"b", FieldType::kFloat64},
                                   {"c", FieldType::kUInt64},
                                   {"d", FieldType::kFloat32}});
  const Encoder enc(fmt);
  Rng rng(5);
  std::vector<Record> records;
  for (int i = 0; i < 100; ++i) {
    Record r(fmt);
    r.set("a", static_cast<std::int32_t>(rng.below(1000)));
    r.set("b", rng.uniform());
    r.set("c", rng());
    r.set("d", static_cast<float>(rng.gaussian()));
    records.push_back(std::move(r));
  }
  const Bytes stream = encode_stream(enc, records);
  EXPECT_EQ(columnar_unshuffle(columnar_shuffle(stream)), stream);
}

}  // namespace
}  // namespace acex::pbio
