// Property suite: every codec must losslessly round-trip every data regime
// at every size — the invariant the whole system rests on. Parameterized
// over (method, pattern, size); each instantiation is a distinct ctest case.

#include <gtest/gtest.h>

#include <tuple>

#include "compress/metrics.hpp"
#include "compress/registry.hpp"
#include "testdata.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace acex {
namespace {

using Param = std::tuple<MethodId, std::size_t /*pattern idx*/,
                         std::size_t /*size*/>;

class RoundTrip : public ::testing::TestWithParam<Param> {};

TEST_P(RoundTrip, LosslessAndSelfConsistent) {
  const auto [method, pattern_idx, size] = GetParam();
  const auto& pattern = testdata::patterns()[pattern_idx];
  const Bytes data = pattern.make(size, 1000 + size);

  const CodecPtr codec = make_codec(method);
  const Bytes packed = codec->compress(data);
  const Bytes restored = codec->decompress(packed);
  ASSERT_EQ(restored.size(), data.size());
  EXPECT_EQ(restored, data);

  // Compressing the same input twice must be deterministic.
  EXPECT_EQ(codec->compress(data), packed);
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto [method, pattern_idx, size] = info.param;
  std::string name(method_name(method));
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_" + testdata::patterns()[pattern_idx].name + "_" +
         std::to_string(size);
}

std::vector<Param> make_params() {
  std::vector<Param> params;
  for (const MethodId method :
       {MethodId::kNone, MethodId::kHuffman, MethodId::kArithmetic,
        MethodId::kLempelZiv, MethodId::kBurrowsWheeler, MethodId::kLzw}) {
    for (std::size_t p = 0; p < testdata::patterns().size(); ++p) {
      for (const std::size_t size : {0u, 1u, 2u, 4096u, 70000u}) {
        params.emplace_back(method, p, size);
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, RoundTrip,
                         ::testing::ValuesIn(make_params()), param_name);

// ------------------------------------------------ cross-codec properties

class CodecProperty : public ::testing::TestWithParam<MethodId> {};

TEST_P(CodecProperty, ExpansionIsBoundedOnIncompressibleData) {
  const CodecPtr codec = make_codec(GetParam());
  const Bytes data = testdata::random_bytes(32 * 1024, 99);
  const Bytes packed = codec->compress(data);
  // Arithmetic coding lacks a stored fallback (the paper never selects it
  // for transport); everything else must stay within a small additive bound.
  const double limit = GetParam() == MethodId::kArithmetic ? 1.05 : 1.01;
  EXPECT_LT(static_cast<double>(packed.size()),
            static_cast<double>(data.size()) * limit + 64);
}

TEST_P(CodecProperty, DecompressNeverCrashesOnCorruption) {
  const CodecPtr codec = make_codec(GetParam());
  const Bytes data = testdata::repetitive_text(8192, 7);
  const Bytes packed = codec->compress(data);

  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes corrupt = packed;
    const std::size_t flips = 1 + rng.below(8);
    for (std::size_t f = 0; f < flips; ++f) {
      corrupt[rng.below(corrupt.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    // Garbage output is acceptable (the frame layer's CRC rejects it);
    // unbounded output is not. Arithmetic coding has no internal structure
    // to cross-check a corrupted size header against, so its bound is the
    // decoder's documented expansion guard; the others detect inconsistency
    // much earlier.
    const std::size_t bound = GetParam() == MethodId::kArithmetic
                                  ? (corrupt.size() + 8) * 2000
                                  : data.size() * 2 + 1024;
    try {
      const Bytes out = codec->decompress(corrupt);
      EXPECT_LE(out.size(), bound);
    } catch (const Error&) {
      // Detected corruption: the contract we promise.
    }
  }
}

TEST_P(CodecProperty, TruncationAtEveryPrefixIsHandled) {
  const CodecPtr codec = make_codec(GetParam());
  const Bytes data = testdata::low_entropy(500, 8);
  const Bytes packed = codec->compress(data);
  for (std::size_t cut = 0; cut < packed.size(); cut += 3) {
    const ByteView prefix = ByteView(packed).subspan(0, cut);
    try {
      const Bytes out = codec->decompress(prefix);
      EXPECT_LE(out.size(), data.size());
    } catch (const Error&) {
      // expected for most prefixes
    }
  }
}

TEST_P(CodecProperty, MeasurementRoundTripVerifies) {
  const CodecPtr codec = make_codec(GetParam());
  const Bytes data = testdata::repetitive_text(16384, 9);
  MonotonicClock clock;
  const auto m = measure_codec(*codec, data, clock);
  EXPECT_EQ(m.method, GetParam());
  EXPECT_EQ(m.original_size, data.size());
  EXPECT_GT(m.compressed_size, 0u);
  EXPECT_GE(m.compress_time, 0.0);
  EXPECT_LE(m.ratio_percent(), 101.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecProperty,
    ::testing::Values(MethodId::kNone, MethodId::kHuffman,
                      MethodId::kArithmetic, MethodId::kLempelZiv,
                      MethodId::kBurrowsWheeler, MethodId::kLzw),
    [](const ::testing::TestParamInfo<MethodId>& info) {
      std::string name(method_name(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// The qualitative ordering of Fig. 1, asserted as code: on repetitive data
// BWT <= LZ < Huffman in size; on low-entropy data arithmetic <= Huffman.
TEST(MethodComparison, Figure1OrderingOnRepetitiveData) {
  const Bytes data = testdata::repetitive_text(128 * 1024, 10);
  const auto size_of = [&](MethodId id) {
    return make_codec(id)->compress(data).size();
  };
  const auto bw = size_of(MethodId::kBurrowsWheeler);
  const auto lzs = size_of(MethodId::kLempelZiv);
  const auto hu = size_of(MethodId::kHuffman);
  EXPECT_LE(bw, lzs);
  EXPECT_LT(lzs, hu);
}

TEST(MethodComparison, Figure1OrderingOnLowEntropyData) {
  const Bytes data = testdata::low_entropy(128 * 1024, 11);
  const auto ar = make_codec(MethodId::kArithmetic)->compress(data).size();
  const auto hu = make_codec(MethodId::kHuffman)->compress(data).size();
  EXPECT_LE(ar, hu + hu / 50);
}

}  // namespace
}  // namespace acex
