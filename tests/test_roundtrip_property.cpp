// Property suite: every codec must losslessly round-trip every data regime
// at every size — the invariant the whole system rests on. Parameterized
// over (method, pattern, size); each instantiation is a distinct ctest case.

#include <gtest/gtest.h>

#include <tuple>

#include "compress/metrics.hpp"
#include "compress/mtf.hpp"
#include "compress/registry.hpp"
#include "compress/rle.hpp"
#include "testdata.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex {
namespace {

using Param = std::tuple<MethodId, std::size_t /*pattern idx*/,
                         std::size_t /*size*/>;

class RoundTrip : public ::testing::TestWithParam<Param> {};

TEST_P(RoundTrip, LosslessAndSelfConsistent) {
  const auto [method, pattern_idx, size] = GetParam();
  const auto& pattern = testdata::patterns()[pattern_idx];
  const Bytes data = pattern.make(size, 1000 + size);

  const CodecPtr codec = make_codec(method);
  const Bytes packed = codec->compress(data);
  const Bytes restored = codec->decompress(packed);
  ASSERT_EQ(restored.size(), data.size());
  EXPECT_EQ(restored, data);

  // Compressing the same input twice must be deterministic.
  EXPECT_EQ(codec->compress(data), packed);
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto [method, pattern_idx, size] = info.param;
  std::string name(method_name(method));
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_" + testdata::patterns()[pattern_idx].name + "_" +
         std::to_string(size);
}

std::vector<Param> make_params() {
  std::vector<Param> params;
  for (const MethodId method :
       {MethodId::kNone, MethodId::kHuffman, MethodId::kArithmetic,
        MethodId::kLempelZiv, MethodId::kBurrowsWheeler, MethodId::kLzw}) {
    for (std::size_t p = 0; p < testdata::patterns().size(); ++p) {
      for (const std::size_t size : {0u, 1u, 2u, 4096u, 70000u}) {
        params.emplace_back(method, p, size);
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, RoundTrip,
                         ::testing::ValuesIn(make_params()), param_name);

// ------------------------------------------------ cross-codec properties

class CodecProperty : public ::testing::TestWithParam<MethodId> {};

TEST_P(CodecProperty, ExpansionIsBoundedOnIncompressibleData) {
  const CodecPtr codec = make_codec(GetParam());
  const Bytes data = testdata::random_bytes(32 * 1024, 99);
  const Bytes packed = codec->compress(data);
  // Arithmetic coding lacks a stored fallback (the paper never selects it
  // for transport); everything else must stay within a small additive bound.
  const double limit = GetParam() == MethodId::kArithmetic ? 1.05 : 1.01;
  EXPECT_LT(static_cast<double>(packed.size()),
            static_cast<double>(data.size()) * limit + 64);
}

TEST_P(CodecProperty, DecompressNeverCrashesOnCorruption) {
  const CodecPtr codec = make_codec(GetParam());
  const Bytes data = testdata::repetitive_text(8192, 7);
  const Bytes packed = codec->compress(data);

  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes corrupt = packed;
    const std::size_t flips = 1 + rng.below(8);
    for (std::size_t f = 0; f < flips; ++f) {
      corrupt[rng.below(corrupt.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    // Garbage output is acceptable (the frame layer's CRC rejects it);
    // unbounded output is not. Arithmetic coding has no internal structure
    // to cross-check a corrupted size header against, so its bound is the
    // decoder's documented expansion guard; the others detect inconsistency
    // much earlier.
    const std::size_t bound = GetParam() == MethodId::kArithmetic
                                  ? (corrupt.size() + 8) * 2000
                                  : data.size() * 2 + 1024;
    try {
      const Bytes out = codec->decompress(corrupt);
      EXPECT_LE(out.size(), bound);
    } catch (const Error&) {
      // Detected corruption: the contract we promise.
    }
  }
}

TEST_P(CodecProperty, TruncationAtEveryPrefixIsHandled) {
  const CodecPtr codec = make_codec(GetParam());
  const Bytes data = testdata::low_entropy(500, 8);
  const Bytes packed = codec->compress(data);
  for (std::size_t cut = 0; cut < packed.size(); cut += 3) {
    const ByteView prefix = ByteView(packed).subspan(0, cut);
    try {
      const Bytes out = codec->decompress(prefix);
      EXPECT_LE(out.size(), data.size());
    } catch (const Error&) {
      // expected for most prefixes
    }
  }
}

TEST_P(CodecProperty, MeasurementRoundTripVerifies) {
  const CodecPtr codec = make_codec(GetParam());
  const Bytes data = testdata::repetitive_text(16384, 9);
  MonotonicClock clock;
  const auto m = measure_codec(*codec, data, clock);
  EXPECT_EQ(m.method, GetParam());
  EXPECT_EQ(m.original_size, data.size());
  EXPECT_GT(m.compressed_size, 0u);
  EXPECT_GE(m.compress_time, 0.0);
  EXPECT_LE(m.ratio_percent(), 101.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecProperty,
    ::testing::Values(MethodId::kNone, MethodId::kHuffman,
                      MethodId::kArithmetic, MethodId::kLempelZiv,
                      MethodId::kBurrowsWheeler, MethodId::kLzw),
    [](const ::testing::TestParamInfo<MethodId>& info) {
      std::string name(method_name(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// The qualitative ordering of Fig. 1, asserted as code: on repetitive data
// BWT <= LZ < Huffman in size; on low-entropy data arithmetic <= Huffman.
TEST(MethodComparison, Figure1OrderingOnRepetitiveData) {
  const Bytes data = testdata::repetitive_text(128 * 1024, 10);
  const auto size_of = [&](MethodId id) {
    return make_codec(id)->compress(data).size();
  };
  const auto bw = size_of(MethodId::kBurrowsWheeler);
  const auto lzs = size_of(MethodId::kLempelZiv);
  const auto hu = size_of(MethodId::kHuffman);
  EXPECT_LE(bw, lzs);
  EXPECT_LT(lzs, hu);
}

TEST(MethodComparison, Figure1OrderingOnLowEntropyData) {
  const Bytes data = testdata::low_entropy(128 * 1024, 11);
  const auto ar = make_codec(MethodId::kArithmetic)->compress(data).size();
  const auto hu = make_codec(MethodId::kHuffman)->compress(data).size();
  EXPECT_LE(ar, hu + hu / 50);
}

// ------------------------------------------- boundary widths (DESIGN §10)
// The exact widths where an encoding changes shape: RLE run lengths around
// the trigger and the extra-count cap, RLE escape bytes, MTF alphabet
// edges, and LEB128 varints at every 2^(7k) boundary.

TEST(BoundaryWidths, RleRunLengthsAroundTriggerAndExtraCap) {
  // kRunTrigger = 4 flips literal runs into encoded ones; kMaxExtra = 250
  // caps one run token, so 254/255/256/257 repeats must split cleanly.
  for (const std::size_t run : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                                std::size_t{5}, std::size_t{253},
                                std::size_t{254}, std::size_t{255},
                                std::size_t{256}, std::size_t{257},
                                std::size_t{1000}}) {
    for (const std::uint8_t byte : {std::uint8_t{0}, std::uint8_t{'a'},
                                    rle::kEscape, rle::kSentinel}) {
      Bytes data(run, byte);
      // A non-run tail on both sides so the run is interior, too.
      data.insert(data.begin(), std::uint8_t{'x'});
      data.push_back(std::uint8_t{'y'});
      const Bytes packed = rle::encode(data);
      EXPECT_EQ(rle::decode(packed), data)
          << "run " << run << " of byte " << int(byte);
      // The encoded alphabet is sentinel-free by construction.
      for (std::size_t i = 0; i < packed.size(); ++i) {
        ASSERT_NE(packed[i], rle::kSentinel) << "sentinel leaked at " << i;
      }
    }
  }
}

TEST(BoundaryWidths, RleWorstCaseEscapeDensityStaysBounded) {
  // All-253..255 input is the escape machinery's worst case: every escape
  // byte costs a prefix, but expansion must stay within the documented 2x.
  Bytes data;
  Rng rng(77);
  for (int i = 0; i < 4096; ++i) {
    data.push_back(static_cast<std::uint8_t>(253 + rng.below(3)));
  }
  const Bytes packed = rle::encode(data);
  EXPECT_EQ(rle::decode(packed), data);
  EXPECT_LE(packed.size(), data.size() * 2 + 16);
}

TEST(BoundaryWidths, MtfRoundTripsAtAlphabetEdges) {
  // First/last alphabet symbols, immediate repeats (rank 0) and the full
  // 256-symbol sweep that forces every rank to move.
  Bytes sweep;
  for (int rep = 0; rep < 3; ++rep) {
    for (int b = 0; b < 256; ++b) {
      sweep.push_back(static_cast<std::uint8_t>(b));
    }
  }
  EXPECT_EQ(mtf::decode(mtf::encode(sweep)), sweep);

  const Bytes edges = {0, 0, 255, 255, 0, 255, 1, 254, 1, 254, 0};
  EXPECT_EQ(mtf::decode(mtf::encode(edges)), edges);
  EXPECT_TRUE(mtf::decode(mtf::encode(Bytes{})).empty());

  // An immediate repeat must encode as rank 0.
  const Bytes repeats(16, 0xAB);
  const Bytes ranks = mtf::encode(repeats);
  ASSERT_EQ(ranks.size(), repeats.size());
  for (std::size_t i = 1; i < ranks.size(); ++i) {
    EXPECT_EQ(ranks[i], 0) << "position " << i;
  }
}

TEST(BoundaryWidths, VarintWidthsFlipAtEvery7BitBoundary) {
  for (std::size_t k = 1; k <= 9; ++k) {
    const std::uint64_t boundary = std::uint64_t{1} << (7 * k);
    const std::uint64_t below = boundary - 1;
    EXPECT_EQ(varint_size(below), k) << "below 2^" << 7 * k;
    EXPECT_EQ(varint_size(boundary), k + 1) << "at 2^" << 7 * k;
    for (const std::uint64_t value : {below, boundary}) {
      Bytes wire;
      put_varint(wire, value);
      ASSERT_EQ(wire.size(), varint_size(value));
      std::size_t pos = 0;
      EXPECT_EQ(get_varint(wire, &pos), value);
      EXPECT_EQ(pos, wire.size());
    }
  }
  // The 64-bit extremes.
  for (const std::uint64_t value :
       {std::uint64_t{0}, std::uint64_t{0xFFFFFFFFFFFFFFFF}}) {
    Bytes wire;
    put_varint(wire, value);
    std::size_t pos = 0;
    EXPECT_EQ(get_varint(wire, &pos), value);
    EXPECT_EQ(pos, wire.size());
  }
}

}  // namespace
}  // namespace acex
