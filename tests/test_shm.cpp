#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <set>
#include <vector>

#include "broker/broker.hpp"
#include "broker/egress_queue.hpp"
#include "compress/frame.hpp"
#include "obs/metrics.hpp"
#include "shm/bus.hpp"
#include "shm/ring.hpp"
#include "shm/segment.hpp"
#include "testdata.hpp"
#include "util/buffer_view.hpp"
#include "util/crc32.hpp"

namespace acex {
namespace {

Bytes pattern(std::size_t size, std::uint8_t seed = 7) {
  Bytes out(size);
  for (std::size_t i = 0; i < size; ++i) {
    out[i] = static_cast<std::uint8_t>(seed + i * 31);
  }
  return out;
}

bool within(const void* p, const void* base, std::size_t size) {
  const auto* b = static_cast<const std::uint8_t*>(base);
  const auto* q = static_cast<const std::uint8_t*>(p);
  return q >= b && q < b + size;
}

// ---------------------------------------------------------- BufferView

TEST(BufferView, OwnCopyBorrowSemantics) {
  Bytes data = pattern(64);
  const std::uint8_t* raw = data.data();

  BufferView owned = BufferView::own(std::move(data));
  EXPECT_EQ(owned.data(), raw);  // own() adopts, never copies
  EXPECT_TRUE(owned.has_owner());
  EXPECT_NE(owned.owner_key(), nullptr);

  BufferView copied = BufferView::copy(owned);
  EXPECT_NE(copied.data(), owned.data());
  EXPECT_TRUE(copied == owned);

  Bytes backing = pattern(32, 3);
  BufferView borrowed = BufferView::borrow(backing);
  EXPECT_EQ(borrowed.data(), backing.data());
  EXPECT_FALSE(borrowed.has_owner());
  EXPECT_EQ(borrowed.owner_key(), nullptr);
}

TEST(BufferView, SubviewSharesOwnerAndAliases) {
  BufferView whole = BufferView::own(pattern(100));
  BufferView part = whole.subview(10, 20);
  EXPECT_EQ(part.data(), whole.data() + 10);
  EXPECT_EQ(part.size(), 20u);
  // Shared owner: the sliced view keeps the whole buffer alive, and
  // share-aware accounting sees them as one allocation.
  EXPECT_EQ(part.owner_key(), whole.owner_key());
}

TEST(BufferView, ViewKeepsBackingAliveAfterSourceDies) {
  BufferView survivor;
  {
    BufferView original = BufferView::own(pattern(256, 11));
    survivor = original.subview(8, 64);
  }
  const Bytes expect = pattern(256, 11);
  EXPECT_TRUE(survivor == ByteView(expect.data() + 8, 64));
}

// -------------------------------------------------- frame_parse aliasing

TEST(FrameZeroCopy, BufferViewParseAliasesWireBytes) {
  const Bytes payload = pattern(300);
  BufferView wire = BufferView::own(
      frame_build_seq(MethodId::kNone, payload, crc32(payload), 42));

  const Frame frame = frame_parse(wire);
  // Zero-copy contract: the payload points INTO the wire buffer and
  // shares its owner, so it stays valid for the Frame's whole life.
  EXPECT_TRUE(within(frame.payload.data(), wire.data(), wire.size()));
  EXPECT_EQ(frame.payload.owner_key(), wire.owner_key());
  EXPECT_TRUE(frame.payload == ByteView(payload));
  EXPECT_EQ(frame.sequence, 42u);
}

TEST(FrameZeroCopy, ByteViewParseStillCopies) {
  const Bytes payload = pattern(128);
  const Bytes wire =
      frame_build_seq(MethodId::kNone, payload, crc32(payload), 1);
  const Frame frame = frame_parse(ByteView(wire));
  // Historical contract: a Frame parsed from a plain span outlives it.
  EXPECT_FALSE(within(frame.payload.data(), wire.data(), wire.size()));
  EXPECT_TRUE(frame.payload == ByteView(payload));
}

TEST(FrameZeroCopy, BuildIntoIsByteIdentical) {
  const Bytes payload = pattern(1000, 5);
  const std::uint32_t crc = crc32(payload);
  const std::vector<std::uint64_t> sequences = {0, 1, 127, 128, 1 << 20};
  for (const std::uint64_t seq : sequences) {
    const Bytes reference =
        frame_build_seq(MethodId::kHuffman, payload, crc, seq);
    Bytes staged(reference.size() + 8, 0xEE);
    const std::size_t written = frame_build_seq_into(
        staged.data(), MethodId::kHuffman, payload, crc, seq);
    ASSERT_EQ(written, reference.size());
    EXPECT_EQ(0, std::memcmp(staged.data(), reference.data(), written));
  }
}

// ------------------------------------------------------------- segment

TEST(ShmSegment, CreateAttachShareBytesAndUnlink) {
  const std::string name = "/acex-test-seg-" + std::to_string(::getpid());
  shm::ShmSegment created = shm::ShmSegment::create(name, 4096);
  std::memcpy(created.data(), "hello", 5);

  shm::ShmSegment attached = shm::ShmSegment::attach(name);
  ASSERT_EQ(attached.size(), 4096u);
  EXPECT_EQ(0, std::memcmp(attached.data(), "hello", 5));
  // Writes travel the other way too: it is one memory, two mappings.
  std::memcpy(attached.data(), "world", 5);
  EXPECT_EQ(0, std::memcmp(created.data(), "world", 5));

  created.unlink();
  created.unlink();  // idempotent
  EXPECT_THROW(shm::ShmSegment::attach(name), shm::ShmError);
  // Existing mappings survive the unlink (POSIX lifecycle).
  EXPECT_EQ(0, std::memcmp(attached.data(), "world", 5));
}

TEST(ShmSegment, CreateReplacesStaleSegment) {
  const std::string name = "/acex-test-stale-" + std::to_string(::getpid());
  shm::ShmSegment first = shm::ShmSegment::create(name, 1024);
  first.release_name();  // simulate a crash: name left behind
  shm::ShmSegment second = shm::ShmSegment::create(name, 2048);
  EXPECT_EQ(second.size(), 2048u);
  second.unlink();
}

TEST(ShmSegment, TruncatedSegmentAttachRejected) {
  const std::string name = "/acex-test-trunc-" + std::to_string(::getpid());
  shm::RingConfig cfg;
  cfg.slab_count = 8;
  cfg.slab_size = 4096;
  // A segment far smaller than the ring it would need to hold.
  shm::ShmSegment lying = shm::ShmSegment::create(name, 512);
  EXPECT_THROW(shm::SlabRing(lying, cfg), shm::ShmError);

  // Attach side: a header claiming more slabs than the mapping covers
  // must be rejected before any slab is touched.
  shm::RingConfig small;
  small.slab_count = 1;
  small.slab_size = 64;
  shm::ShmSegment seg =
      shm::ShmSegment::anonymous(shm::SlabRing::segment_size(small));
  shm::SlabRing ring(seg, small);
  auto* header = static_cast<std::uint32_t*>(seg.data());
  header[2] = 1000;  // slab_count field: claim 1000 slabs
  EXPECT_THROW(shm::SlabRing(seg, small, /*attach=*/true), shm::ShmError);
  lying.unlink();
}

// ------------------------------------------------------------ slab ring

shm::RingConfig tiny_ring(std::size_t slabs, std::size_t slab_size) {
  shm::RingConfig cfg;
  cfg.slab_count = slabs;
  cfg.slab_size = slab_size;
  cfg.reclaim_wait = 0;  // force-reclaim immediately when full
  return cfg;
}

TEST(SlabRing, PublishResolveRoundTripInPlace) {
  const auto cfg = tiny_ring(4, 512);
  shm::ShmSegment seg =
      shm::ShmSegment::anonymous(shm::SlabRing::segment_size(cfg));
  shm::SlabRing ring(seg, cfg);

  const Bytes data = pattern(200);
  auto slab = ring.acquire(data.size());
  std::memcpy(slab.data, data.data(), data.size());
  BufferView view = ring.publish(slab, data.size());
  EXPECT_TRUE(view == ByteView(data));
  EXPECT_TRUE(within(view.data(), seg.data(), seg.size()));

  const auto desc = ring.descriptor_of(view);
  ASSERT_TRUE(desc.has_value());
  ASSERT_TRUE(ring.add_ref(*desc));
  BufferView reader = ring.resolve(*desc);
  // Same bytes, same memory: the consumer mapped the payload in place.
  EXPECT_EQ(reader.data(), view.data());
  EXPECT_EQ(ring.stats().slabs_in_use, 1u);
}

TEST(SlabRing, PinsBlockReuseUntilReleased) {
  const auto cfg = tiny_ring(2, 256);
  shm::ShmSegment seg =
      shm::ShmSegment::anonymous(shm::SlabRing::segment_size(cfg));
  shm::SlabRing ring(seg, cfg);

  std::vector<BufferView> views;
  for (int i = 0; i < 2; ++i) {
    auto slab = ring.acquire(16);
    views.push_back(ring.publish(slab, 16));
  }
  EXPECT_EQ(ring.stats().slabs_in_use, 2u);
  views.clear();  // releases both pins
  EXPECT_EQ(ring.stats().slabs_in_use, 0u);
  // And both slabs are claimable again without any reclaim force.
  auto a = ring.acquire(16);
  auto b = ring.acquire(16);
  (void)a;
  (void)b;
  EXPECT_EQ(ring.stats().force_reclaims, 0u);
}

TEST(SlabRing, ViewOutlivingItsSlabIsRejectedTyped) {
  const auto cfg = tiny_ring(2, 256);
  shm::ShmSegment seg =
      shm::ShmSegment::anonymous(shm::SlabRing::segment_size(cfg));
  shm::SlabRing ring(seg, cfg);

  auto s1 = ring.acquire(8);
  BufferView oldest = ring.publish(s1, 8);
  const auto stale_desc = ring.descriptor_of(oldest);
  ASSERT_TRUE(stale_desc.has_value());
  auto s2 = ring.acquire(8);
  BufferView second = ring.publish(s2, 8);

  // Ring full, both pinned: the next acquire must NOT stall — it force-
  // reclaims the oldest published slab after the (zero) bounded wait.
  auto s3 = ring.acquire(8);
  BufferView third = ring.publish(s3, 8);
  EXPECT_EQ(ring.stats().force_reclaims, 1u);

  // The reclaimed slab's descriptor is now a different generation:
  // resolving it fails TYPED instead of yielding the new tenant's bytes.
  EXPECT_THROW(ring.resolve(*stale_desc), shm::ShmStaleError);
  // A transfer-pin attempt fails the same way (sender falls back to copy).
  EXPECT_FALSE(ring.add_ref(*stale_desc));

  // The outlived view's eventual release is a no-op on the slab's new
  // life: counted as stale, refcount untouched.
  const auto before = ring.stats();
  oldest = BufferView();
  const auto after = ring.stats();
  EXPECT_EQ(after.stale_releases, before.stale_releases + 1);
  EXPECT_EQ(after.slabs_in_use, before.slabs_in_use);
}

TEST(SlabRing, ForceReclaimNeverVictimizesInFlightWrite) {
  const auto cfg = tiny_ring(2, 256);
  shm::ShmSegment seg =
      shm::ShmSegment::anonymous(shm::SlabRing::segment_size(cfg));
  shm::SlabRing ring(seg, cfg);

  // One writer claims a slab and is still filling it (not yet published) —
  // the broker-pump-vs-frame-builder concurrency shape. Its slab carries
  // no publish stamp, which used to make it the preferred reclaim victim.
  auto writing = ring.acquire(64);
  // A second writer publishes the other slab; its view pins it.
  const Bytes payload = pattern(64, 5);
  auto other = ring.acquire(64);
  std::memcpy(other.data, payload.data(), payload.size());
  BufferView published = ring.publish(other, payload.size());

  // Ring full, bounded wait zero: the force-reclaim victim must be the
  // PUBLISHED slab, never the write in flight.
  auto third = ring.acquire(64);
  EXPECT_EQ(ring.stats().force_reclaims, 1u);
  EXPECT_EQ(third.index, other.index);
  EXPECT_NE(third.index, writing.index);

  // The in-flight write completes untouched and round-trips.
  std::memcpy(writing.data, payload.data(), payload.size());
  BufferView done = ring.publish(writing, payload.size());
  EXPECT_TRUE(done == ByteView(payload));
  const auto desc = ring.descriptor_of(done);
  ASSERT_TRUE(desc.has_value());
  EXPECT_TRUE(ring.add_ref(*desc));
  ring.drop_ref(*desc);
  ring.abandon(third);
}

// ----------------------------------------------------- descriptor codec

TEST(ShmDescriptor, WireRoundTripAndCorruptionRejected) {
  shm::SlabDescriptor desc;
  desc.offset = 5 * 4096;
  desc.generation = 99;
  desc.length = 1234;
  const Bytes wire = shm::encode_descriptor(desc);
  const shm::SlabDescriptor back = shm::decode_descriptor(wire);
  EXPECT_EQ(back.offset, desc.offset);
  EXPECT_EQ(back.generation, desc.generation);
  EXPECT_EQ(back.length, desc.length);

  // Every single-byte corruption must be caught by magic, structure, or
  // descriptor CRC — never resolved into an arena dereference.
  for (std::size_t i = 0; i < wire.size(); ++i) {
    Bytes bad = wire;
    bad[i] ^= 0x40;
    EXPECT_THROW(shm::decode_descriptor(bad), DecodeError) << "byte " << i;
  }
  EXPECT_THROW(shm::decode_descriptor(ByteView(wire.data(), 3)), DecodeError);
}

// -------------------------------------------------------- shm transport

TEST(ShmEndpoint, SendReceiveArbitraryBytesViaStaging) {
  shm::ShmBusConfig cfg;
  cfg.ring = tiny_ring(8, 1024);
  shm::ShmBus bus(cfg);
  auto ep = bus.endpoint();

  const Bytes a = pattern(100, 1);
  const Bytes b = pattern(900, 2);
  ep->send(a);
  ep->send(b);
  EXPECT_EQ(ep->depth(), 2u);
  EXPECT_EQ(*ep->receive(), a);
  EXPECT_EQ(*ep->receive(), b);
  EXPECT_FALSE(ep->receive().has_value());
  // Plain send() is the copy path by definition.
  EXPECT_EQ(bus.stats().copy_fallbacks, 2u);
  EXPECT_EQ(ep->stats().zero_copy_sends, 0u);
}

TEST(ShmEndpoint, SlabBackedViewsShipDescriptorOnly) {
  shm::ShmBusConfig cfg;
  cfg.ring = tiny_ring(8, 4096);
  shm::ShmBus bus(cfg);
  auto ep = bus.endpoint();

  const Bytes payload = pattern(700, 9);
  BufferView frame = bus.frame_builder()(MethodId::kNone, payload,
                                         crc32(payload), 3);
  ep->send_buffer(frame);
  EXPECT_EQ(ep->stats().zero_copy_sends, 1u);
  EXPECT_EQ(bus.stats().copy_fallbacks, 0u);

  std::optional<BufferView> wire = ep->receive_buffer();
  ASSERT_TRUE(wire.has_value());
  // The received view IS the staged slab — the same mapped bytes the
  // producer framed into, not a copy.
  EXPECT_EQ(wire->data(), frame.data());
  const Frame parsed = frame_parse(*wire);
  EXPECT_TRUE(within(parsed.payload.data(), bus.segment().data(),
                     bus.segment().size()));
  const CodecRegistry registry = CodecRegistry::with_builtins();
  EXPECT_EQ(frame_decode(parsed, registry), payload);
  EXPECT_EQ(parsed.sequence, 3u);
}

TEST(ShmEndpoint, StaleDescriptorsAreCountedAndSkipped) {
  shm::ShmBusConfig cfg;
  cfg.ring = tiny_ring(2, 512);
  shm::ShmBus bus(cfg);
  auto ep = bus.endpoint();

  // Three sends through a two-slab ring: staging the third forcibly
  // reclaims the oldest queued payload, whose descriptor goes stale.
  ep->send(pattern(64, 1));
  ep->send(pattern(64, 2));
  ep->send(pattern(64, 3));
  EXPECT_EQ(bus.ring().stats().force_reclaims, 1u);

  std::vector<Bytes> got;
  while (auto m = ep->receive()) got.push_back(std::move(*m));
  EXPECT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], pattern(64, 2));
  EXPECT_EQ(got[1], pattern(64, 3));
  EXPECT_EQ(ep->stats().stale_descriptors, 1u);
}

TEST(ShmEndpoint, InjectedGarbageOnlySkipsAndCounts) {
  shm::ShmBusConfig cfg;
  cfg.ring = tiny_ring(4, 512);
  shm::ShmBus bus(cfg);
  auto ep = bus.endpoint();

  ep->inject_raw(Bytes{});                     // empty
  ep->inject_raw(Bytes{1, 2, 3});              // short garbage
  ep->inject_raw(pattern(40, 17));             // long garbage
  // A well-formed descriptor whose geometry lies beyond the arena.
  shm::SlabDescriptor forged;
  forged.offset = 512u * 1000;
  forged.generation = 1;
  forged.length = 10;
  ep->inject_raw(shm::encode_descriptor(forged));
  ep->send(pattern(16, 4));  // one real message behind the garbage

  EXPECT_EQ(*ep->receive(), pattern(16, 4));
  EXPECT_FALSE(ep->receive().has_value());
  EXPECT_EQ(ep->stats().corrupt_descriptors, 4u);
}

TEST(ShmEndpoint, OverflowDropsOldestAndReturnsReferences) {
  shm::ShmBusConfig cfg;
  cfg.ring = tiny_ring(8, 512);
  cfg.queue_capacity = 2;
  shm::ShmBus bus(cfg);
  auto ep = bus.endpoint();

  for (int i = 0; i < 5; ++i) ep->send(pattern(32, static_cast<std::uint8_t>(i)));
  EXPECT_EQ(ep->depth(), 2u);
  EXPECT_EQ(ep->stats().queue_drops, 3u);
  // Dropped descriptors gave their slab references back immediately:
  // only the two still-queued payloads pin slabs.
  EXPECT_EQ(bus.ring().stats().slabs_in_use, 2u);
  EXPECT_EQ(*ep->receive(), pattern(32, 3));
  EXPECT_EQ(*ep->receive(), pattern(32, 4));
}

TEST(ShmEndpoint, OversizedSendDeliversOutOfBand) {
  shm::ShmBusConfig cfg;
  cfg.ring = tiny_ring(4, 256);
  shm::ShmBus bus(cfg);
  auto ep = bus.endpoint();

  // Larger than any slab: must still arrive (as a counted copy), never
  // throw out of the transport contract.
  const Bytes big = pattern(1000, 7);
  ep->send(big);
  EXPECT_EQ(ep->depth(), 1u);
  EXPECT_EQ(*ep->receive(), big);
  EXPECT_EQ(ep->stats().oob_sends, 1u);
  EXPECT_EQ(bus.stats().copy_fallbacks, 1u);
  // The ring was never touched — nothing staged, nothing pinned.
  EXPECT_EQ(bus.ring().stats().acquires, 0u);
  EXPECT_EQ(bus.ring().stats().slabs_in_use, 0u);
}

TEST(ShmEndpoint, OversizedFrameBuilderViewShipsSharedHeapBuffer) {
  shm::ShmBusConfig cfg;
  cfg.ring = tiny_ring(4, 256);
  shm::ShmBus bus(cfg);
  auto ep = bus.endpoint();

  // The frame builder's heap fallback for a frame no slab can hold.
  const Bytes payload = pattern(900, 9);
  BufferView frame = bus.frame_builder()(MethodId::kNone, payload,
                                         crc32(payload), 7);
  EXPECT_EQ(bus.stats().copy_fallbacks, 1u);

  // send_buffer delivers the SAME heap buffer out of band: shared
  // ownership, zero additional copies, no exception into the pump.
  ep->send_buffer(frame);
  EXPECT_EQ(ep->stats().oob_sends, 1u);
  EXPECT_EQ(ep->stats().zero_copy_sends, 0u);

  std::optional<BufferView> wire = ep->receive_buffer();
  ASSERT_TRUE(wire.has_value());
  EXPECT_EQ(wire->data(), frame.data());
  const Frame parsed = frame_parse(*wire);
  const CodecRegistry registry = CodecRegistry::with_builtins();
  EXPECT_EQ(frame_decode(parsed, registry), payload);
  EXPECT_EQ(parsed.sequence, 7u);
}

// --------------------------------------- shared-frame broker integration

/// Captures every frame the broker pumps downstream — the reference for
/// "what the TCP path would have carried".
class CaptureTransport final : public transport::Transport {
 public:
  void send(ByteView message) override {
    frames.emplace_back(message.begin(), message.end());
  }
  std::optional<Bytes> receive() override { return std::nullopt; }
  const Clock& clock() const override { return clock_; }

  std::vector<Bytes> frames;

 private:
  MonotonicClock clock_;
};

std::vector<Bytes> blocks_for_test(int n) {
  std::vector<Bytes> blocks;
  for (int i = 0; i < n; ++i) {
    blocks.push_back(testdata::low_entropy(8 * 1024, 100 + i));
  }
  return blocks;
}

/// Run N subscribers through a broker with `workers` encode threads and
/// the given frame builder; publish all blocks, then pump and collect the
/// frames each subscriber's transport saw.
std::vector<std::vector<Bytes>> run_broker(
    const std::vector<Bytes>& blocks, int subs, std::size_t workers,
    broker::BrokerConfig base, shm::ShmBus* bus) {
  base.worker_threads = workers;
  broker::FanoutBroker fan(base);
  std::vector<std::unique_ptr<shm::ShmEndpoint>> shm_eps;
  std::vector<std::unique_ptr<CaptureTransport>> captures;
  std::vector<broker::SubscriberId> ids;
  for (int i = 0; i < subs; ++i) {
    if (bus != nullptr) {
      shm_eps.push_back(bus->endpoint());
      ids.push_back(fan.subscribe(*shm_eps.back()));
    } else {
      captures.push_back(std::make_unique<CaptureTransport>());
      ids.push_back(fan.subscribe(*captures.back()));
    }
  }
  for (const Bytes& block : blocks) fan.publish(block);
  fan.pump_all();

  std::vector<std::vector<Bytes>> out(subs);
  for (int i = 0; i < subs; ++i) {
    if (bus != nullptr) {
      while (auto frame = shm_eps[i]->receive()) out[i].push_back(*frame);
    } else {
      out[i] = captures[i]->frames;
    }
  }
  return out;
}

TEST(ShmBroker, SerialParallelAndShmPathsAreByteIdentical) {
  const auto blocks = blocks_for_test(5);
  constexpr int kSubs = 4;

  // Reference: heap frames, serial encodes — the TCP-path bytes.
  const auto reference =
      run_broker(blocks, kSubs, 1, broker::BrokerConfig{}, nullptr);
  // Parallel encodes must not change a single byte.
  const auto parallel =
      run_broker(blocks, kSubs, 4, broker::BrokerConfig{}, nullptr);

  // Shm path: frames staged into slabs, shipped as descriptors, read back
  // out of the mapped segment.
  shm::ShmBusConfig bus_cfg;
  bus_cfg.ring.slab_count = 64;
  bus_cfg.ring.slab_size = 16 * 1024;
  shm::ShmBus bus(bus_cfg);
  broker::BrokerConfig shm_broker_cfg;
  shm_broker_cfg.frame_builder = bus.frame_builder();
  const auto via_shm = run_broker(blocks, kSubs, 1, shm_broker_cfg, &bus);

  ASSERT_EQ(reference.size(), via_shm.size());
  for (int s = 0; s < kSubs; ++s) {
    ASSERT_EQ(reference[s].size(), blocks.size()) << "subscriber " << s;
    EXPECT_EQ(reference[s], parallel[s]) << "subscriber " << s;
    EXPECT_EQ(reference[s], via_shm[s]) << "subscriber " << s;
  }
  // Every frame decodes back to its block (end-to-end, through the slab).
  const CodecRegistry registry = CodecRegistry::with_builtins();
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    EXPECT_EQ(frame_decompress(via_shm[0][b], registry), blocks[b]);
  }
  // Steady state never copied a payload: all zero-copy descriptor sends.
  EXPECT_EQ(bus.stats().copy_fallbacks, 0u);
}

TEST(ShmBroker, OversizedFramesDeliverInsteadOfKillingThePump) {
  // Incompressible blocks against deliberately tiny slabs: every frame
  // takes the frame builder's heap fallback, and the broker pump hands
  // those heap views to ShmEndpoint::send_buffer. This used to throw
  // ShmError out of the pump loop; it must now deliver out of band,
  // byte-identical to the heap-broker reference.
  std::vector<Bytes> blocks;
  for (int i = 0; i < 3; ++i) {
    blocks.push_back(testdata::random_bytes(4 * 1024, 50 + i));
  }
  const auto reference =
      run_broker(blocks, 2, 1, broker::BrokerConfig{}, nullptr);

  shm::ShmBusConfig bus_cfg;
  bus_cfg.ring = tiny_ring(8, 64);
  shm::ShmBus bus(bus_cfg);
  broker::BrokerConfig cfg;
  cfg.frame_builder = bus.frame_builder();
  const auto via_shm = run_broker(blocks, 2, 1, cfg, &bus);

  EXPECT_EQ(reference, via_shm);
  EXPECT_GT(bus.stats().copy_fallbacks, 0u);
}

TEST(ShmBroker, SharedFrameCountsOnceInUniqueMemoryAccounting) {
  constexpr int kSubs = 6;
  broker::FanoutBroker fan;
  std::vector<std::unique_ptr<CaptureTransport>> sinks;
  for (int i = 0; i < kSubs; ++i) {
    sinks.push_back(std::make_unique<CaptureTransport>());
    fan.subscribe(*sinks.back());
  }
  fan.publish(testdata::low_entropy(8 * 1024, 77));
  // No pump: every subscriber's egress still queues its frame, and every
  // retransmit ring holds it too — 12 references, ONE buffer.
  const std::size_t total = fan.memory_usage_total();
  const std::size_t unique = fan.memory_usage_unique();
  ASSERT_GT(unique, 0u);
  // The per-reference ledger sees 2 * kSubs copies; the share-aware one
  // must see exactly one buffer's worth.
  EXPECT_EQ(total, unique * 2 * kSubs);
}

TEST(ShmBroker, EgressQueuesShareOneBufferAcrossSubscribers) {
  MonotonicClock clock;
  broker::EgressQueue q1(8, broker::SlowConsumerPolicy::kBlock, clock, 0);
  broker::EgressQueue q2(8, broker::SlowConsumerPolicy::kBlock, clock, 0);
  BufferView shared = BufferView::own(pattern(500));
  q1.send_buffer(shared);
  q2.send_buffer(shared);
  q1.send_buffer(BufferView::own(pattern(300)));

  std::set<const void*> seen;
  const std::size_t unique = q1.bytes_unique(seen) + q2.bytes_unique(seen);
  EXPECT_EQ(unique, 500u + 300u);
  EXPECT_EQ(q1.bytes() + q2.bytes(), 2 * 500u + 300u);
}

// --------------------------------------------------------- obs mirrors

TEST(ShmObs, GaugesTrackGroundTruth) {
  auto& reg = obs::MetricsRegistry::global();
  shm::ShmBusConfig cfg;
  cfg.ring = tiny_ring(4, 512);
  shm::ShmBus bus(cfg);

  auto slab = bus.ring().acquire(64);
  BufferView view = bus.ring().publish(slab, 64);
  EXPECT_EQ(reg.gauge("acex.shm.slabs_in_use").value(),
            static_cast<std::int64_t>(bus.ring().stats().slabs_in_use));
  EXPECT_EQ(reg.gauge("acex.shm.ring.occupancy_pct").value(), 25);
  view = BufferView();
  EXPECT_EQ(reg.gauge("acex.shm.slabs_in_use").value(), 0);
  EXPECT_EQ(reg.gauge("acex.shm.ring.occupancy_pct").value(), 0);
}

}  // namespace
}  // namespace acex
