// End-to-end tests of the adaptive sender/receiver over emulated links,
// including the integration shapes the paper's §4.2 experiments rely on.

#include <gtest/gtest.h>

#include <set>

#include "adaptive/experiment.hpp"
#include "adaptive/pipeline.hpp"
#include "netsim/load_trace.hpp"
#include "testdata.hpp"
#include "transport/sim_transport.hpp"
#include "util/error.hpp"
#include "workloads/molecular.hpp"
#include "workloads/transactions.hpp"

namespace acex::adaptive {
namespace {

netsim::LinkParams flat_link(double bps) {
  netsim::LinkParams p;
  p.bandwidth_Bps = bps;
  p.jitter_frac = 0;
  p.latency_s = 0;
  return p;
}

AdaptiveConfig sync_config() {
  AdaptiveConfig config;
  config.async_sampling = false;  // deterministic
  return config;
}

class PipelineTest : public ::testing::Test {
 protected:
  void wire(double bps) {
    forward_.emplace(flat_link(bps), 1);
    reverse_.emplace(flat_link(1e9), 2);
    duplex_.emplace(*forward_, *reverse_, clock_);
  }

  VirtualClock clock_;
  std::optional<netsim::SimLink> forward_, reverse_;
  std::optional<transport::SimDuplex> duplex_;
};

TEST_F(PipelineTest, RoundTripsDataExactly) {
  wire(1e6);
  AdaptiveSender sender(duplex_->a(), sync_config());
  AdaptiveReceiver receiver(duplex_->b());

  workloads::TransactionGenerator gen(1);
  const Bytes data = gen.text_block(700 * 1024);  // ~6 blocks
  const StreamReport report = sender.send_all(data);
  EXPECT_EQ(report.original_bytes, data.size());
  EXPECT_EQ(report.blocks.size(), 6u);

  EXPECT_EQ(receiver.receive_available(), data);
  EXPECT_EQ(receiver.frames_received(), 6u);
}

TEST_F(PipelineTest, SlowLinkCompressesCommercialData) {
  wire(100e3);  // 100 KB/s: sending dominates
  AdaptiveSender sender(duplex_->a(), sync_config());
  workloads::TransactionGenerator gen(2);
  const Bytes data = gen.text_block(512 * 1024);
  const StreamReport report = sender.send_all(data);

  // Wire traffic must shrink substantially and every block after warm-up
  // must use a compressing method.
  EXPECT_LT(report.wire_ratio_percent(), 50.0);
  for (std::size_t i = 1; i < report.blocks.size(); ++i) {
    EXPECT_NE(report.blocks[i].method, MethodId::kNone) << "block " << i;
  }
}

TEST_F(PipelineTest, FastLinkStopsCompressing) {
  wire(1e9);  // ~gigabit: compression cannot pay
  AdaptiveConfig config = sync_config();
  config.initial_bandwidth_Bps = 1e9;  // trust the fast link immediately
  AdaptiveSender sender(duplex_->a(), config);
  workloads::TransactionGenerator gen(3);
  const Bytes data = gen.text_block(1024 * 1024);
  const StreamReport report = sender.send_all(data);

  std::size_t uncompressed = 0;
  for (const auto& b : report.blocks) {
    uncompressed += b.method == MethodId::kNone;
  }
  // All but (possibly) the very first warm-up block should pass through.
  EXPECT_GE(uncompressed, report.blocks.size() - 1);
}

TEST_F(PipelineTest, IncompressibleDataPrefersHuffmanOrNone) {
  wire(50e3);
  AdaptiveSender sender(duplex_->a(), sync_config());
  const Bytes data = testdata::random_bytes(512 * 1024, 4);
  const StreamReport report = sender.send_all(data);
  for (std::size_t i = 1; i < report.blocks.size(); ++i) {
    const MethodId m = report.blocks[i].method;
    EXPECT_TRUE(m == MethodId::kHuffman || m == MethodId::kNone)
        << "block " << i << " chose " << method_name(m);
  }
  // Random data + stored fallbacks: wire size stays near the original.
  EXPECT_NEAR(report.wire_ratio_percent(), 100.0, 2.0);
}

TEST_F(PipelineTest, ReportsAreInternallyConsistent) {
  wire(1e6);
  AdaptiveSender sender(duplex_->a(), sync_config());
  workloads::TransactionGenerator gen(5);
  const Bytes data = gen.text_block(300 * 1024);
  const StreamReport report = sender.send_all(data);

  Seconds prev_delivered = 0;
  for (const auto& b : report.blocks) {
    EXPECT_GE(b.submitted, prev_delivered);  // FIFO on one link
    EXPECT_GE(b.delivered, b.submitted);
    EXPECT_GT(b.wire_size, 0u);
    EXPECT_GT(b.bandwidth_estimate_Bps, 0.0);
    EXPECT_NEAR(b.send_seconds, b.delivered - b.submitted, 1e-9);
    prev_delivered = b.delivered;
  }
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_GE(report.compress_seconds, 0.0);
}

TEST_F(PipelineTest, CpuTimeHookChargesVirtualClock) {
  wire(1e6);
  AdaptiveConfig config = sync_config();
  Seconds charged = 0;
  config.on_cpu_time = [&](Seconds t) {
    charged += t;
    clock_.advance(t);
  };
  AdaptiveSender sender(duplex_->a(), config);
  workloads::TransactionGenerator gen(6);
  sender.send_all(gen.text_block(256 * 1024));
  EXPECT_GT(charged, 0.0);
  EXPECT_GE(clock_.now(), charged);
}

TEST_F(PipelineTest, CpuScaleSlowsReportedCompression) {
  wire(1e6);
  workloads::TransactionGenerator gen(7);
  const Bytes data = gen.text_block(256 * 1024);

  AdaptiveConfig fast = sync_config();
  AdaptiveConfig slow = sync_config();
  slow.cpu_scale = 0.25;  // a 4x slower host

  wire(1e6);
  AdaptiveSender fast_sender(duplex_->a(), fast);
  const auto fast_report = fast_sender.send_all_fixed(data, MethodId::kLempelZiv);
  wire(1e6);
  AdaptiveSender slow_sender(duplex_->a(), slow);
  const auto slow_report = slow_sender.send_all_fixed(data, MethodId::kLempelZiv);

  EXPECT_GT(slow_report.compress_seconds,
            fast_report.compress_seconds * 2.0);
}

TEST_F(PipelineTest, FixedPolicyUsesRequestedMethodEverywhere) {
  wire(1e6);
  AdaptiveSender sender(duplex_->a(), sync_config());
  workloads::TransactionGenerator gen(8);
  const Bytes data = gen.text_block(300 * 1024);
  const StreamReport report =
      sender.send_all_fixed(data, MethodId::kBurrowsWheeler);
  for (const auto& b : report.blocks) {
    EXPECT_EQ(b.method, MethodId::kBurrowsWheeler);
  }
  AdaptiveReceiver receiver(duplex_->b());
  EXPECT_EQ(receiver.receive_available(), data);
}

TEST_F(PipelineTest, OversizedBlockRejected) {
  wire(1e6);
  AdaptiveSender sender(duplex_->a(), sync_config());
  const Bytes big(sender.config().decision.block_size + 1, 0);
  EXPECT_THROW(sender.send_block(big), ConfigError);
}

TEST_F(PipelineTest, AsyncSamplingMatchesSyncDecisionsOnSteadyData) {
  // Same data, same links: async sampling must reach the same methods on a
  // steady workload (timing jitter only affects measured speeds slightly).
  workloads::TransactionGenerator gen(9);
  const Bytes data = gen.text_block(512 * 1024);

  wire(100e3);
  AdaptiveSender sync_sender(duplex_->a(), sync_config());
  const auto sync_report = sync_sender.send_all(data);

  AdaptiveConfig async_cfg;
  async_cfg.async_sampling = true;
  wire(100e3);
  AdaptiveSender async_sender(duplex_->a(), async_cfg);
  const auto async_report = async_sender.send_all(data);

  ASSERT_EQ(sync_report.blocks.size(), async_report.blocks.size());
  std::size_t agreements = 0;
  for (std::size_t i = 0; i < sync_report.blocks.size(); ++i) {
    agreements +=
        sync_report.blocks[i].method == async_report.blocks[i].method;
  }
  EXPECT_GE(agreements, sync_report.blocks.size() - 1);
}

// ------------------------------------------------------------- experiments

TEST(Experiment, AdaptiveBeatsNoCompressionOnSlowLink) {
  // The §5 headline shape: repetitive commercial data over a slow/loaded
  // link — adaptive finishes in a fraction of the raw transfer time.
  workloads::TransactionGenerator gen(10);
  const Bytes data = gen.text_block(1024 * 1024);

  ExperimentConfig config;
  config.link = netsim::megabit_link();  // 0.147 MB/s end-to-end
  config.link.jitter_frac = 0.0;
  config.adaptive.async_sampling = false;

  const auto adaptive = run_adaptive(data, config);
  const auto raw = run_fixed(data, config, MethodId::kNone);
  ASSERT_TRUE(adaptive.verified);
  ASSERT_TRUE(raw.verified);
  EXPECT_LT(adaptive.stream.total_seconds, raw.stream.total_seconds * 0.6);
  EXPECT_LT(adaptive.stream.wire_ratio_percent(), 50.0);
}

TEST(Experiment, MethodsEscalateWithRisingLoad) {
  // Fig. 8's shape: no compression at first, stronger methods as the load
  // ramps. Needs the paper's CPU-to-link ratio: emulate a Sun-Fire-class
  // host (LZ reducing speed ~3.5 MB/s) against the 100 Mb link.
  workloads::TransactionGenerator gen(11);
  const Bytes data = gen.text_block(4 * 1024 * 1024);

  ExperimentConfig config;
  // Quiet (0 connections) -> moderate (60: link at ~40 %) -> saturated
  // (95: link at its 5 % floor). Step times are tuned to the virtual
  // timeline: raw 128 KiB blocks leave every ~20 ms on the quiet link.
  config.background = netsim::LoadTrace({{0, 0}, {0.3, 60}, {0.8, 95}});
  config.link.jitter_frac = 0.0;
  config.adaptive.async_sampling = false;
  config.adaptive.initial_bandwidth_Bps = config.link.bandwidth_Bps;
  config.adaptive.cpu_scale = cpu_scale_for_lz_speed(data, kPaperLzReducingBps);

  const auto result = run_adaptive(data, config);
  ASSERT_TRUE(result.verified);

  std::set<MethodId> seen;
  for (const auto& b : result.stream.blocks) seen.insert(b.method);
  EXPECT_TRUE(seen.count(MethodId::kNone)) << "quiet phase missing";
  EXPECT_TRUE(seen.count(MethodId::kLempelZiv)) << "moderate phase missing";
  EXPECT_TRUE(seen.count(MethodId::kBurrowsWheeler))
      << "saturated phase missing";

  // The quiet phase dominates the early blocks (a couple of warm-up blocks
  // may compress while the speed estimators converge).
  std::size_t early_raw = 0;
  for (std::size_t i = 0; i < 15 && i < result.stream.blocks.size(); ++i) {
    early_raw += result.stream.blocks[i].method == MethodId::kNone;
  }
  EXPECT_GE(early_raw, 10u);
}

TEST(Experiment, MolecularDataMostlyAvoidsLzAndBw) {
  // Fig. 11's shape: coordinates dominate the snapshot bytes, so most
  // blocks go to Huffman (or stay raw), not LZ/BW.
  workloads::MolecularConfig mconfig;
  mconfig.atom_count = 8192;
  workloads::MolecularGenerator gen(mconfig);
  const Bytes data = gen.stream(8);

  ExperimentConfig config;
  config.background = netsim::mbone_trace().scaled(4.0);
  config.adaptive.async_sampling = false;

  const auto result = run_adaptive(data, config);
  ASSERT_TRUE(result.verified);
  std::size_t order0_blocks = 0;
  for (const auto& b : result.stream.blocks) {
    order0_blocks += b.method == MethodId::kHuffman ||
                     b.method == MethodId::kNone;
  }
  EXPECT_GT(order0_blocks, result.stream.blocks.size() / 2);
}

TEST(Experiment, PolicyComparisonProducesAllFour) {
  workloads::TransactionGenerator gen(12);
  const Bytes data = gen.text_block(512 * 1024);
  ExperimentConfig config;
  config.adaptive.async_sampling = false;
  const auto results = run_policy_comparison(data, config);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].policy, "adaptive");
  EXPECT_EQ(results[1].policy, "none");
  EXPECT_EQ(results[2].policy, "lempel-ziv");
  EXPECT_EQ(results[3].policy, "burrows-wheeler");
  for (const auto& r : results) {
    EXPECT_TRUE(r.verified) << r.policy;
    EXPECT_EQ(r.stream.original_bytes, data.size()) << r.policy;
  }
}

TEST(Experiment, UnloadedGigabitPrefersRawTransfer) {
  // §4.1's conclusion: "On a local fast communication link ... compression
  // should not be used at all."
  workloads::TransactionGenerator gen(13);
  const Bytes data = gen.text_block(1024 * 1024);
  ExperimentConfig config;
  config.link = netsim::gigabit_link();
  config.adaptive.async_sampling = false;
  config.adaptive.initial_bandwidth_Bps = config.link.bandwidth_Bps;
  config.adaptive.cpu_scale = cpu_scale_for_lz_speed(data, kPaperLzReducingBps);

  const auto result = run_adaptive(data, config);
  ASSERT_TRUE(result.verified);
  std::size_t raw_blocks = 0;
  for (const auto& b : result.stream.blocks) {
    raw_blocks += b.method == MethodId::kNone;
  }
  EXPECT_GE(raw_blocks, result.stream.blocks.size() - 1);
}

}  // namespace
}  // namespace acex::adaptive
