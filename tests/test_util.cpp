#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/bitstream.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/varint.hpp"

namespace acex {
namespace {

// ---------------------------------------------------------------- varint

TEST(Varint, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  0xFFFFFFFFull,
                                  0xFFFFFFFFFFFFFFFFull};
  for (const auto v : values) {
    Bytes buf;
    put_varint(buf, v);
    EXPECT_EQ(buf.size(), varint_size(v));
    std::size_t pos = 0;
    EXPECT_EQ(get_varint(buf, &pos), v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(Varint, SequentialDecodingAdvancesPosition) {
  Bytes buf;
  put_varint(buf, 300);
  put_varint(buf, 5);
  put_varint(buf, 1ull << 40);
  std::size_t pos = 0;
  EXPECT_EQ(get_varint(buf, &pos), 300u);
  EXPECT_EQ(get_varint(buf, &pos), 5u);
  EXPECT_EQ(get_varint(buf, &pos), 1ull << 40);
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, ThrowsOnTruncation) {
  Bytes buf;
  put_varint(buf, 1ull << 40);
  buf.pop_back();
  std::size_t pos = 0;
  EXPECT_THROW(get_varint(buf, &pos), DecodeError);
}

TEST(Varint, ThrowsOnOverlongEncoding) {
  Bytes buf(11, 0x80);  // never terminates within 64 bits
  std::size_t pos = 0;
  EXPECT_THROW(get_varint(buf, &pos), DecodeError);
}

TEST(Varint, ThrowsOnEmptyInput) {
  std::size_t pos = 0;
  EXPECT_THROW(get_varint(Bytes{}, &pos), DecodeError);
}

// -------------------------------------------------------------- bitstream

TEST(BitStream, SingleBitsRoundTrip) {
  BitWriter w;
  const bool bits[] = {true, false, true, true, false, false, true};
  for (const bool b : bits) w.write_bit(b);
  const Bytes buf = w.take();
  BitReader r(buf);
  for (const bool b : bits) EXPECT_EQ(r.read_bit(), b);
}

TEST(BitStream, MultiBitFieldsRoundTrip) {
  BitWriter w;
  w.write(0x5, 3);
  w.write(0x1234, 16);
  w.write(0x1FFFFF, 21);
  w.write(1, 1);
  const Bytes buf = w.take();
  BitReader r(buf);
  EXPECT_EQ(r.read(3), 0x5u);
  EXPECT_EQ(r.read(16), 0x1234u);
  EXPECT_EQ(r.read(21), 0x1FFFFFu);
  EXPECT_EQ(r.read(1), 1u);
}

TEST(BitStream, MaxWidthFieldRoundTrips) {
  BitWriter w;
  const std::uint64_t v = 0x1ABCDEF012345ull;  // fits in 57 bits
  w.write(v, 57);
  const Bytes buf = w.take();
  BitReader r(buf);
  EXPECT_EQ(r.read(57), v);
}

TEST(BitStream, AlignToBytePadsWithZeros) {
  BitWriter w;
  w.write(0x7, 3);
  w.align_to_byte();
  w.write(0xFF, 8);
  const Bytes buf = w.take();
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0], 0xE0);
  EXPECT_EQ(buf[1], 0xFF);
}

TEST(BitStream, PeekDoesNotConsume) {
  BitWriter w;
  w.write(0xAB, 8);
  const Bytes buf = w.take();
  BitReader r(buf);
  EXPECT_EQ(r.peek(4), 0xAu);
  EXPECT_EQ(r.peek(8), 0xABu);
  EXPECT_EQ(r.read(8), 0xABu);
}

TEST(BitStream, PeekZeroFillsPastEnd) {
  const Bytes buf = {0xF0};
  BitReader r(buf);
  EXPECT_EQ(r.peek(16), 0xF000u);
}

TEST(BitStream, ReadPastEndThrows) {
  const Bytes buf = {0xFF};
  BitReader r(buf);
  r.read(8);
  EXPECT_THROW(r.read(1), DecodeError);
}

TEST(BitStream, SkipPastEndThrows) {
  const Bytes buf = {0xFF};
  BitReader r(buf);
  EXPECT_THROW(r.skip(9), DecodeError);
}

TEST(BitStream, SeekRepositionsReader) {
  BitWriter w;
  w.write(0xDEAD, 16);
  const Bytes buf = w.take();
  BitReader r(buf);
  r.seek(8);
  EXPECT_EQ(r.read(8), 0xADu);
  EXPECT_THROW(r.seek(17), DecodeError);
}

TEST(BitStream, RandomizedRoundTrip) {
  Rng rng(42);
  std::vector<std::pair<std::uint64_t, unsigned>> fields;
  BitWriter w;
  for (int i = 0; i < 2000; ++i) {
    const unsigned width = 1 + static_cast<unsigned>(rng.below(57));
    const std::uint64_t value =
        rng() & ((width == 64) ? ~0ull : ((1ull << width) - 1));
    fields.emplace_back(value, width);
    w.write(value, width);
  }
  const Bytes buf = w.take();
  BitReader r(buf);
  for (const auto& [value, width] : fields) {
    ASSERT_EQ(r.read(width), value);
  }
}

TEST(BitStream, BitCountTracksWrites) {
  BitWriter w;
  w.write(1, 3);
  w.write(0, 10);
  EXPECT_EQ(w.bit_count(), 13u);
}

// ------------------------------------------------------------------ crc32

TEST(Crc32, MatchesKnownVector) {
  // The canonical IEEE CRC-32 of "123456789".
  const Bytes data = to_bytes("123456789");
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyInputIsZero) { EXPECT_EQ(crc32(Bytes{}), 0u); }

TEST(Crc32, IncrementalEqualsOneShot) {
  const Bytes data = to_bytes("the quick brown fox jumps over the lazy dog");
  Crc32 inc;
  inc.update(ByteView(data).subspan(0, 10));
  inc.update(ByteView(data).subspan(10));
  EXPECT_EQ(inc.value(), crc32(data));
}

TEST(Crc32, DetectsSingleBitFlip) {
  Bytes data = to_bytes("sensitive payload");
  const std::uint32_t before = crc32(data);
  data[3] ^= 0x10;
  EXPECT_NE(crc32(data), before);
}

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(5);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 4000; ++i) ++seen[rng.below(8)];
  for (const int c : seen) EXPECT_GT(c, 300);  // roughly uniform
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(Rng, BytesProducesRequestedLength) {
  Rng rng(17);
  EXPECT_EQ(rng.bytes(0).size(), 0u);
  EXPECT_EQ(rng.bytes(7).size(), 7u);
  EXPECT_EQ(rng.bytes(4096).size(), 4096u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

// ------------------------------------------------------------------ stats

TEST(RunningStats, MeanAndStddev) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
  EXPECT_NEAR(s.stddev_percent(), 40.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Ewma, FirstSampleSeedsValue) {
  Ewma e(0.5);
  EXPECT_FALSE(e.has_value());
  EXPECT_DOUBLE_EQ(e.value_or(42.0), 42.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value_or(0.0), 10.0);
}

TEST(Ewma, SmoothsTowardNewSamples) {
  Ewma e(0.5);
  e.add(0.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value_or(0.0), 5.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value_or(0.0), 7.5);
}

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(Ewma(0.0), ConfigError);
  EXPECT_THROW(Ewma(1.5), ConfigError);
}

TEST(SlidingWindow, EvictsOldestBeyondCapacity) {
  SlidingWindow w(3);
  w.add(1);
  w.add(2);
  w.add(3);
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.add(10);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);  // {2,3,10}
}

TEST(SlidingWindow, RejectsZeroCapacity) {
  EXPECT_THROW(SlidingWindow(0), ConfigError);
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.1);
}

TEST(Histogram, OutOfRangeGoesToOverflowBuckets) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(5.0);
  EXPECT_EQ(h.total(), 2u);
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    EXPECT_EQ(h.count_at(i), 0u);
  }
}

// ------------------------------------------------------------------ clock

TEST(VirtualClock, AdvancesMonotonically) {
  VirtualClock c;
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  c.advance(1.5);
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.advance(-3.0);  // ignored
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.advance_to(1.0);  // ignored: in the past
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.advance_to(4.0);
  EXPECT_DOUBLE_EQ(c.now(), 4.0);
}

TEST(VirtualClock, StopwatchMeasuresVirtualTime) {
  VirtualClock c;
  Stopwatch sw(c);
  c.advance(2.0);
  EXPECT_DOUBLE_EQ(sw.elapsed(), 2.0);
  sw.restart();
  EXPECT_DOUBLE_EQ(sw.elapsed(), 0.0);
}

TEST(MonotonicClock, NeverGoesBackwards) {
  MonotonicClock c;
  const Seconds a = c.now();
  const Seconds b = c.now();
  EXPECT_GE(b, a);
}

// ------------------------------------------------------------------ bytes

TEST(BytesHelpers, StringRoundTrip) {
  const std::string s = "hello \x01\x02";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(BytesHelpers, HexdumpTruncates) {
  const Bytes data(100, 0xAB);
  const std::string dump = hexdump(data, 4);
  EXPECT_NE(dump.find("ab ab ab ab"), std::string::npos);
  EXPECT_NE(dump.find("..."), std::string::npos);
}

TEST(BytesHelpers, FormatSize) {
  EXPECT_EQ(format_size(512), "512 B");
  EXPECT_EQ(format_size(128 * 1024), "128.0 KiB");
  EXPECT_EQ(format_size(3 * 1024 * 1024), "3.0 MiB");
}

}  // namespace
}  // namespace acex
