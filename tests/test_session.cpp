#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <vector>

#include "netsim/link.hpp"
#include "qa/chaos.hpp"
#include "session/budget.hpp"
#include "session/client.hpp"
#include "session/deadline.hpp"
#include "session/manager.hpp"
#include "session/reconnect.hpp"
#include "session/wire.hpp"
#include "testdata.hpp"
#include "transport/sim_transport.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace acex::session {
namespace {

/// Thread-safe frame sink: egress accumulation tests never pump it, the
/// recovery tests pump into it and only care that frames left the queue.
class SinkTransport final : public transport::Transport {
 public:
  void send(ByteView message) override {
    std::lock_guard<std::mutex> lock(mutex_);
    ++frames_;
    bytes_ += message.size();
  }
  std::optional<Bytes> receive() override { return std::nullopt; }
  const Clock& clock() const override { return clock_; }

  std::uint64_t frames() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return frames_;
  }

 private:
  mutable std::mutex mutex_;
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
  MonotonicClock clock_;
};

netsim::LinkParams flat(double bandwidth_Bps = 1e6) {
  netsim::LinkParams p;
  p.bandwidth_Bps = bandwidth_Bps;
  p.jitter_frac = 0;
  return p;
}

/// One clean simulated endpoint: broker/manager writes into a(), the
/// session client drains b().
struct SimEndpoint {
  explicit SimEndpoint(VirtualClock& clock, double bandwidth_Bps = 1e6,
                       std::uint64_t seed = 1)
      : forward(flat(bandwidth_Bps), seed),
        reverse(flat(bandwidth_Bps), seed + 1000),
        duplex(forward, reverse, clock) {}

  netsim::SimLink forward;
  netsim::SimLink reverse;
  transport::SimDuplex duplex;
};

Bytes incompressible_block(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  return rng.bytes(size);
}

// ------------------------------------------------------------- deadlines

TEST(SessionDeadline, DefaultUnarmedNeverExpires) {
  VirtualClock clock;
  Deadline d;
  EXPECT_FALSE(d.armed());
  EXPECT_FALSE(d.expired(clock));
  clock.advance(1e9);
  EXPECT_FALSE(d.expired(clock));
  EXPECT_EQ(d.when(), std::numeric_limits<Seconds>::infinity());
  EXPECT_EQ(d.remaining(clock), std::numeric_limits<Seconds>::infinity());
}

TEST(SessionDeadline, ArmsExpiresExtendsAndDisarms) {
  VirtualClock clock;
  Deadline d(clock, 2.0);
  EXPECT_TRUE(d.armed());
  EXPECT_FALSE(d.expired(clock));
  EXPECT_DOUBLE_EQ(d.remaining(clock), 2.0);

  clock.advance(1.5);
  EXPECT_FALSE(d.expired(clock));
  d.extend(clock, 2.0);  // heartbeat: horizon pushed out from NOW
  clock.advance(1.0);
  EXPECT_FALSE(d.expired(clock));
  clock.advance(1.0);
  EXPECT_TRUE(d.expired(clock));
  EXPECT_LE(d.remaining(clock), 0.0);

  d.disarm();
  EXPECT_FALSE(d.armed());
  EXPECT_FALSE(d.expired(clock));
}

// ------------------------------------------------------------- reconnect

TEST(SessionReconnect, FirstDelayIsExactlyTheBase) {
  ReconnectPolicy policy;
  const auto d = policy.next_delay();
  ASSERT_TRUE(d.has_value());
  EXPECT_DOUBLE_EQ(*d, policy.config().base_delay);
  EXPECT_EQ(policy.attempts(), 1u);
}

TEST(SessionReconnect, DelaysStayInsideTheDecorrelatedJitterEnvelope) {
  ReconnectConfig config;
  config.base_delay = 0.1;
  config.max_delay = 1.0;
  config.max_attempts = 0;  // never exhaust
  ReconnectPolicy policy(config, 99);

  Seconds prev = *policy.next_delay();
  EXPECT_DOUBLE_EQ(prev, config.base_delay);
  for (int i = 0; i < 200; ++i) {
    const auto d = policy.next_delay();
    ASSERT_TRUE(d.has_value());
    const Seconds ceiling = std::min(config.max_delay, prev * 3);
    EXPECT_GE(*d, config.base_delay - 1e-12);
    EXPECT_LE(*d, ceiling + 1e-12);
    EXPECT_LE(*d, config.max_delay + 1e-12);
    prev = *d;
  }
}

TEST(SessionReconnect, ExhaustsAfterMaxAttemptsAndResetsOnSuccess) {
  ReconnectConfig config;
  config.max_attempts = 3;
  ReconnectPolicy policy(config, 7);
  EXPECT_TRUE(policy.next_delay().has_value());
  EXPECT_TRUE(policy.next_delay().has_value());
  EXPECT_TRUE(policy.next_delay().has_value());
  EXPECT_TRUE(policy.exhausted());
  EXPECT_FALSE(policy.next_delay().has_value());
  EXPECT_EQ(policy.attempts(), 3u);

  policy.reset();
  EXPECT_FALSE(policy.exhausted());
  EXPECT_EQ(policy.attempts(), 0u);
  const auto d = policy.next_delay();
  ASSERT_TRUE(d.has_value());
  EXPECT_DOUBLE_EQ(*d, config.base_delay);  // schedule restarts from scratch
}

TEST(SessionReconnect, DeterministicForAGivenSeed) {
  ReconnectConfig config;
  config.max_attempts = 0;
  ReconnectPolicy a(config, 42), b(config, 42);
  for (int i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(*a.next_delay(), *b.next_delay());
  }
}

TEST(SessionReconnect, RejectsDegenerateConfig) {
  ReconnectConfig bad;
  bad.base_delay = 0;
  EXPECT_THROW(ReconnectPolicy{bad}, ConfigError);
  bad.base_delay = 2.0;
  bad.max_delay = 1.0;
  EXPECT_THROW(ReconnectPolicy{bad}, ConfigError);
}

// ---------------------------------------------------------------- budget

BudgetConfig thousand_byte_budget() {
  BudgetConfig config;
  config.limit_bytes = 1000;
  return config;
}

TEST(SessionBudget, WalksTheLadderInOrder) {
  MemoryBudget budget(thousand_byte_budget());
  EXPECT_EQ(budget.stage(), DegradationStage::kNormal);
  EXPECT_EQ(budget.refresh_with(599), DegradationStage::kNormal);
  EXPECT_EQ(budget.refresh_with(600), DegradationStage::kCheaperCodec);
  EXPECT_EQ(budget.refresh_with(750), DegradationStage::kNullCodec);
  EXPECT_EQ(budget.refresh_with(850), DegradationStage::kDropOldest);
  EXPECT_EQ(budget.refresh_with(920), DegradationStage::kShedParked);
  EXPECT_EQ(budget.refresh_with(970), DegradationStage::kRefuseNew);
  EXPECT_EQ(budget.stage_changes(), 5u);
  EXPECT_EQ(budget.used_bytes(), 970u);
}

TEST(SessionBudget, SpikeEscalatesStraightToTheTopStage) {
  MemoryBudget budget(thousand_byte_budget());
  // Overload protection must not climb one rung per refresh.
  EXPECT_EQ(budget.refresh_with(2000), DegradationStage::kRefuseNew);
  EXPECT_EQ(budget.stage_changes(), 1u);
}

TEST(SessionBudget, HysteresisHoldsTheStageThroughBoundaryDither) {
  MemoryBudget budget(thousand_byte_budget());
  EXPECT_EQ(budget.refresh_with(610), DegradationStage::kCheaperCodec);
  ASSERT_EQ(budget.stage_changes(), 1u);
  // 100+ refreshes dithering around the entry threshold, all above the
  // de-escalation point (600 - 80 = 520): the ladder must not flap.
  for (int i = 0; i < 120; ++i) {
    const std::size_t used = (i % 2 == 0) ? 590 : 610;
    EXPECT_EQ(budget.refresh_with(used), DegradationStage::kCheaperCodec);
  }
  EXPECT_EQ(budget.stage_changes(), 1u);
  // Clearly below the margin: full recovery in one step.
  EXPECT_EQ(budget.refresh_with(500), DegradationStage::kNormal);
  EXPECT_EQ(budget.stage_changes(), 2u);
}

TEST(SessionBudget, DeEscalationWaitsForTheMarginOfTheCurrentStage) {
  MemoryBudget budget(thousand_byte_budget());
  EXPECT_EQ(budget.refresh_with(980), DegradationStage::kRefuseNew);
  // Below the top entry threshold but not below 970 - 80 = 890: hold.
  EXPECT_EQ(budget.refresh_with(900), DegradationStage::kRefuseNew);
  // Once clearly below the margin, de-escalation goes straight to the
  // stage the usage actually calls for — no rung-at-a-time lag.
  EXPECT_EQ(budget.refresh_with(889), DegradationStage::kDropOldest);
  EXPECT_EQ(budget.refresh_with(100), DegradationStage::kNormal);
}

TEST(SessionBudget, SumsProbesOnRefresh) {
  MemoryBudget budget(thousand_byte_budget());
  budget.add_probe("a", [] { return std::size_t{400}; });
  budget.add_probe("b", [] { return std::size_t{300}; });
  EXPECT_EQ(budget.refresh(), DegradationStage::kCheaperCodec);
  EXPECT_EQ(budget.used_bytes(), 700u);
  budget.remove_probe("b");
  EXPECT_EQ(budget.refresh(), DegradationStage::kNormal);
  EXPECT_EQ(budget.used_bytes(), 400u);
  EXPECT_THROW(budget.add_probe("bad", nullptr), ConfigError);
}

TEST(SessionBudget, RejectsDegenerateConfig) {
  BudgetConfig bad;
  bad.limit_bytes = 0;
  EXPECT_THROW(MemoryBudget{bad}, ConfigError);
  bad = BudgetConfig{};
  bad.enter_null = bad.enter_cheaper;  // not strictly increasing
  EXPECT_THROW(MemoryBudget{bad}, ConfigError);
  bad = BudgetConfig{};
  bad.hysteresis = bad.enter_cheaper;  // would allow negative floor
  EXPECT_THROW(MemoryBudget{bad}, ConfigError);
}

// ------------------------------------------------------------------ wire

TEST(SessionWire, RoundTripsEveryField) {
  ControlMsg msg;
  msg.kind = ControlKind::kResume;
  msg.session_id = 0x1234567890ull;
  msg.token = ~0ull;
  msg.resume_from = 77;
  msg.reason = "rejoining after a partition";
  EXPECT_EQ(control_decode(control_encode(msg)), msg);

  ControlMsg plain;  // defaults round-trip too
  EXPECT_EQ(control_decode(control_encode(plain)), plain);
}

TEST(SessionWire, RejectsTruncationBadMagicAndBitFlips) {
  ControlMsg msg;
  msg.kind = ControlKind::kResumeFail;
  msg.session_id = 9;
  msg.reason = "gap evicted";
  const Bytes wire = control_encode(msg);

  EXPECT_THROW(control_decode(ByteView{}), DecodeError);
  EXPECT_THROW(
      control_decode(ByteView(wire.data(), wire.size() - 1)), DecodeError);

  Bytes bad_magic = wire;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(control_decode(bad_magic), DecodeError);

  // Any single bit flip must fail the CRC.
  for (std::size_t i = 1; i < wire.size(); ++i) {
    Bytes flipped = wire;
    flipped[i] ^= 0x01;
    EXPECT_THROW(control_decode(flipped), DecodeError) << "byte " << i;
  }
}

TEST(SessionWire, RidesTheEchoAttributeMap) {
  ControlMsg msg;
  msg.kind = ControlKind::kHeartbeat;
  msg.session_id = 3;
  msg.token = 0xBEEF;
  const echo::AttributeMap attrs = control_attributes(msg);
  const auto back = control_from_attributes(attrs);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, msg);

  EXPECT_FALSE(control_from_attributes(echo::AttributeMap{}).has_value());
}

// ------------------------------------------------------------- lifecycle

SessionConfig quick_session() {
  SessionConfig config;
  config.liveness_timeout = 1.0;
  config.suspect_grace = 0.5;
  config.park_grace = 2.0;
  config.heartbeat_interval = 0.25;
  return config;
}

TEST(SessionLifecycle, HeartbeatsKeepTheSessionLive) {
  VirtualClock clock;
  SessionManager manager(clock);
  SinkTransport sink;
  const ConnectResult cr = manager.connect(sink, quick_session());
  ASSERT_TRUE(cr.accepted);
  EXPECT_GT(cr.token, 0u);
  EXPECT_DOUBLE_EQ(cr.heartbeat_interval, 0.25);
  EXPECT_EQ(manager.state(cr.session_id), SessionState::kLive);

  for (int i = 0; i < 8; ++i) {
    clock.advance(0.8);  // inside the liveness window every time
    EXPECT_TRUE(manager.heartbeat(cr.session_id, cr.token));
    const TickReport tick = manager.tick();
    EXPECT_EQ(tick.suspects, 0u);
  }
  EXPECT_EQ(manager.state(cr.session_id), SessionState::kLive);
  EXPECT_EQ(manager.counters().heartbeats, 8u);
  EXPECT_EQ(manager.live_count(), 1u);
}

TEST(SessionLifecycle, MissedHeartbeatsWalkSuspectParkedExpired) {
  VirtualClock clock;
  SessionManager manager(clock);
  SinkTransport sink;
  const ConnectResult cr = manager.connect(sink, quick_session());
  ASSERT_TRUE(cr.accepted);

  clock.advance(1.1);  // past liveness_timeout
  TickReport tick = manager.tick();
  EXPECT_EQ(tick.suspects, 1u);
  EXPECT_EQ(manager.state(cr.session_id), SessionState::kSuspect);
  // A suspect is still reachable: one heartbeat rescues it.
  EXPECT_TRUE(manager.heartbeat(cr.session_id, cr.token));
  EXPECT_EQ(manager.state(cr.session_id), SessionState::kLive);

  clock.advance(1.1);
  manager.tick();  // suspect again
  clock.advance(0.6);  // past suspect_grace
  tick = manager.tick();
  EXPECT_EQ(tick.parks, 1u);
  EXPECT_EQ(manager.state(cr.session_id), SessionState::kParked);
  EXPECT_EQ(manager.parked_count(), 1u);
  // Parked state cannot be heartbeaten back — it has no transport.
  EXPECT_FALSE(manager.heartbeat(cr.session_id, cr.token));

  clock.advance(2.1);  // past park_grace
  tick = manager.tick();
  EXPECT_EQ(tick.expired, 1u);
  EXPECT_EQ(manager.state(cr.session_id), SessionState::kExpired);
  EXPECT_EQ(manager.live_count(), 0u);
  EXPECT_EQ(manager.parked_count(), 0u);

  const SessionCounters c = manager.counters();
  EXPECT_EQ(c.suspects, 2u);
  EXPECT_EQ(c.parks, 1u);
  EXPECT_EQ(c.expired, 1u);
  EXPECT_EQ(c.shed, 0u);
}

TEST(SessionLifecycle, RejectsBadTokensAndUnknownIds) {
  VirtualClock clock;
  SessionManager manager(clock);
  SinkTransport sink;
  const ConnectResult cr = manager.connect(sink, quick_session());
  EXPECT_FALSE(manager.heartbeat(cr.session_id, cr.token + 1));
  EXPECT_FALSE(manager.heartbeat(cr.session_id + 99, cr.token));
  EXPECT_THROW(manager.state(cr.session_id + 99), ConfigError);

  SinkTransport other;
  const ResumeResult r =
      manager.resume(cr.session_id, cr.token + 1, 0, other);
  EXPECT_EQ(r.status, ResumeResult::Status::kRejected);
  EXPECT_FALSE(r.reason.empty());
  EXPECT_EQ(manager.counters().resumes, 0u);
}

TEST(SessionLifecycle, ControlPathAnswersHeartbeatAndBye) {
  VirtualClock clock;
  SessionManager manager(clock);
  SinkTransport sink;
  const ConnectResult cr = manager.connect(sink, quick_session());

  ControlMsg hb;
  hb.kind = ControlKind::kHeartbeat;
  hb.session_id = cr.session_id;
  hb.token = cr.token;
  ControlMsg ack = control_decode(manager.handle_control(control_encode(hb)));
  EXPECT_EQ(ack.kind, ControlKind::kHeartbeat);

  hb.token = cr.token + 1;  // bad credential: typed refusal, not silence
  ack = control_decode(manager.handle_control(control_encode(hb)));
  EXPECT_EQ(ack.kind, ControlKind::kResumeFail);

  ControlMsg bye;
  bye.kind = ControlKind::kBye;
  bye.session_id = cr.session_id;
  ack = control_decode(manager.handle_control(control_encode(bye)));
  EXPECT_EQ(ack.kind, ControlKind::kBye);
  EXPECT_EQ(manager.state(cr.session_id), SessionState::kParked);

  // kResume cannot ride the transportless path.
  ControlMsg res;
  res.kind = ControlKind::kResume;
  ack = control_decode(manager.handle_control(control_encode(res)));
  EXPECT_EQ(ack.kind, ControlKind::kResumeFail);
}

// ---------------------------------------------------------------- resume

/// Drain everything currently deliverable to the client, advancing the
/// virtual clock so SimLink actually surfaces the frames.
Bytes drain(VirtualClock& clock, SessionManager& manager, SessionId id,
            SessionClient& client) {
  Bytes out;
  for (int i = 0; i < 8; ++i) {
    manager.pump(id);
    clock.advance(0.05);
    const Bytes got = client.receiver()->receive_available();
    out.insert(out.end(), got.begin(), got.end());
  }
  return out;
}

TEST(SessionResume, ReplaysTheGapByteIdentically) {
  VirtualClock clock;
  SessionManager manager(clock);
  auto ep = std::make_unique<SimEndpoint>(clock, 1e6, 5);
  SessionConfig sc = quick_session();
  sc.subscriber.adaptive.decision.block_size = 4096;
  const ConnectResult cr = manager.connect(ep->duplex.a(), sc);
  ASSERT_TRUE(cr.accepted);

  SessionClient client(clock);
  client.on_connected(cr.session_id, cr.token, ep->duplex.b(),
                      cr.heartbeat_interval);
  ASSERT_TRUE(client.connected());

  Bytes expected;
  const auto publish_one = [&](std::uint64_t seed) {
    const Bytes block = testdata::low_entropy(2048, seed);
    expected.insert(expected.end(), block.begin(), block.end());
    manager.publish(block);
  };

  for (std::uint64_t s = 0; s < 3; ++s) publish_one(s);
  Bytes delivered = drain(clock, manager, cr.session_id, client);
  EXPECT_EQ(delivered.size(), 3u * 2048);
  EXPECT_EQ(client.resume_from(), 3u);

  // The link dies. The server parks; the client keeps its cursor.
  client.on_dropped();
  ASSERT_TRUE(manager.disconnect(cr.session_id));
  EXPECT_FALSE(client.connected());
  ASSERT_TRUE(client.next_retry_delay().has_value());

  // Three more blocks fan out while this session is parked: they reach the
  // retransmit ring, not the dead link.
  for (std::uint64_t s = 3; s < 6; ++s) publish_one(s);

  // Reconnect on a brand-new endpoint; resume from the client's cursor.
  auto ep2 = std::make_unique<SimEndpoint>(clock, 1e6, 17);
  const ResumeResult rr = manager.resume(cr.session_id, cr.token,
                                         client.resume_from(), ep2->duplex.a());
  ASSERT_EQ(rr.status, ResumeResult::Status::kResumed) << rr.reason;
  EXPECT_EQ(rr.replayed, 3u);
  client.on_resumed(ep2->duplex.b(), cr.token);
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(client.reconnect_attempts(), 0u);  // backoff reset on success

  ep.reset();  // the old endpoint is gone for good; nothing may touch it
  const Bytes resumed = drain(clock, manager, cr.session_id, client);
  delivered.insert(delivered.end(), resumed.begin(), resumed.end());

  // The acceptance bar: byte-identical to a stream that never dropped —
  // zero lost, zero duplicated.
  EXPECT_EQ(delivered, expected);
  EXPECT_EQ(client.receiver()->frames_duplicate(), 0u);
  EXPECT_EQ(manager.counters().resumes, 1u);
  EXPECT_EQ(manager.state(cr.session_id), SessionState::kLive);
}

TEST(SessionResume, DowngradesToRestartWhenTheRingEvictedTheGap) {
  VirtualClock clock;
  SessionManager manager(clock);
  SinkTransport sink;
  SessionConfig sc = quick_session();
  sc.subscriber.adaptive.retransmit_capacity = 2;  // tiny history on purpose
  const ConnectResult cr = manager.connect(sink, sc);
  ASSERT_TRUE(cr.accepted);
  ASSERT_TRUE(manager.disconnect(cr.session_id));

  // Six blocks published while parked, a two-frame ring: [0, 4) is gone.
  for (std::uint64_t s = 0; s < 6; ++s) {
    manager.publish(testdata::low_entropy(1024, s));
  }

  SinkTransport fresh;
  const ResumeResult rr = manager.resume(cr.session_id, cr.token, 0, fresh);
  EXPECT_EQ(rr.status, ResumeResult::Status::kRestart);
  EXPECT_FALSE(rr.reason.empty());
  // The incarnation is dead — resume must never wedge it half-attached.
  EXPECT_EQ(manager.state(cr.session_id), SessionState::kExpired);
  EXPECT_EQ(manager.counters().restarts, 1u);
  EXPECT_EQ(manager.counters().expired, 1u);

  // A second resume attempt on the tombstone stays a clean restart.
  const ResumeResult again =
      manager.resume(cr.session_id, cr.token, 0, fresh);
  EXPECT_EQ(again.status, ResumeResult::Status::kRestart);
  EXPECT_EQ(manager.counters().restarts, 2u);
}

TEST(SessionResume, ExpiredSessionGetsRestartNotResume) {
  VirtualClock clock;
  SessionManager manager(clock);
  SinkTransport sink;
  const ConnectResult cr = manager.connect(sink, quick_session());
  ASSERT_TRUE(manager.disconnect(cr.session_id));

  clock.advance(2.1);  // past park_grace
  const TickReport tick = manager.tick();
  EXPECT_EQ(tick.expired, 1u);

  SinkTransport fresh;
  const ResumeResult rr = manager.resume(cr.session_id, cr.token, 0, fresh);
  EXPECT_EQ(rr.status, ResumeResult::Status::kRestart);
  EXPECT_EQ(manager.counters().restarts, 1u);
}

// -------------------------------------------------------------- overload

SessionConfig overload_session() {
  SessionConfig config = quick_session();
  config.subscriber.egress_capacity = 512;  // egress drives the pressure
  config.subscriber.adaptive.retransmit_capacity = 4;
  config.subscriber.adaptive.retransmit_max_bytes = 2048;
  config.subscriber.adaptive.decision.block_size = 4096;
  return config;
}

TEST(SessionOverload, LadderWalksInOrderRefusesNewAndRecovers) {
  VirtualClock clock;
  ManagerConfig mc;
  mc.budget.limit_bytes = 32 * 1024;
  SessionManager manager(clock, mc);

  const SessionConfig sc = overload_session();
  SinkTransport sink;
  const ConnectResult cr = manager.connect(sink, sc);
  ASSERT_TRUE(cr.accepted);

  // Never pump: each published block parks ~512 incompressible bytes in
  // the egress, walking usage monotonically up through every stage.
  std::vector<DegradationStage> walk;
  for (std::uint64_t s = 0; s < 90; ++s) {
    manager.publish(incompressible_block(512, 1000 + s));
    const DegradationStage stage = manager.stage();
    if (walk.empty() || walk.back() != stage) walk.push_back(stage);
  }

  // Every stage, in escalation order, no oscillation while pressure only
  // grows — the hysteresis guard means a stage once entered is kept.
  const std::vector<DegradationStage> expected_walk = {
      DegradationStage::kNormal,     DegradationStage::kCheaperCodec,
      DegradationStage::kNullCodec,  DegradationStage::kDropOldest,
      DegradationStage::kShedParked, DegradationStage::kRefuseNew,
  };
  EXPECT_EQ(walk, expected_walk);
  EXPECT_EQ(manager.budget().stage_changes(), 5u);

  // At kRefuseNew a newcomer is turned away with a reason.
  SinkTransport late;
  const ConnectResult refused = manager.connect(late, sc);
  EXPECT_FALSE(refused.accepted);
  EXPECT_FALSE(refused.reason.empty());
  EXPECT_EQ(manager.counters().refused, 1u);
  // The incumbent keeps its session through the whole episode.
  EXPECT_EQ(manager.state(cr.session_id), SessionState::kLive);

  // Pressure clears: drain the egress, publish once more to refresh, and
  // the ladder de-escalates fully. Service quality is restored, and the
  // next newcomer is welcome.
  while (manager.pump(cr.session_id) > 0) {
  }
  manager.publish(incompressible_block(512, 4242));
  EXPECT_EQ(manager.stage(), DegradationStage::kNormal);
  SinkTransport welcome;
  const ConnectResult ok = manager.connect(welcome, sc);
  EXPECT_TRUE(ok.accepted);
}

TEST(SessionOverload, ShedsParkedSessionsAtDepthThenRecovers) {
  VirtualClock clock;
  ManagerConfig mc;
  mc.budget.limit_bytes = 32 * 1024;
  SessionManager manager(clock, mc);

  const SessionConfig sc = overload_session();
  SinkTransport sink;
  const ConnectResult cr = manager.connect(sink, sc);
  ASSERT_TRUE(cr.accepted);

  // Climb until the ladder demands parked-session shedding.
  for (std::uint64_t s = 0;
       s < 90 && manager.stage() < DegradationStage::kShedParked; ++s) {
    manager.publish(incompressible_block(512, 2000 + s));
  }
  ASSERT_GE(manager.stage(), DegradationStage::kShedParked);

  // The session dies while the stage holds. Normally park_grace would keep
  // its state warm for 2 s; under kShedParked the very next refresh expires
  // it early instead — parked state is exactly the memory the ladder is
  // fighting for.
  ASSERT_TRUE(manager.disconnect(cr.session_id));
  EXPECT_EQ(manager.parked_count(), 1u);
  manager.publish(incompressible_block(512, 4243));
  EXPECT_EQ(manager.state(cr.session_id), SessionState::kExpired);
  EXPECT_EQ(manager.parked_count(), 0u);
  EXPECT_EQ(manager.counters().shed, 1u);
  EXPECT_EQ(manager.counters().expired, 1u);

  // Shedding released the subscriber's egress and ring: the next refresh
  // sees the pressure gone and the ladder stands down completely.
  manager.publish(incompressible_block(512, 4244));
  EXPECT_EQ(manager.stage(), DegradationStage::kNormal);
}

TEST(SessionOverload, GovernorForcesTheNullCodecAtDepth) {
  // The same data, the same link: without a governor the selector
  // compresses; with the ladder's null-codec governor every block ships
  // uncompressed — the overload path reaches into the plan step itself.
  VirtualClock clock;
  const Bytes data = testdata::repetitive_text(8 * 4096, 11);

  adaptive::AdaptiveConfig config;
  config.decision.block_size = 4096;
  config.decision.sample_size = 1024;
  config.async_sampling = false;
  config.target_rate_Bps = 1e12;  // compression is always worthwhile

  SimEndpoint plain_ep(clock, 100e3, 3);
  adaptive::AdaptiveSender plain(plain_ep.duplex.a(), config);
  const adaptive::StreamReport before = plain.send_all(data);
  bool compressed_without_governor = false;
  for (const auto& block : before.blocks) {
    if (block.method != MethodId::kNone) compressed_without_governor = true;
  }
  EXPECT_TRUE(compressed_without_governor);

  config.method_governor = [](MethodId) { return MethodId::kNone; };
  SimEndpoint governed_ep(clock, 100e3, 4);
  adaptive::AdaptiveSender governed(governed_ep.duplex.a(), config);
  adaptive::AdaptiveReceiver rx(governed_ep.duplex.b(),
                                {adaptive::RecoveryPolicy::kSkip, 3});
  const adaptive::StreamReport after = governed.send_all(data);
  for (const auto& block : after.blocks) {
    EXPECT_EQ(block.method, MethodId::kNone);
  }
  clock.advance(60.0);
  EXPECT_EQ(rx.receive_available(), data);  // degraded, never corrupted
}

// ----------------------------------------------------------------- chaos

TEST(SessionChaos, SixteenSubscribersEachKilledThriceResumeByteExact) {
  qa::ChaosConfig config;  // defaults: 16 sessions, min_kills 3
  ASSERT_EQ(config.sessions, 16u);
  ASSERT_EQ(config.min_kills, 3u);

  const qa::ChaosReport report = qa::run_chaos(config);
  for (const std::string& v : report.violations) {
    ADD_FAILURE() << "chaos violation: " << v;
  }
  EXPECT_TRUE(report.ok());
  // Every peer was killed at least min_kills times mid-stream...
  EXPECT_GE(report.kills, config.sessions * config.min_kills);
  // ...and both recovery paths actually ran.
  EXPECT_GT(report.resumes, 0u);
  EXPECT_GT(report.restarts + report.expired, 0u);
  EXPECT_GT(report.published, 0u);
  EXPECT_GT(report.delivered, 0u);
  EXPECT_GT(report.heartbeats, 0u);
}

}  // namespace
}  // namespace acex::session
