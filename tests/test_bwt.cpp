#include <gtest/gtest.h>

#include "compress/bwt.hpp"
#include "compress/bwt_codec.hpp"
#include "compress/lz77.hpp"
#include "compress/mtf.hpp"
#include "compress/rle.hpp"
#include "testdata.hpp"
#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex {
namespace {

// -------------------------------------------------------------- transform

TEST(BwtTransform, KnownVectorBanana) {
  // Classic example: cyclic BWT of "banana".
  const Bytes data = to_bytes("banana");
  const auto t = bwt::forward(data);
  EXPECT_EQ(bwt::inverse(t.last_column, t.primary), data);
  EXPECT_EQ(to_string(t.last_column), "nnbaaa");
}

TEST(BwtTransform, GroupsEqualContexts) {
  // BWT of repetitive text concentrates equal characters.
  const Bytes data = testdata::repetitive_text(4096, 1);
  const auto t = bwt::forward(data);
  std::size_t adjacent_equal = 0;
  for (std::size_t i = 1; i < t.last_column.size(); ++i) {
    adjacent_equal += t.last_column[i] == t.last_column[i - 1];
  }
  std::size_t baseline = 0;
  for (std::size_t i = 1; i < data.size(); ++i) {
    baseline += data[i] == data[i - 1];
  }
  EXPECT_GT(adjacent_equal, baseline * 2);
}

TEST(BwtTransform, EmptyAndSingle) {
  EXPECT_TRUE(bwt::forward(Bytes{}).last_column.empty());
  const Bytes one = {0x7F};
  const auto t = bwt::forward(one);
  EXPECT_EQ(bwt::inverse(t.last_column, t.primary), one);
}

TEST(BwtTransform, RoundTripsAllPatterns) {
  for (const auto& pattern : testdata::patterns()) {
    for (const std::size_t size : {2u, 3u, 64u, 1000u, 4097u}) {
      const Bytes data = pattern.make(size, 21);
      const auto t = bwt::forward(data);
      EXPECT_EQ(bwt::inverse(t.last_column, t.primary), data)
          << pattern.name << " size=" << size;
    }
  }
}

TEST(BwtTransform, PeriodicInputsRoundTrip) {
  // Identical rotations are the degenerate case of the rotation sort.
  for (const std::string s :
       {"aaaa", "abab", "abcabc", "xyxyxyxyxyxy", "aabaab"}) {
    const Bytes data = to_bytes(s);
    const auto t = bwt::forward(data);
    EXPECT_EQ(bwt::inverse(t.last_column, t.primary), data) << s;
  }
}

TEST(BwtTransform, InverseRejectsBadPrimary) {
  const Bytes col = to_bytes("nnbaaa");
  EXPECT_THROW(bwt::inverse(col, 6), DecodeError);
}

// -------------------------------------------------------------------- mtf

TEST(Mtf, KnownSequence) {
  // 'a' (97) first costs 97, immediately repeating costs 0.
  const Bytes data = to_bytes("aab");
  const Bytes coded = mtf::encode(data);
  ASSERT_EQ(coded.size(), 3u);
  EXPECT_EQ(coded[0], 97);
  EXPECT_EQ(coded[1], 0);
  EXPECT_EQ(mtf::decode(coded), data);
}

TEST(Mtf, RoundTripsAllPatterns) {
  for (const auto& pattern : testdata::patterns()) {
    const Bytes data = pattern.make(5000, 2);
    EXPECT_EQ(mtf::decode(mtf::encode(data)), data) << pattern.name;
  }
}

TEST(Mtf, LocalizedDataBecomesSmallValues) {
  const Bytes data = testdata::long_runs(10000, 3);
  const Bytes coded = mtf::encode(data);
  std::size_t small = 0;
  for (const auto b : coded) small += b < 4;
  EXPECT_GT(small, coded.size() * 9 / 10);
}

TEST(Mtf, EmptyInput) { EXPECT_TRUE(mtf::encode(Bytes{}).empty()); }

// -------------------------------------------------------------------- rle

TEST(Rle, OutputNeverContainsSentinel) {
  for (const auto& pattern : testdata::patterns()) {
    const Bytes data = pattern.make(8000, 4);
    const Bytes coded = rle::encode(data);
    for (const auto b : coded) {
      ASSERT_NE(b, rle::kSentinel) << pattern.name;
    }
    EXPECT_EQ(rle::decode(coded), data) << pattern.name;
  }
}

TEST(Rle, CompressesLongRuns) {
  const Bytes data(10000, 3);
  const Bytes coded = rle::encode(data);
  EXPECT_LT(coded.size(), 250u);
  EXPECT_EQ(rle::decode(coded), data);
}

TEST(Rle, RunOfSentinelBytesRoundTrips) {
  const Bytes data(1000, 255);
  const Bytes coded = rle::encode(data);
  for (const auto b : coded) ASSERT_NE(b, rle::kSentinel);
  EXPECT_EQ(rle::decode(coded), data);
}

TEST(Rle, RunOfEscapeBytesRoundTrips) {
  const Bytes data(1000, 254);
  EXPECT_EQ(rle::decode(rle::encode(data)), data);
}

TEST(Rle, ExactlyFourRepeatsGetCountByte) {
  const Bytes data = {9, 9, 9, 9};
  const Bytes coded = rle::encode(data);
  ASSERT_EQ(coded.size(), 5u);  // 4 bytes + count 0
  EXPECT_EQ(coded[4], 0);
  EXPECT_EQ(rle::decode(coded), data);
}

TEST(Rle, ThreeRepeatsStayRaw) {
  const Bytes data = {9, 9, 9};
  EXPECT_EQ(rle::encode(data), data);
  EXPECT_EQ(rle::decode(data), data);
}

TEST(Rle, RunCapRespectsPaperLimit) {
  // A unit covers at most kRunTrigger + kMaxExtra = 254 source bytes.
  const Bytes data(254, 1);
  const Bytes coded = rle::encode(data);
  ASSERT_EQ(coded.size(), 5u);
  EXPECT_EQ(coded[4], rle::kMaxExtra);
  EXPECT_EQ(rle::decode(coded), data);
}

TEST(Rle, DecodeRejectsPayloadSentinel) {
  const Bytes bad = {1, 2, 255};
  EXPECT_THROW(rle::decode(bad), DecodeError);
}

TEST(Rle, DecodeRejectsTruncatedEscape) {
  const Bytes bad = {254};
  EXPECT_THROW(rle::decode(bad), DecodeError);
}

TEST(Rle, DecodeRejectsInvalidEscapePayload) {
  const Bytes bad = {254, 7};
  EXPECT_THROW(rle::decode(bad), DecodeError);
}

TEST(Rle, DecodeRejectsTruncatedRunCount) {
  const Bytes bad = {5, 5, 5, 5};  // count byte missing
  EXPECT_THROW(rle::decode(bad), DecodeError);
}

TEST(Rle, DecodeRejectsOversizedRunCount) {
  const Bytes bad = {5, 5, 5, 5, 253};  // count > kMaxExtra
  EXPECT_THROW(rle::decode(bad), DecodeError);
}

// ------------------------------------------------------------ whole codec

TEST(BurrowsWheelerCodec, RoundTripsAllPatterns) {
  BurrowsWheelerCodec codec(4096);
  for (const auto& pattern : testdata::patterns()) {
    const Bytes data = pattern.make(20000, 5);
    EXPECT_EQ(codec.decompress(codec.compress(data)), data) << pattern.name;
  }
}

TEST(BurrowsWheelerCodec, EmptyInput) {
  BurrowsWheelerCodec codec;
  EXPECT_TRUE(codec.decompress(codec.compress(Bytes{})).empty());
}

TEST(BurrowsWheelerCodec, InputSmallerThanChunk) {
  BurrowsWheelerCodec codec(4096);
  const Bytes data = testdata::repetitive_text(100, 6);
  EXPECT_EQ(codec.decompress(codec.compress(data)), data);
}

TEST(BurrowsWheelerCodec, InputSpanningManyChunks) {
  BurrowsWheelerCodec codec(512);
  const Bytes data = testdata::repetitive_text(10000, 7);
  EXPECT_EQ(codec.decompress(codec.compress(data)), data);
}

TEST(BurrowsWheelerCodec, ExactChunkMultiple) {
  BurrowsWheelerCodec codec(1024);
  const Bytes data = testdata::low_entropy(4096, 8);
  EXPECT_EQ(codec.decompress(codec.compress(data)), data);
}

TEST(BurrowsWheelerCodec, BestRatioOnRepetitiveData) {
  BurrowsWheelerCodec bw(64 * 1024);
  LempelZivCodec lzc;
  const Bytes data = testdata::repetitive_text(256 * 1024, 9);
  EXPECT_LT(bw.compress(data).size(), lzc.compress(data).size());
}

TEST(BurrowsWheelerCodec, StoredModeBoundsExpansion) {
  BurrowsWheelerCodec codec(4096);
  const Bytes data = testdata::random_bytes(16 * 1024, 10);
  const Bytes packed = codec.compress(data);
  EXPECT_LE(packed.size(), data.size() + 16);
  EXPECT_EQ(codec.decompress(packed), data);
}

TEST(BurrowsWheelerCodec, RejectsBadChunkSize) {
  EXPECT_THROW(BurrowsWheelerCodec(16), ConfigError);
  EXPECT_THROW(BurrowsWheelerCodec(4 << 20), ConfigError);
}

TEST(BurrowsWheelerCodec, TruncatedInputThrows) {
  BurrowsWheelerCodec codec(2048);
  Bytes packed = codec.compress(testdata::repetitive_text(8192, 11));
  packed.resize(packed.size() / 2);
  EXPECT_THROW(codec.decompress(packed), DecodeError);
}

TEST(BurrowsWheelerCodec, RecoverFromBitFindsTailChunks) {
  // §2.4: a receiver starting mid-stream recovers chunks after the next
  // sentinel. Use text chunks so recovery is deterministic in practice.
  BurrowsWheelerCodec codec(1024);
  const Bytes data = testdata::repetitive_text(8192, 12);
  const Bytes packed = codec.compress(data);

  const auto chunks = codec.recover_from_bit(packed, 0);
  // Starting at bit 0 skips only the first chunk.
  ASSERT_EQ(chunks.size(), 7u);
  Bytes tail;
  for (const auto& c : chunks) tail.insert(tail.end(), c.begin(), c.end());
  const Bytes expected(data.begin() + 1024, data.end());
  EXPECT_EQ(tail, expected);
}

TEST(BurrowsWheelerCodec, RecoverFromMidStreamOffset) {
  BurrowsWheelerCodec codec(1024);
  const Bytes data = testdata::repetitive_text(16384, 13);
  const Bytes packed = codec.compress(data);

  // Jump ~40% into the compressed payload; everything recovered must be a
  // contiguous run of original chunks ending at the final one.
  const auto chunks =
      codec.recover_from_bit(packed, packed.size() * 8 * 2 / 5);
  ASSERT_FALSE(chunks.empty());
  ASSERT_LE(chunks.size(), 16u);
  Bytes tail;
  for (const auto& c : chunks) tail.insert(tail.end(), c.begin(), c.end());
  ASSERT_LE(tail.size(), data.size());
  const Bytes expected(data.end() - static_cast<std::ptrdiff_t>(tail.size()),
                       data.end());
  EXPECT_EQ(tail, expected);
}

TEST(BurrowsWheelerCodec, RecoverRequiresCompressedMode) {
  BurrowsWheelerCodec codec(1024);
  const Bytes packed = codec.compress(testdata::random_bytes(4096, 14));
  EXPECT_THROW(codec.recover_from_bit(packed, 0), DecodeError);
}

}  // namespace
}  // namespace acex
