#include <gtest/gtest.h>

#include "echo/bridge.hpp"
#include "echo/bus.hpp"
#include "netsim/link.hpp"
#include "testdata.hpp"
#include "transport/sim_transport.hpp"
#include "util/error.hpp"

namespace acex::echo {
namespace {

// -------------------------------------------------------------- attributes

TEST(Attributes, TypedSetAndGet) {
  AttributeMap attrs;
  attrs.set_int("count", 42);
  attrs.set_double("rate", 1.5);
  attrs.set_string("name", "alpha");
  attrs.set_bytes("raw", {1, 2, 3});

  EXPECT_EQ(attrs.get_int("count"), 42);
  EXPECT_EQ(attrs.get_double("rate"), 1.5);
  EXPECT_EQ(attrs.get_string("name"), "alpha");
  EXPECT_EQ(attrs.get_bytes("raw"), (Bytes{1, 2, 3}));
  EXPECT_EQ(attrs.size(), 4u);
}

TEST(Attributes, TypeMismatchYieldsNullopt) {
  AttributeMap attrs;
  attrs.set_int("x", 1);
  EXPECT_FALSE(attrs.get_double("x").has_value());
  EXPECT_FALSE(attrs.get_string("x").has_value());
  EXPECT_FALSE(attrs.get_int("absent").has_value());
}

TEST(Attributes, OverwriteAndErase) {
  AttributeMap attrs;
  attrs.set_int("x", 1);
  attrs.set_int("x", 2);
  EXPECT_EQ(attrs.get_int("x"), 2);
  attrs.erase("x");
  EXPECT_FALSE(attrs.has("x"));
  attrs.erase("x");  // idempotent
}

TEST(Attributes, EmptyNameRejected) {
  AttributeMap attrs;
  EXPECT_THROW(attrs.set_int("", 1), ConfigError);
}

TEST(Attributes, MergeOverwrites) {
  AttributeMap a, b;
  a.set_int("keep", 1);
  a.set_int("shared", 1);
  b.set_int("shared", 2);
  b.set_string("extra", "e");
  a.merge(b);
  EXPECT_EQ(a.get_int("keep"), 1);
  EXPECT_EQ(a.get_int("shared"), 2);
  EXPECT_EQ(a.get_string("extra"), "e");
}

TEST(Attributes, SerializationRoundTrip) {
  AttributeMap attrs;
  attrs.set_int("negative", -1234567);
  attrs.set_int("huge", std::int64_t{1} << 60);
  attrs.set_double("pi", 3.14159265358979);
  attrs.set_double("neg", -0.5);
  attrs.set_string("s", "quality attribute");
  attrs.set_bytes("b", Bytes{0, 255, 128});

  Bytes wire;
  attrs.serialize(wire);
  std::size_t pos = 0;
  const AttributeMap back = AttributeMap::deserialize(wire, &pos);
  EXPECT_EQ(pos, wire.size());
  EXPECT_EQ(back, attrs);
}

TEST(Attributes, DeserializeRejectsTruncation) {
  AttributeMap attrs;
  attrs.set_string("key", "value");
  Bytes wire;
  attrs.serialize(wire);
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    std::size_t pos = 0;
    const ByteView prefix = ByteView(wire).subspan(0, cut);
    EXPECT_THROW(AttributeMap::deserialize(prefix, &pos), DecodeError);
  }
}

TEST(Attributes, DeserializeRejectsUnknownType) {
  AttributeMap attrs;
  attrs.set_int("k", 5);
  Bytes wire;
  attrs.serialize(wire);
  wire[wire.size() - 2] = 9;  // type byte
  std::size_t pos = 0;
  EXPECT_THROW(AttributeMap::deserialize(wire, &pos), DecodeError);
}

// ------------------------------------------------------------------ events

TEST(EventWire, SerializeRoundTrip) {
  Event event(testdata::random_bytes(500, 1));
  event.attributes.set_int("seq", 9);
  const Event back = deserialize_event(serialize_event(event));
  EXPECT_EQ(back.payload, event.payload);
  EXPECT_EQ(back.attributes, event.attributes);
}

TEST(EventWire, RejectsTrailingGarbage) {
  Bytes wire = serialize_event(Event(to_bytes("x")));
  wire.push_back(0);
  EXPECT_THROW(deserialize_event(wire), DecodeError);
}

// ---------------------------------------------------------------- channels

TEST(EventChannel, DeliversToAllSubscribers) {
  EventChannel ch("test");
  int a = 0, b = 0;
  ch.subscribe([&](const Event&) { ++a; });
  ch.subscribe([&](const Event&) { ++b; });
  ch.submit(Event(to_bytes("e")));
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(ch.events_submitted(), 1u);
  EXPECT_EQ(ch.bytes_submitted(), 1u);
}

TEST(EventChannel, UnsubscribeStopsDelivery) {
  EventChannel ch("test");
  int count = 0;
  const SubscriberId id = ch.subscribe([&](const Event&) { ++count; });
  ch.submit(Event(to_bytes("1")));
  ch.unsubscribe(id);
  ch.submit(Event(to_bytes("2")));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(ch.subscriber_count(), 0u);
}

TEST(EventChannel, SubscribeDuringDispatchTakesEffectNextEvent) {
  EventChannel ch("test");
  int late = 0;
  ch.subscribe([&](const Event&) {
    if (ch.subscriber_count() == 1) {
      ch.subscribe([&](const Event&) { ++late; });
    }
  });
  ch.submit(Event(to_bytes("a")));  // late subscriber added mid-dispatch
  EXPECT_EQ(late, 0);
  ch.submit(Event(to_bytes("b")));
  EXPECT_EQ(late, 1);
}

TEST(EventChannel, UnsubscribeSelfDuringDispatchIsSafe) {
  EventChannel ch("test");
  int count = 0;
  SubscriberId id = 0;
  id = ch.subscribe([&](const Event&) {
    ++count;
    ch.unsubscribe(id);
  });
  ch.submit(Event(to_bytes("a")));
  ch.submit(Event(to_bytes("b")));
  EXPECT_EQ(count, 1);
}

TEST(EventChannel, SelfUnsubscribeKeepsSinkCapturesAlive) {
  // Regression: unsubscribe() erases the vector entry holding the very
  // std::function being executed. The dispatch must run a copy, or the
  // sink's captures are destroyed mid-call (heap-use-after-free under
  // ASan when the capture is heap-backed, like this string).
  EventChannel ch("test");
  auto tag = std::make_shared<std::string>("capture-must-survive");
  std::string observed;
  SubscriberId id = 0;
  id = ch.subscribe([&observed, tag, &ch, &id](const Event&) {
    ch.unsubscribe(id);
    observed = *tag;  // capture read AFTER the entry was erased
  });
  ch.submit(Event(to_bytes("a")));
  EXPECT_EQ(observed, "capture-must-survive");
  EXPECT_EQ(ch.subscriber_count(), 0u);
}

TEST(EventChannel, UnsubscribeOtherDuringDispatchSkipsIt) {
  EventChannel ch("test");
  int second = 0;
  SubscriberId victim = 0;
  ch.subscribe([&](const Event&) { ch.unsubscribe(victim); });
  victim = ch.subscribe([&](const Event&) { ++second; });
  ch.submit(Event(to_bytes("a")));
  // The first sink removed the second before its turn: never invoked.
  EXPECT_EQ(second, 0);
  EXPECT_EQ(ch.subscriber_count(), 1u);
}

TEST(EventChannel, SubscribersObserveEventsInSubmissionOrder) {
  EventChannel ch("test");
  constexpr int kSubs = 4;
  std::vector<std::vector<std::string>> seen(kSubs);
  for (int i = 0; i < kSubs; ++i) {
    ch.subscribe([&seen, i](const Event& e) {
      seen[i].emplace_back(e.payload.begin(), e.payload.end());
    });
  }
  const std::vector<std::string> events = {"a", "b", "c", "d", "e"};
  for (const auto& e : events) ch.submit(Event(to_bytes(e)));
  for (int i = 0; i < kSubs; ++i) EXPECT_EQ(seen[i], events);
}

TEST(EventChannel, ThrowingSubscriberDoesNotStarveOthers) {
  EventChannel ch("test");
  std::vector<std::string> first, third;
  ch.subscribe([&](const Event& e) {
    first.emplace_back(e.payload.begin(), e.payload.end());
  });
  ch.subscribe([](const Event&) -> void {
    throw std::runtime_error("subscriber bug");
  });
  ch.subscribe([&](const Event& e) {
    third.emplace_back(e.payload.begin(), e.payload.end());
  });

  // Both healthy subscribers see both events, in submission order; the
  // first failure per dispatch still surfaces to the producer.
  EXPECT_THROW(ch.submit(Event(to_bytes("a"))), std::runtime_error);
  EXPECT_THROW(ch.submit(Event(to_bytes("b"))), std::runtime_error);
  const std::vector<std::string> expected = {"a", "b"};
  EXPECT_EQ(first, expected);
  EXPECT_EQ(third, expected);
}

TEST(EventChannel, ControlPathReachesProducer) {
  EventChannel ch("test");
  AttributeMap seen;
  ch.on_control([&](const AttributeMap& attrs) { seen = attrs; });
  AttributeMap request;
  request.set_int("acex.method", 3);
  ch.signal_control(request);
  EXPECT_EQ(seen.get_int("acex.method"), 3);
}

TEST(EventChannel, EmptyNameOrSinkRejected) {
  EXPECT_THROW(EventChannel(""), ConfigError);
  EventChannel ch("ok");
  EXPECT_THROW(ch.subscribe(nullptr), ConfigError);
  EXPECT_THROW(ch.on_control(nullptr), ConfigError);
}

// --------------------------------------------------------------------- bus

TEST(EventBus, CreateFindAndUniqueNames) {
  EventBus bus;
  const ChannelId id = bus.create_channel("alpha");
  EXPECT_EQ(bus.find("alpha"), id);
  EXPECT_TRUE(bus.has("alpha"));
  EXPECT_THROW(bus.create_channel("alpha"), ConfigError);
  EXPECT_THROW(bus.find("beta"), ConfigError);
  EXPECT_THROW(bus.channel(999), ConfigError);
}

TEST(EventBus, DerivedChannelTransformsEvents) {
  EventBus bus;
  const ChannelId raw = bus.create_channel("raw");
  const ChannelId doubled = bus.derive_channel(
      raw,
      [](Event e) -> std::optional<Event> {
        e.payload.insert(e.payload.end(), e.payload.begin(), e.payload.end());
        return e;
      },
      "doubled");

  Bytes got;
  bus.channel(doubled).subscribe([&](const Event& e) { got = e.payload; });
  bus.channel(raw).submit(Event(to_bytes("ab")));
  EXPECT_EQ(to_string(got), "abab");
}

TEST(EventBus, DerivedHandlerCanFilter) {
  EventBus bus;
  const ChannelId raw = bus.create_channel("raw");
  const ChannelId filtered = bus.derive_channel(
      raw,
      [](Event e) -> std::optional<Event> {
        if (e.payload.size() < 3) return std::nullopt;
        return e;
      },
      "filtered");
  int delivered = 0;
  bus.channel(filtered).subscribe([&](const Event&) { ++delivered; });
  bus.channel(raw).submit(Event(to_bytes("xy")));     // dropped
  bus.channel(raw).submit(Event(to_bytes("xyz")));    // passes
  EXPECT_EQ(delivered, 1);
}

TEST(EventBus, DerivedControlPropagatesToSource) {
  // §3.2: consumers of the derived channel can still steer the producer.
  EventBus bus;
  const ChannelId raw = bus.create_channel("raw");
  const ChannelId derived =
      bus.derive_channel(raw, [](Event e) -> std::optional<Event> { return e; },
                         "derived");
  AttributeMap seen;
  bus.channel(raw).on_control([&](const AttributeMap& a) { seen = a; });
  AttributeMap req;
  req.set_int("m", 4);
  bus.channel(derived).signal_control(req);
  EXPECT_EQ(seen.get_int("m"), 4);
}

TEST(EventBus, ChainedDerivation) {
  EventBus bus;
  const ChannelId a = bus.create_channel("a");
  const auto add = [](char c) {
    return [c](Event e) -> std::optional<Event> {
      e.payload.push_back(static_cast<std::uint8_t>(c));
      return e;
    };
  };
  const ChannelId b = bus.derive_channel(a, add('b'), "b");
  const ChannelId c = bus.derive_channel(b, add('c'), "c");
  Bytes got;
  bus.channel(c).subscribe([&](const Event& e) { got = e.payload; });
  bus.channel(a).submit(Event(to_bytes("a")));
  EXPECT_EQ(to_string(got), "abc");
}

TEST(EventBus, RemoveDerivedChannelDetachesTap) {
  EventBus bus;
  const ChannelId raw = bus.create_channel("raw");
  const ChannelId derived = bus.derive_channel(
      raw, [](Event e) -> std::optional<Event> { return e; }, "derived");
  EXPECT_EQ(bus.channel(raw).subscriber_count(), 1u);
  bus.remove_channel(derived);
  EXPECT_EQ(bus.channel(raw).subscriber_count(), 0u);
  EXPECT_FALSE(bus.has("derived"));
  bus.channel(raw).submit(Event(to_bytes("x")));  // must not crash
}

TEST(EventBus, RemoveSourceBeforeDerivedIsSafe) {
  EventBus bus;
  const ChannelId raw = bus.create_channel("raw");
  const ChannelId derived = bus.derive_channel(
      raw, [](Event e) -> std::optional<Event> { return e; }, "derived");
  bus.remove_channel(raw);
  EXPECT_TRUE(bus.has("derived"));
  bus.remove_channel(derived);  // must not touch the dead source
}

TEST(EventBus, RemoveDerivedChannelDuringSourceDispatchIsSafe) {
  // Regression: a source subscriber removes the derived channel while the
  // source is mid-submit. The derivation tap runs AFTER the removal in the
  // same dispatch — it must notice the channel is gone (weak_ptr lock
  // fails) instead of submitting into a destroyed EventChannel.
  EventBus bus;
  const ChannelId raw = bus.create_channel("raw");
  int removed_then_delivered = 0;
  // Subscribed BEFORE the derivation tap, so it runs first in dispatch.
  bus.channel(raw).subscribe([&bus](const Event&) {
    if (bus.has("derived")) bus.remove_channel(bus.find("derived"));
  });
  const ChannelId derived = bus.derive_channel(
      raw, [](Event e) -> std::optional<Event> { return e; }, "derived");
  bus.channel(derived).subscribe(
      [&removed_then_delivered](const Event&) { ++removed_then_delivered; });

  bus.channel(raw).submit(Event(to_bytes("x")));  // must not crash
  EXPECT_EQ(removed_then_delivered, 0);
  EXPECT_FALSE(bus.has("derived"));
  bus.channel(raw).submit(Event(to_bytes("y")));  // tap now fully inert
}

TEST(EventBus, RemoveSourceDuringDerivedControlSignalIsSafe) {
  // Mirror hazard on the control path: a control sink on the SOURCE
  // removes the source while the derived channel's control tap is
  // forwarding a signal through it. The weak control tap must cope with
  // the source dying between dispatches too.
  EventBus bus;
  const ChannelId raw = bus.create_channel("raw");
  const ChannelId derived = bus.derive_channel(
      raw, [](Event e) -> std::optional<Event> { return e; }, "derived");
  int signals = 0;
  bus.channel(raw).on_control([&](const AttributeMap&) {
    ++signals;
    bus.remove_channel(raw);
  });
  AttributeMap attrs;
  attrs.set_int("x", 1);
  bus.channel(derived).signal_control(attrs);
  EXPECT_EQ(signals, 1);
  bus.channel(derived).signal_control(attrs);  // source gone: no-op
  EXPECT_EQ(signals, 1);
}

// ------------------------------------------------------------------ bridge

class BridgeTest : public ::testing::Test {
 protected:
  static netsim::LinkParams flat() {
    netsim::LinkParams p;
    p.bandwidth_Bps = 1e6;
    p.jitter_frac = 0;
    return p;
  }

  VirtualClock clock_;
  netsim::SimLink forward_{flat(), 1};
  netsim::SimLink reverse_{flat(), 2};
  transport::SimDuplex duplex_{forward_, reverse_, clock_};
};

TEST_F(BridgeTest, EventsFlowAcrossTransport) {
  EventChannel producer_side("remote");
  EventChannel consumer_side("local");
  ChannelSender sender(producer_side, duplex_.a());
  ChannelReceiver receiver(consumer_side, duplex_.b());

  std::vector<std::string> got;
  consumer_side.subscribe(
      [&](const Event& e) { got.push_back(to_string(e.payload)); });

  Event e1(to_bytes("first"));
  e1.attributes.set_int("seq", 1);
  producer_side.submit(e1);
  producer_side.submit(Event(to_bytes("second")));

  EXPECT_EQ(receiver.poll(), 2u);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "first");
  EXPECT_EQ(got[1], "second");
  EXPECT_EQ(sender.events_forwarded(), 2u);
  EXPECT_EQ(receiver.events_received(), 2u);
}

TEST_F(BridgeTest, AttributesSurviveTheWire) {
  EventChannel producer_side("remote");
  EventChannel consumer_side("local");
  ChannelSender sender(producer_side, duplex_.a());
  ChannelReceiver receiver(consumer_side, duplex_.b());

  AttributeMap seen;
  consumer_side.subscribe([&](const Event& e) { seen = e.attributes; });
  Event e(to_bytes("payload"));
  e.attributes.set_double("acex.accept_rate", 5.5);
  producer_side.submit(e);
  receiver.poll();
  EXPECT_EQ(seen.get_double("acex.accept_rate"), 5.5);
}

TEST_F(BridgeTest, ControlSignalsReachRemoteProducer) {
  EventChannel producer_side("remote");
  EventChannel consumer_side("local");
  ChannelSender sender(producer_side, duplex_.a());
  ChannelReceiver receiver(consumer_side, duplex_.b());

  AttributeMap at_producer;
  producer_side.on_control(
      [&](const AttributeMap& a) { at_producer = a; });

  AttributeMap request;
  request.set_int("acex.method", 4);
  receiver.signal_control(request);
  EXPECT_EQ(sender.pump_control(), 1u);
  EXPECT_EQ(at_producer.get_int("acex.method"), 4);
}

TEST_F(BridgeTest, PollRespectsMaxEvents) {
  EventChannel producer_side("remote");
  EventChannel consumer_side("local");
  ChannelSender sender(producer_side, duplex_.a());
  ChannelReceiver receiver(consumer_side, duplex_.b());
  for (int i = 0; i < 5; ++i) producer_side.submit(Event(to_bytes("e")));
  EXPECT_EQ(receiver.poll(2), 2u);
  EXPECT_EQ(receiver.poll(), 3u);
}

TEST_F(BridgeTest, SenderDetachesOnDestruction) {
  EventChannel producer_side("remote");
  {
    ChannelSender sender(producer_side, duplex_.a());
    EXPECT_EQ(producer_side.subscriber_count(), 1u);
  }
  EXPECT_EQ(producer_side.subscriber_count(), 0u);
}

}  // namespace
}  // namespace acex::echo
