// End-to-end fault-tolerance suite: FaultInjectingTransport semantics, the
// receiver recovery policies (kThrow / kSkip / kNack), sender-side codec
// degradation with the circuit breaker, and the NACK/retransmit round trip
// — including the headline acceptance scenarios from DESIGN.md §6 (2%
// bit flips + 1% drops on a 200-block stream).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "adaptive/pipeline.hpp"
#include "adaptive/telemetry.hpp"
#include "compress/frame.hpp"
#include "compress/null_codec.hpp"
#include "echo/bridge.hpp"
#include "netsim/link.hpp"
#include "testdata.hpp"
#include "transport/fault_transport.hpp"
#include "transport/retransmit.hpp"
#include "transport/sim_transport.hpp"
#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex {
namespace {

netsim::LinkParams flat_link(double bps) {
  netsim::LinkParams p;
  p.bandwidth_Bps = bps;
  p.jitter_frac = 0;
  p.latency_s = 0;
  return p;
}

/// Always-throwing codec: what a buggy or resource-starved method looks
/// like to the sender. Registered under kBurrowsWheeler in breaker tests.
class ThrowingCodec final : public Codec {
 public:
  MethodId id() const noexcept override { return MethodId::kBurrowsWheeler; }
  Bytes compress(ByteView) override { throw DecodeError("codec exploded"); }
  Bytes decompress(ByteView) override { throw DecodeError("codec exploded"); }
};

/// "Compressor" that expands every input — the other degradation trigger.
class ExpandingCodec final : public Codec {
 public:
  MethodId id() const noexcept override { return MethodId::kBurrowsWheeler; }
  Bytes compress(ByteView input) override {
    Bytes out(input.begin(), input.end());
    out.resize(out.size() + 4096, 0xEE);
    return out;
  }
  Bytes decompress(ByteView input) override {
    if (input.size() < 4096) throw DecodeError("short expanded payload");
    return Bytes(input.begin(), input.end() - 4096);
  }
};

class FaultTest : public ::testing::Test {
 protected:
  void wire(double bps = 1e6) {
    forward_.emplace(flat_link(bps), 1);
    reverse_.emplace(flat_link(1e9), 2);
    duplex_.emplace(*forward_, *reverse_, clock_);
  }

  static adaptive::AdaptiveConfig small_blocks() {
    adaptive::AdaptiveConfig config;
    config.async_sampling = false;  // deterministic
    config.decision.block_size = 4096;
    config.decision.sample_size = 1024;
    return config;
  }

  VirtualClock clock_;
  std::optional<netsim::SimLink> forward_, reverse_;
  std::optional<transport::SimDuplex> duplex_;
};

// ------------------------------------------- FaultInjectingTransport

TEST_F(FaultTest, DropSwallowsEveryMessage) {
  wire();
  transport::FaultConfig faults;
  faults.drop_prob = 1.0;
  transport::FaultInjectingTransport lossy(duplex_->a(), faults);
  for (int i = 0; i < 5; ++i) lossy.send(Bytes{1, 2, 3});
  lossy.flush();
  EXPECT_FALSE(duplex_->b().receive().has_value());
  EXPECT_EQ(lossy.counters().messages, 5u);
  EXPECT_EQ(lossy.counters().drops, 5u);
}

TEST_F(FaultTest, ReorderSwapsAdjacentMessages) {
  wire();
  transport::FaultConfig faults;
  faults.reorder_prob = 1.0;
  transport::FaultInjectingTransport lossy(duplex_->a(), faults);
  lossy.send(Bytes{0});  // held back
  lossy.send(Bytes{1});  // delivered, then releases the held one
  lossy.send(Bytes{2});  // held again
  lossy.flush();         // stream over: the straggler comes out

  std::vector<Bytes> got;
  while (auto m = duplex_->b().receive()) got.push_back(*m);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], Bytes{1});
  EXPECT_EQ(got[1], Bytes{0});
  EXPECT_EQ(got[2], Bytes{2});
  EXPECT_EQ(lossy.counters().reorders, 2u);
  EXPECT_EQ(lossy.counters().clean, 1u);
}

TEST_F(FaultTest, DuplicateDeliversTwice) {
  wire();
  transport::FaultConfig faults;
  faults.duplicate_prob = 1.0;
  transport::FaultInjectingTransport lossy(duplex_->a(), faults);
  lossy.send(Bytes{7, 7});
  std::size_t copies = 0;
  while (auto m = duplex_->b().receive()) {
    EXPECT_EQ(*m, (Bytes{7, 7}));
    ++copies;
  }
  EXPECT_EQ(copies, 2u);
  EXPECT_EQ(lossy.counters().duplicates, 1u);
}

TEST_F(FaultTest, CountersAlwaysReconcile) {
  wire();
  transport::FaultConfig faults;
  faults.drop_prob = 0.1;
  faults.reorder_prob = 0.1;
  faults.duplicate_prob = 0.1;
  faults.bit_flip_prob = 0.1;
  faults.truncate_prob = 0.1;
  faults.seed = 99;
  transport::FaultInjectingTransport lossy(duplex_->a(), faults);
  for (int i = 0; i < 200; ++i) lossy.send(Bytes(32, 0x5C));
  lossy.flush();
  const transport::FaultCounters& c = lossy.counters();
  EXPECT_EQ(c.messages, 200u);
  EXPECT_EQ(c.messages, c.drops + c.reorders + c.duplicates + c.bit_flips +
                            c.truncations + c.clean);
  EXPECT_GT(c.drops, 0u);  // at these rates, every class fires
  EXPECT_GT(c.bit_flips, 0u);
}

TEST_F(FaultTest, SetConfigHealsTheLink) {
  wire();
  transport::FaultConfig faults;
  faults.drop_prob = 1.0;
  transport::FaultInjectingTransport lossy(duplex_->a(), faults);
  lossy.send(Bytes{1});
  EXPECT_FALSE(duplex_->b().receive().has_value());
  lossy.set_config({});  // heal before a retransmit round
  lossy.send(Bytes{2});
  EXPECT_EQ(duplex_->b().receive(), (Bytes{2}));
}

// ------------------------------------------------------ RetransmitRing

TEST(RetransmitRing, EvictsOldestWhenFull) {
  transport::RetransmitRing ring(2, 3);
  ring.store(0, Bytes{0});
  ring.store(1, Bytes{1});
  ring.store(2, Bytes{2});  // evicts sequence 0
  EXPECT_EQ(ring.replay(0), nullptr);
  ASSERT_NE(ring.replay(1), nullptr);
  ASSERT_NE(ring.replay(2), nullptr);
  EXPECT_EQ(ring.evictions(), 1u);
  EXPECT_EQ(ring.refusals(), 1u);
}

TEST(RetransmitRing, CapsRetriesPerSequence) {
  transport::RetransmitRing ring(4, 2);
  ring.store(5, Bytes{5});
  EXPECT_NE(ring.replay(5), nullptr);
  EXPECT_NE(ring.replay(5), nullptr);
  EXPECT_EQ(ring.replay(5), nullptr);  // out of retry budget
  EXPECT_EQ(ring.replays(), 2u);
  EXPECT_EQ(ring.refusals(), 1u);
}

TEST(RetransmitRing, RejectsDegenerateConfig) {
  EXPECT_THROW(transport::RetransmitRing(0, 3), ConfigError);
  EXPECT_THROW(transport::RetransmitRing(4, 0), ConfigError);
}

TEST(RetransmitRing, EvictsOnBytePressure) {
  // Slot budget is generous; the 250-byte envelope is what binds. Three
  // 100-byte frames exceed it, so storing the third evicts the oldest.
  transport::RetransmitRing ring(64, 3, 250);
  ring.store(0, Bytes(100, 0xA0));
  ring.store(1, Bytes(100, 0xA1));
  EXPECT_EQ(ring.bytes(), 200u);
  ring.store(2, Bytes(100, 0xA2));
  EXPECT_EQ(ring.replay(0), nullptr);
  ASSERT_NE(ring.replay(1), nullptr);
  ASSERT_NE(ring.replay(2), nullptr);
  EXPECT_EQ(ring.bytes(), 200u);
  EXPECT_EQ(ring.evictions(), 1u);
}

TEST(RetransmitRing, ByteBudgetNeverEvictsTheNewestFrame) {
  // One frame alone may exceed the budget: it must still be retained
  // (evicting the frame just stored would make every store a no-op).
  transport::RetransmitRing ring(8, 3, 50);
  ring.store(0, Bytes(200, 0xB0));
  ASSERT_NE(ring.replay(0), nullptr);
  EXPECT_EQ(ring.bytes(), 200u);
  ring.store(1, Bytes(10, 0xB1));  // now the oversized one goes
  EXPECT_EQ(ring.replay(0), nullptr);
  ASSERT_NE(ring.replay(1), nullptr);
  EXPECT_EQ(ring.bytes(), 10u);
}

TEST(RetransmitRing, PeekDoesNotConsumeRetryBudget) {
  transport::RetransmitRing ring(4, 1);
  ring.store(7, Bytes{7, 7});
  for (int i = 0; i < 5; ++i) {
    ASSERT_NE(ring.peek(7), nullptr);  // resume replay: no retry accounting
  }
  EXPECT_EQ(*ring.peek(7), (Bytes{7, 7}));
  EXPECT_NE(ring.replay(7), nullptr);   // the single NACK retry still there
  EXPECT_EQ(ring.replay(7), nullptr);   // ...and now spent
  EXPECT_NE(ring.peek(7), nullptr);     // resume is not bound by that budget
  EXPECT_EQ(ring.peek(99), nullptr);    // unknown sequences stay unknown
  ring.store(8, Bytes(1, 8));
  ring.store(9, Bytes(1, 9));
  ring.store(10, Bytes(1, 10));
  ring.store(11, Bytes(1, 11));  // capacity 4: sequence 7 evicted
  EXPECT_EQ(ring.peek(7), nullptr);  // peek does honour real eviction
}

// ------------------------------------------------- receiver policies

TEST_F(FaultTest, ThrowPolicyKeepsSeedBehaviour) {
  wire();
  NullCodec null;
  duplex_->a().send(frame_compress_seq(null, Bytes{1, 2, 3}, 0));
  Bytes bad = frame_compress_seq(null, Bytes{4, 5, 6}, 1);
  bad[bad.size() / 2] ^= 0x01;
  duplex_->a().send(bad);
  adaptive::AdaptiveReceiver rx(duplex_->b());  // default policy: kThrow
  EXPECT_THROW(rx.receive_available(), DecodeError);
}

TEST_F(FaultTest, SkipPolicyQuarantinesAndReportsGaps) {
  wire();
  NullCodec null;
  std::vector<Bytes> blocks;
  for (std::uint64_t seq = 0; seq < 6; ++seq) {
    blocks.push_back(testdata::low_entropy(500 + seq * 11, seq));
    Bytes framed = frame_compress_seq(null, blocks.back(), seq);
    if (seq == 2 || seq == 4) framed[framed.size() - 2] ^= 0xFF;  // CRC area
    duplex_->a().send(framed);
  }
  adaptive::AdaptiveReceiver rx(duplex_->b(),
                                {adaptive::RecoveryPolicy::kSkip, 3});
  const adaptive::ReceiveReport report = rx.receive_report();
  EXPECT_EQ(report.frames_ok, 4u);
  EXPECT_EQ(report.frames_corrupt, 2u);
  EXPECT_EQ(report.gaps, (std::vector<std::uint64_t>{2, 4}));

  Bytes expected;
  for (const std::uint64_t seq : {0, 1, 3, 5}) {
    expected.insert(expected.end(), blocks[seq].begin(), blocks[seq].end());
  }
  EXPECT_EQ(report.data, expected);
  EXPECT_EQ(report.bytes_recovered, expected.size());
  EXPECT_EQ(rx.frames_corrupt(), 2u);
}

TEST_F(FaultTest, SkipPolicyDropsDuplicatesAndSortsReorders) {
  wire();
  NullCodec null;
  const Bytes b0 = testdata::low_entropy(400, 1);
  const Bytes b1 = testdata::low_entropy(400, 2);
  duplex_->a().send(frame_compress_seq(null, b1, 1));  // reordered
  duplex_->a().send(frame_compress_seq(null, b0, 0));
  duplex_->a().send(frame_compress_seq(null, b0, 0));  // duplicate
  adaptive::AdaptiveReceiver rx(duplex_->b(),
                                {adaptive::RecoveryPolicy::kSkip, 3});
  const adaptive::ReceiveReport report = rx.receive_report();
  EXPECT_EQ(report.frames_ok, 2u);
  EXPECT_EQ(report.frames_duplicate, 1u);
  EXPECT_TRUE(report.gaps.empty());
  Bytes expected = b0;
  expected.insert(expected.end(), b1.begin(), b1.end());
  EXPECT_EQ(report.data, expected);  // sequence order, not arrival order
}

TEST_F(FaultTest, ReceiverClampsSequencesOutsideTheGapWindow) {
  wire();
  NullCodec null;
  duplex_->a().send(frame_compress_seq(null, Bytes{1}, 0));
  // A corrupt sequence varint that happens to pass the 1-byte header
  // checksum: before the gap-window clamp, folding UINT64_MAX into
  // max_seen_ made the gap scan loop forever (and any huge value made it
  // allocate an astronomical gap list).
  duplex_->a().send(frame_compress_seq(null, Bytes{2}, UINT64_MAX));
  duplex_->a().send(frame_compress_seq(null, Bytes{3}, (1ull << 60)));
  duplex_->a().send(frame_compress_seq(null, Bytes{4}, 1));
  adaptive::AdaptiveReceiver rx(duplex_->b(),
                                {adaptive::RecoveryPolicy::kNack, 3});
  const adaptive::ReceiveReport report = rx.receive_report();
  EXPECT_EQ(report.frames_ok, 2u);       // sequences 0 and 1
  EXPECT_EQ(report.frames_corrupt, 2u);  // both forged headers quarantined
  EXPECT_TRUE(report.gaps.empty());
  EXPECT_TRUE(rx.take_nacks().empty());
  for (const adaptive::FrameOutcome& f : report.frames) {
    if (f.status == adaptive::FrameOutcome::Status::kCorrupt) {
      EXPECT_FALSE(f.has_sequence);  // a rejected sequence is not reported
    }
  }
}

TEST_F(FaultTest, ReceiverRejectsZeroGapWindow) {
  wire();
  EXPECT_THROW(adaptive::AdaptiveReceiver(
                   duplex_->b(), {adaptive::RecoveryPolicy::kSkip, 3, 0}),
               ConfigError);
}

TEST_F(FaultTest, NackPolicyRespectsRetryCap) {
  wire();
  NullCodec null;
  duplex_->a().send(frame_compress_seq(null, Bytes{1}, 0));
  duplex_->a().send(frame_compress_seq(null, Bytes{3}, 2));  // 1 missing
  adaptive::AdaptiveReceiver rx(duplex_->b(),
                                {adaptive::RecoveryPolicy::kNack, 2});
  (void)rx.receive_report();
  EXPECT_EQ(rx.take_nacks(), (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(rx.take_nacks(), (std::vector<std::uint64_t>{1}));
  EXPECT_TRUE(rx.take_nacks().empty());  // cap reached: given up
  EXPECT_EQ(rx.nacks_abandoned(), 1u);
}

// ------------------------------------- sender degradation + breaker

TEST_F(FaultTest, CircuitBreakerQuarantinesAFailingMethod) {
  wire(100e3);
  adaptive::AdaptiveConfig config = small_blocks();
  config.target_rate_Bps = 1e12;  // force the ladder top: kBurrowsWheeler
  adaptive::AdaptiveSender sender(duplex_->a(), config);
  sender.registry().register_factory(
      MethodId::kBurrowsWheeler, [] { return CodecPtr(new ThrowingCodec); });
  adaptive::AdaptiveReceiver rx(duplex_->b(),
                                {adaptive::RecoveryPolicy::kSkip, 3});

  const Bytes data = testdata::repetitive_text(8 * 4096, 21);
  const adaptive::StreamReport report = sender.send_all(data);
  ASSERT_EQ(report.blocks.size(), 8u);

  // First three blocks: BW throws, the block ships raw, health declines.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(report.blocks[i].fallback) << "block " << i;
    EXPECT_EQ(report.blocks[i].method, MethodId::kNone);
    EXPECT_EQ(report.blocks[i].requested_method, MethodId::kBurrowsWheeler);
  }
  // Breaker open: the selector is demoted below BW and stops failing.
  for (std::size_t i = 3; i < 8; ++i) {
    EXPECT_FALSE(report.blocks[i].fallback) << "block " << i;
    EXPECT_NE(report.blocks[i].method, MethodId::kBurrowsWheeler);
  }
  const adaptive::DegradationStats& d = sender.degradation();
  EXPECT_EQ(d.codec_failures, 3u);
  EXPECT_EQ(d.fallbacks, 3u);
  EXPECT_EQ(d.quarantines, 1u);
  EXPECT_EQ(d.expansions, 0u);

  // Nothing about degradation is allowed to damage the stream itself.
  EXPECT_EQ(rx.receive_available(), data);
}

TEST_F(FaultTest, BreakerReTripsImmediatelyWhenTheProbeFails) {
  wire(100e3);
  adaptive::AdaptiveConfig config = small_blocks();
  config.target_rate_Bps = 1e12;  // keep the selector on kBurrowsWheeler
  config.breaker_failure_threshold = 2;
  config.breaker_cooldown_blocks = 2;
  adaptive::AdaptiveSender sender(duplex_->a(), config);
  sender.registry().register_factory(
      MethodId::kBurrowsWheeler, [] { return CodecPtr(new ThrowingCodec); });
  adaptive::AdaptiveReceiver rx(duplex_->b(),
                                {adaptive::RecoveryPolicy::kSkip, 3});

  const Bytes data = testdata::repetitive_text(12 * 4096, 23);
  const adaptive::StreamReport report = sender.send_all(data);
  ASSERT_EQ(report.blocks.size(), 12u);

  const adaptive::DegradationStats& d = sender.degradation();
  // Opening costs `threshold` consecutive failures; after that the method
  // is on probation, so each half-open probe that fails re-trips on ONE
  // failure instead of accumulating a fresh streak.
  EXPECT_GE(d.quarantines, 3u);
  EXPECT_EQ(d.codec_failures,
            static_cast<std::uint64_t>(config.breaker_failure_threshold) +
                (d.quarantines - 1));
  // Degradation never corrupts the stream.
  EXPECT_EQ(rx.receive_available(), data);
}

TEST_F(FaultTest, BreakerClosesWhenTheProbeSucceeds) {
  // Fails the first `threshold` compress calls, then delegates to the real
  // codec: the breaker must re-admit the method after one successful
  // half-open probe, and the receiver (which knows nothing of the flake)
  // keeps decoding standard frames.
  class FlakyCodec final : public Codec {
   public:
    explicit FlakyCodec(int* failures_left)
        : failures_left_(failures_left),
          inner_(make_codec(MethodId::kBurrowsWheeler)) {}
    MethodId id() const noexcept override {
      return MethodId::kBurrowsWheeler;
    }
    Bytes compress(ByteView input) override {
      if (*failures_left_ > 0) {
        --*failures_left_;
        throw DecodeError("codec warming up");
      }
      return inner_->compress(input);
    }
    Bytes decompress(ByteView input) override {
      return inner_->decompress(input);
    }

   private:
    int* failures_left_;
    CodecPtr inner_;
  };

  wire(100e3);
  adaptive::AdaptiveConfig config = small_blocks();
  config.target_rate_Bps = 1e12;
  config.breaker_failure_threshold = 2;
  config.breaker_cooldown_blocks = 2;
  adaptive::AdaptiveSender sender(duplex_->a(), config);
  static int failures_left = 0;
  failures_left = 2;
  sender.registry().register_factory(MethodId::kBurrowsWheeler, [] {
    return CodecPtr(new FlakyCodec(&failures_left));
  });
  adaptive::AdaptiveReceiver rx(duplex_->b(),
                                {adaptive::RecoveryPolicy::kSkip, 3});

  const Bytes data = testdata::repetitive_text(10 * 4096, 24);
  const adaptive::StreamReport report = sender.send_all(data);
  ASSERT_EQ(report.blocks.size(), 10u);

  const adaptive::DegradationStats& d = sender.degradation();
  EXPECT_EQ(d.quarantines, 1u);   // opened once, never re-tripped
  EXPECT_EQ(d.codec_failures, 2u);
  // After the successful probe the method is fully re-admitted.
  bool bw_after_probe = false;
  for (std::size_t i = 4; i < report.blocks.size(); ++i) {
    if (report.blocks[i].method == MethodId::kBurrowsWheeler) {
      bw_after_probe = true;
      EXPECT_FALSE(report.blocks[i].fallback);
    }
  }
  EXPECT_TRUE(bw_after_probe);
  EXPECT_EQ(rx.receive_available(), data);
}

TEST_F(FaultTest, ExpandingCodecFallsBackToNull) {
  wire(100e3);
  adaptive::AdaptiveConfig config = small_blocks();
  config.target_rate_Bps = 1e12;
  adaptive::AdaptiveSender sender(duplex_->a(), config);
  sender.registry().register_factory(
      MethodId::kBurrowsWheeler, [] { return CodecPtr(new ExpandingCodec); });
  adaptive::AdaptiveReceiver rx(duplex_->b(),
                                {adaptive::RecoveryPolicy::kSkip, 3});

  const Bytes data = testdata::random_bytes(2 * 4096, 22);
  const adaptive::StreamReport report = sender.send_all(data);
  ASSERT_GE(report.blocks.size(), 2u);
  EXPECT_TRUE(report.blocks[0].fallback);
  EXPECT_EQ(report.blocks[0].method, MethodId::kNone);
  // The wire never carries the expanded payload.
  EXPECT_LE(report.blocks[0].wire_size,
            4096 + frame_overhead_seq(4096, report.blocks[0].index));
  EXPECT_GE(sender.degradation().expansions, 1u);
  EXPECT_EQ(sender.degradation().codec_failures, 0u);
  EXPECT_EQ(rx.receive_available(), data);
}

TEST_F(FaultTest, FixedBaselinesNeverDegrade) {
  wire();
  adaptive::AdaptiveSender sender(duplex_->a(), small_blocks());
  sender.registry().register_factory(
      MethodId::kBurrowsWheeler, [] { return CodecPtr(new ThrowingCodec); });
  // The paper's always-BW baseline must stay BW — surfacing the failure,
  // not silently switching methods under the experiment.
  EXPECT_THROW(
      sender.send_block_fixed(testdata::low_entropy(1024, 23),
                              MethodId::kBurrowsWheeler),
      DecodeError);
  EXPECT_EQ(sender.degradation().fallbacks, 0u);
}

TEST_F(FaultTest, PipelinedSendDegradesSafely) {
  wire(100e3);
  adaptive::AdaptiveConfig config = small_blocks();
  config.target_rate_Bps = 1e12;
  adaptive::AdaptiveSender sender(duplex_->a(), config);
  sender.registry().register_factory(
      MethodId::kBurrowsWheeler, [] { return CodecPtr(new ThrowingCodec); });
  adaptive::AdaptiveReceiver rx(duplex_->b(),
                                {adaptive::RecoveryPolicy::kSkip, 3});

  const Bytes data = testdata::repetitive_text(8 * 4096, 24);
  const adaptive::StreamReport report = sender.send_all_pipelined(data);
  ASSERT_EQ(report.blocks.size(), 8u);
  EXPECT_GE(sender.degradation().codec_failures, 3u);
  EXPECT_GE(sender.degradation().quarantines, 1u);
  EXPECT_EQ(rx.receive_available(), data);
}

TEST(Telemetry, FallbacksSurfaceToTheAggregator) {
  echo::EventChannel channel("telemetry");
  adaptive::TelemetryPublisher publisher(channel);
  adaptive::TelemetryAggregator aggregator;
  std::optional<echo::Event> last;
  channel.subscribe([&](const echo::Event& event) {
    aggregator.observe(event);
    last = event;
  });

  adaptive::BlockReport degraded;
  degraded.method = MethodId::kNone;
  degraded.requested_method = MethodId::kBurrowsWheeler;
  degraded.fallback = true;
  publisher.publish(degraded);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->attributes.get_int("acex.t.fallback"), 1);
  EXPECT_EQ(last->attributes.get_string("acex.t.requested"),
            "burrows-wheeler");

  publisher.publish(adaptive::BlockReport{});
  EXPECT_EQ(aggregator.blocks(), 2u);
  EXPECT_EQ(aggregator.fallbacks(), 1u);
}

// ------------------------------------------- acceptance scenarios (§6)

TEST_F(FaultTest, SkipRecoversAlmostEverythingUnderFlipsAndDrops) {
  wire();
  transport::FaultConfig faults;
  faults.bit_flip_prob = 0.02;
  faults.drop_prob = 0.01;
  faults.seed = 7;
  transport::FaultInjectingTransport lossy(duplex_->a(), faults);

  adaptive::AdaptiveSender sender(lossy, small_blocks());
  adaptive::AdaptiveReceiver rx(duplex_->b(),
                                {adaptive::RecoveryPolicy::kSkip, 3});

  constexpr std::size_t kBlocks = 200, kBlockSize = 4096;
  const Bytes data = testdata::repetitive_text(kBlocks * kBlockSize, 31);
  const adaptive::StreamReport stream = sender.send_all(data);
  ASSERT_EQ(stream.blocks.size(), kBlocks);
  lossy.flush();

  const adaptive::ReceiveReport report = rx.receive_report();  // never throws
  const transport::FaultCounters& c = lossy.counters();
  EXPECT_EQ(c.messages, kBlocks);
  EXPECT_GT(c.bit_flips + c.drops, 0u);

  // Every frame that decoded must reproduce its exact slice of the input.
  std::size_t intact_bytes = 0;
  for (const adaptive::FrameOutcome& f : report.frames) {
    if (f.status != adaptive::FrameOutcome::Status::kOk) continue;
    ASSERT_TRUE(f.has_sequence);
    const ByteView slice = ByteView(data).subspan(
        static_cast<std::size_t>(f.sequence) * kBlockSize, kBlockSize);
    EXPECT_EQ(f.data, Bytes(slice.begin(), slice.end()))
        << "seq " << f.sequence;
    intact_bytes += f.data.size();
  }
  EXPECT_EQ(report.bytes_recovered, intact_bytes);
  // The headline number: >= 95% of the payload survives a 2%/1% hostile
  // link with no NACK round and zero crashes.
  EXPECT_GE(report.bytes_recovered,
            static_cast<std::size_t>(0.95 * static_cast<double>(data.size())));
  // Gap accounting stays consistent: gaps and intact frames never overlap
  // and never name sequences outside the stream.
  EXPECT_LE(report.gaps.size() + report.frames_ok, kBlocks);
  for (const std::uint64_t gap : report.gaps) EXPECT_LT(gap, kBlocks);
}

TEST_F(FaultTest, NackRecoversEveryBlockWithinRetryCap) {
  wire();
  transport::FaultConfig faults;
  faults.bit_flip_prob = 0.02;
  faults.drop_prob = 0.01;
  faults.seed = 11;
  transport::FaultInjectingTransport lossy(duplex_->a(), faults);

  adaptive::AdaptiveConfig config = small_blocks();
  config.retransmit_capacity = 256;  // keep every frame replayable
  config.retransmit_max_retries = 4;
  adaptive::AdaptiveSender sender(lossy, config);
  adaptive::AdaptiveReceiver rx(duplex_->b(),
                                {adaptive::RecoveryPolicy::kNack, 3});

  constexpr std::size_t kBlocks = 200, kBlockSize = 4096;
  const Bytes data = testdata::repetitive_text(kBlocks * kBlockSize, 32);
  ASSERT_EQ(sender.send_all(data).blocks.size(), kBlocks);
  lossy.flush();

  std::map<std::uint64_t, Bytes> recovered;
  const auto absorb = [&](const adaptive::ReceiveReport& report) {
    for (const adaptive::FrameOutcome& f : report.frames) {
      if (f.status == adaptive::FrameOutcome::Status::kOk) {
        recovered.emplace(f.sequence, f.data);
      }
    }
  };
  absorb(rx.receive_report());

  // The NACK loop: faults stay ON — retransmits run the same gauntlet.
  for (int round = 0; round < 8; ++round) {
    const std::vector<std::uint64_t> nacks = rx.take_nacks();
    if (nacks.empty()) break;
    sender.retransmit(nacks);
    lossy.flush();
    absorb(rx.receive_report());
  }

  ASSERT_EQ(recovered.size(), kBlocks);  // 100% of blocks, within the caps
  EXPECT_EQ(rx.nacks_abandoned(), 0u);
  EXPECT_GT(sender.degradation().retransmits, 0u);
  Bytes reassembled;
  for (const auto& [seq, block] : recovered) {
    reassembled.insert(reassembled.end(), block.begin(), block.end());
  }
  EXPECT_EQ(reassembled, data);
}

TEST_F(FaultTest, NackReplayInterleavedWithFreshTrafficConverges) {
  // The concurrent-recovery corner: retransmitted frames are queued while
  // later batches of fresh, higher-sequence frames enter the same faulty
  // pipe (no flush between them), so replays and new traffic interleave —
  // and the replays run the fault gauntlet again. The receiver must keep
  // ordering straight and still converge to 100% recovery within the caps.
  wire();
  transport::FaultConfig faults;
  faults.drop_prob = 0.08;
  faults.reorder_prob = 0.1;
  faults.bit_flip_prob = 0.02;
  faults.seed = 51;
  transport::FaultInjectingTransport lossy(duplex_->a(), faults);

  adaptive::AdaptiveConfig config = small_blocks();
  config.retransmit_capacity = 512;
  config.retransmit_max_retries = 6;
  adaptive::AdaptiveSender sender(lossy, config);
  adaptive::AdaptiveReceiver rx(duplex_->b(),
                                {adaptive::RecoveryPolicy::kNack, 5});

  constexpr std::size_t kBatches = 6, kBlocksPerBatch = 24, kBlockSize = 4096;
  Bytes everything;
  std::map<std::uint64_t, Bytes> recovered;
  const auto absorb = [&](const adaptive::ReceiveReport& report) {
    for (const adaptive::FrameOutcome& f : report.frames) {
      if (f.status == adaptive::FrameOutcome::Status::kOk) {
        recovered.emplace(f.sequence, f.data);
      }
    }
  };

  bool replayed_midstream = false;
  for (std::size_t batch = 0; batch < kBatches; ++batch) {
    const Bytes data =
        testdata::repetitive_text(kBlocksPerBatch * kBlockSize, 60 + batch);
    everything.insert(everything.end(), data.begin(), data.end());
    ASSERT_EQ(sender.send_all(data).blocks.size(), kBlocksPerBatch);
    lossy.flush();
    absorb(rx.receive_report());
    const std::vector<std::uint64_t> nacks = rx.take_nacks();
    if (!nacks.empty()) {
      // Deliberately no flush here: these replays ride alongside the next
      // batch's fresh frames (reorder holds can interleave the two).
      sender.retransmit(nacks);
      if (batch + 1 < kBatches) replayed_midstream = true;
    }
  }
  EXPECT_TRUE(replayed_midstream);  // the corner actually got exercised

  // Drain: plain NACK rounds until the stream is whole.
  for (int round = 0; round < 12; ++round) {
    lossy.flush();
    absorb(rx.receive_report());
    const std::vector<std::uint64_t> nacks = rx.take_nacks();
    if (nacks.empty()) break;
    sender.retransmit(nacks);
  }

  ASSERT_EQ(recovered.size(), kBatches * kBlocksPerBatch);
  EXPECT_EQ(rx.nacks_abandoned(), 0u);
  EXPECT_GT(sender.degradation().retransmits, 0u);
  Bytes reassembled;
  for (const auto& [seq, block] : recovered) {
    reassembled.insert(reassembled.end(), block.begin(), block.end());
  }
  EXPECT_EQ(reassembled, everything);
}

// --------------------------------------------------- echo bridge NACKs

TEST_F(FaultTest, BridgeNackRoundTripRedeliversLostEvents) {
  wire();
  transport::FaultConfig faults;
  faults.drop_prob = 0.25;
  faults.duplicate_prob = 0.25;
  faults.seed = 5;
  transport::FaultInjectingTransport lossy(duplex_->a(), faults);

  echo::EventChannel producer("remote"), consumer("local");
  echo::ChannelSender sender(producer, lossy, /*ring_capacity=*/64,
                             /*max_retries=*/3);
  echo::ChannelReceiver receiver(consumer, duplex_->b(), /*nack_retry_cap=*/3);

  std::vector<std::string> got;
  consumer.subscribe([&](const echo::Event& event) {
    got.emplace_back(event.payload.begin(), event.payload.end());
  });

  constexpr int kEvents = 20;
  for (int i = 0; i < kEvents; ++i) {
    const std::string text = "event-" + std::to_string(i);
    producer.submit(echo::Event(Bytes(text.begin(), text.end())));
  }
  lossy.flush();
  receiver.poll();
  EXPECT_LT(got.size(), static_cast<std::size_t>(kEvents));  // losses happened

  lossy.set_config({});  // link heals; NACK rounds run clean
  for (int round = 0; round < 4 && receiver.signal_nacks() > 0; ++round) {
    sender.pump_control();  // services the NACK from the retransmit ring
    receiver.poll();
  }

  ASSERT_EQ(got.size(), static_cast<std::size_t>(kEvents));
  std::sort(got.begin(), got.end());
  EXPECT_EQ(std::unique(got.begin(), got.end()), got.end());  // exactly once
  EXPECT_TRUE(receiver.missing().empty());
  EXPECT_GT(sender.events_retransmitted(), 0u);
  EXPECT_GT(receiver.nacks_signalled(), 0u);
  // Every duplicate the link emitted was recognised and dropped.
  EXPECT_GE(lossy.counters().duplicates, 1u);
  EXPECT_GE(receiver.duplicates_dropped(), 1u);
}

TEST_F(FaultTest, BridgeAbandonsEventsPastTheRetryCap) {
  wire();
  echo::EventChannel producer("remote"), consumer("local");
  // Ring of 1: forwarding a second event evicts the first, so a NACK for
  // it can never be honoured.
  echo::ChannelSender sender(producer, duplex_->a(), /*ring_capacity=*/1,
                             /*max_retries=*/3);
  echo::ChannelReceiver receiver(consumer, duplex_->b(), /*nack_retry_cap=*/2);

  producer.submit(echo::Event(Bytes{1}));
  (void)duplex_->b().receive();  // event 0 vanishes in transit
  producer.submit(echo::Event(Bytes{2}));
  receiver.poll();
  EXPECT_EQ(receiver.missing(), (std::vector<std::uint64_t>{0}));

  EXPECT_EQ(receiver.signal_nacks(), 1u);
  sender.pump_control();
  receiver.poll();
  EXPECT_EQ(receiver.signal_nacks(), 1u);  // second (and last) attempt
  sender.pump_control();
  receiver.poll();
  EXPECT_EQ(receiver.signal_nacks(), 0u);  // cap reached: lost for good
  EXPECT_GE(sender.nacks_refused(), 1u);

  // Abandonment settles the sequence: the delivery cursor skips it, so
  // later traffic keeps flowing instead of wedging against the dead gap.
  EXPECT_EQ(receiver.events_abandoned(), 1u);
  EXPECT_TRUE(receiver.missing().empty());
  producer.submit(echo::Event(Bytes{3}));  // seq 2
  receiver.poll();
  EXPECT_EQ(receiver.events_received(), 2u);  // seq 1 and seq 2 delivered
  EXPECT_TRUE(receiver.missing().empty());
}

TEST_F(FaultTest, BridgeIgnoresCorruptSequenceHeaders) {
  wire();
  echo::EventChannel producer("remote"), consumer("local");
  echo::ChannelSender sender(producer, duplex_->a());
  echo::ChannelReceiver receiver(consumer, duplex_->b());

  producer.submit(echo::Event(Bytes{1}));  // seq 0

  // A flipped continuation bit in the sequence varint yields a huge value.
  // Variant 1: the body after the (mis-)parsed varint fails to deserialize.
  Bytes forged_bad_body;
  forged_bad_body.push_back(2);  // kMsgEventSeq
  put_varint(forged_bad_body, (1ull << 59));
  forged_bad_body.push_back(0xFF);
  duplex_->a().send(forged_bad_body);
  // Variant 2: the body deserializes fine, but the sequence is implausibly
  // far ahead of the delivery cursor — rejected by the gap-window clamp.
  Bytes forged_good_body;
  forged_good_body.push_back(2);
  put_varint(forged_good_body, UINT64_MAX);
  const Bytes body = echo::serialize_event(echo::Event(Bytes{9}));
  forged_good_body.insert(forged_good_body.end(), body.begin(), body.end());
  duplex_->a().send(forged_good_body);

  producer.submit(echo::Event(Bytes{2}));  // seq 1

  receiver.poll();
  EXPECT_EQ(receiver.events_received(), 2u);
  EXPECT_EQ(receiver.corrupt_dropped(), 2u);
  // Neither forged sequence may poison gap tracking: missing() stays empty
  // instead of enumerating billions of phantom sequences (or hanging).
  EXPECT_TRUE(receiver.missing().empty());
  EXPECT_EQ(receiver.signal_nacks(), 0u);
}

TEST_F(FaultTest, BridgeReceiverRejectsZeroGapWindow) {
  wire();
  echo::EventChannel consumer("local");
  EXPECT_THROW(echo::ChannelReceiver(consumer, duplex_->b(), 3, 0),
               ConfigError);
}

TEST_F(FaultTest, BridgeControlPumpSurvivesCorruptMessages) {
  wire();
  echo::EventChannel producer("remote"), consumer("local");
  echo::ChannelSender sender(producer, duplex_->a());
  echo::ChannelReceiver receiver(consumer, duplex_->b());

  std::vector<echo::AttributeMap> controls;
  producer.on_control(
      [&](const echo::AttributeMap& a) { controls.push_back(a); });

  duplex_->b().send(Bytes{});               // empty message
  duplex_->b().send(Bytes{1, 0xFF, 0xFF});  // kMsgControl + truncated varint
  echo::AttributeMap attrs;
  attrs.set_string("app.key", "value");
  receiver.signal_control(attrs);

  // Corruption on the control path must not kill the producer's pump loop:
  // the damaged messages are counted, the intact one still applies.
  std::size_t applied = 0;
  EXPECT_NO_THROW(applied = sender.pump_control());
  EXPECT_EQ(applied, 1u);
  EXPECT_EQ(sender.control_corrupt_dropped(), 2u);
  ASSERT_EQ(controls.size(), 1u);
  EXPECT_EQ(controls[0].get_string("app.key"), "value");
}

TEST_F(FaultTest, BridgeForwardsAppAttributesRidingWithANack) {
  wire();
  echo::EventChannel producer("remote"), consumer("local");
  echo::ChannelSender sender(producer, duplex_->a());
  echo::ChannelReceiver receiver(consumer, duplex_->b());

  std::vector<echo::AttributeMap> controls;
  producer.on_control(
      [&](const echo::AttributeMap& a) { controls.push_back(a); });

  producer.submit(echo::Event(Bytes{1}));  // seq 0, retained in the ring
  (void)duplex_->b().receive();            // ...but lost in transit
  producer.submit(echo::Event(Bytes{2}));  // seq 1
  receiver.poll();
  EXPECT_EQ(receiver.missing(), (std::vector<std::uint64_t>{0}));

  // One control message carrying both the NACK payload and an application
  // attribute: the NACK is serviced AND the attribute reaches the
  // producer's control sinks (minus the bridge-internal key).
  Bytes seqs;
  put_varint(seqs, 0);
  echo::AttributeMap attrs;
  attrs.set_bytes(echo::kNackAttr, seqs);
  attrs.set_string("app.key", "v");
  receiver.signal_control(attrs);

  EXPECT_EQ(sender.pump_control(), 1u);
  receiver.poll();
  EXPECT_TRUE(receiver.missing().empty());  // seq 0 replayed and delivered
  EXPECT_EQ(sender.events_retransmitted(), 1u);
  ASSERT_EQ(controls.size(), 1u);
  EXPECT_FALSE(controls[0].has(echo::kNackAttr));
  EXPECT_EQ(controls[0].get_string("app.key"), "v");
}

}  // namespace
}  // namespace acex
