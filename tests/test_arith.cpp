#include <gtest/gtest.h>

#include "compress/arith.hpp"
#include "compress/huffman.hpp"
#include "testdata.hpp"
#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex {
namespace {

// ------------------------------------------------------------------ model

TEST(AdaptiveModel, StartsUniform) {
  arith::AdaptiveByteModel m;
  EXPECT_EQ(m.total(), 256u);
  for (unsigned s = 0; s < 256; ++s) {
    EXPECT_EQ(m.freq(s), 1u);
    EXPECT_EQ(m.cum_below(s), s);
  }
}

TEST(AdaptiveModel, UpdateRaisesFrequency) {
  arith::AdaptiveByteModel m;
  const std::uint32_t before = m.freq('a');
  m.update('a');
  EXPECT_GT(m.freq('a'), before);
  EXPECT_EQ(m.freq('b'), 1u);
}

TEST(AdaptiveModel, CumulativeSumsStayConsistent) {
  arith::AdaptiveByteModel m;
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    m.update(static_cast<unsigned>(rng.below(256)));
  }
  std::uint32_t sum = 0;
  for (unsigned s = 0; s < 256; ++s) {
    EXPECT_EQ(m.cum_below(s), sum);
    sum += m.freq(s);
  }
  EXPECT_EQ(sum, m.total());
}

TEST(AdaptiveModel, FindInvertsCumulative) {
  arith::AdaptiveByteModel m;
  for (int i = 0; i < 100; ++i) m.update('q');
  for (std::uint32_t t = 0; t < m.total(); t += 13) {
    const unsigned s = m.find(t);
    EXPECT_LE(m.cum_below(s), t);
    EXPECT_GT(m.cum_below(s) + m.freq(s), t);
  }
}

TEST(AdaptiveModel, RescaleKeepsEverySymbolCodable) {
  arith::AdaptiveByteModel m;
  for (int i = 0; i < 20000; ++i) m.update('z');  // forces several rescales
  for (unsigned s = 0; s < 256; ++s) EXPECT_GE(m.freq(s), 1u);
  EXPECT_LT(m.total(), 1u << 16);
}

// ------------------------------------------------------------------ codec

TEST(ArithmeticCodec, RoundTripsText) {
  ArithmeticCodec codec;
  const Bytes data = testdata::repetitive_text(20000, 1);
  EXPECT_EQ(codec.decompress(codec.compress(data)), data);
}

TEST(ArithmeticCodec, RoundTripsRandom) {
  ArithmeticCodec codec;
  const Bytes data = testdata::random_bytes(8192, 2);
  EXPECT_EQ(codec.decompress(codec.compress(data)), data);
}

TEST(ArithmeticCodec, EmptyInput) {
  ArithmeticCodec codec;
  EXPECT_TRUE(codec.decompress(codec.compress(Bytes{})).empty());
}

TEST(ArithmeticCodec, SingleByte) {
  ArithmeticCodec codec;
  const Bytes data = {0xFF};
  EXPECT_EQ(codec.decompress(codec.compress(data)), data);
}

TEST(ArithmeticCodec, TwoBytesAllValues) {
  ArithmeticCodec codec;
  for (unsigned a : {0u, 1u, 127u, 255u}) {
    for (unsigned b : {0u, 128u, 255u}) {
      const Bytes data = {static_cast<std::uint8_t>(a),
                          static_cast<std::uint8_t>(b)};
      EXPECT_EQ(codec.decompress(codec.compress(data)), data);
    }
  }
}

TEST(ArithmeticCodec, BeatsHuffmanOnSkewedData) {
  // Fractional-bit codewords pay off when one symbol dominates (§2.2).
  Rng rng(3);
  Bytes data(64 * 1024);
  for (auto& b : data) b = rng.chance(0.97) ? 0 : 1;

  ArithmeticCodec arith;
  HuffmanCodec huffman;
  const auto a = arith.compress(data).size();
  const auto h = huffman.compress(data).size();
  EXPECT_LT(a, h / 2);
}

TEST(ArithmeticCodec, CompressesLowEntropyBelow60Percent) {
  ArithmeticCodec codec;
  const Bytes data = testdata::low_entropy(64 * 1024, 4);
  EXPECT_LT(codec.compress(data).size(), data.size() * 6 / 10);
}

TEST(ArithmeticCodec, ImplausibleSizeHeaderThrows) {
  Bytes bogus;
  put_varint(bogus, 1ull << 50);
  bogus.push_back(0);
  ArithmeticCodec codec;
  EXPECT_THROW(codec.decompress(bogus), DecodeError);
}

TEST(ArithmeticCodec, LongRunsOfSingleSymbol) {
  ArithmeticCodec codec;
  const Bytes data(100000, 7);
  const Bytes packed = codec.compress(data);
  EXPECT_LT(packed.size(), 2048u);  // ~0.02 bits/symbol once adapted
  EXPECT_EQ(codec.decompress(packed), data);
}

}  // namespace
}  // namespace acex
