// The multi-objective decision scorer (DESIGN.md §15): golden regression
// pinning the kBandwidth default to the original engine's fig08/fig11
// selections, pure-function property tests over policy_utility /
// decide_policy, and path-identity checks across the serial, parallel, and
// broker (shared-sample) planning paths.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adaptive/experiment.hpp"
#include "adaptive/pipeline.hpp"
#include "engine/parallel_sender.hpp"
#include "netsim/link.hpp"
#include "netsim/load_trace.hpp"
#include "transport/sim_transport.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workloads/molecular.hpp"
#include "workloads/tensor.hpp"
#include "workloads/transactions.hpp"

namespace acex::adaptive {
namespace {

// ----------------------------------------------------------------- golden

/// One character per block: the §2.5 rule's method choice.
char method_char(MethodId m) {
  switch (m) {
    case MethodId::kNone: return '0';
    case MethodId::kHuffman: return 'h';
    case MethodId::kLempelZiv: return 'l';
    case MethodId::kBurrowsWheeler: return 'b';
    default: return '?';
  }
}

/// Replay the fig08/fig11 decision trace analytically: per block, the link's
/// deterministic pre-jitter effective bandwidth at t = 3·index seconds
/// (paced to sweep the MBone trace's load swings), the paper's calibrated
/// Sun-Fire LZ reducing speed, and the real 4 KiB sampler ratio. Every term
/// is a pure function of (data, link params, trace), so the sequence is
/// machine-independent — pinnable as test data. Also asserts, block by
/// block, that decide_policy under the default policy is bit-identical to
/// decide().
std::string bandwidth_sequence(ByteView data, netsim::SimLink& link) {
  const DecisionParams params;  // paper defaults, policy = kBandwidth
  const Sampler sampler;
  std::string out;
  std::size_t index = 0;
  for (std::size_t off = 0; off < data.size();
       off += params.block_size, ++index) {
    const ByteView block = data.subspan(
        off, std::min(params.block_size, data.size() - off));
    SelectionInputs inputs;
    const double bw =
        link.effective_bandwidth(3.0 * static_cast<double>(index));
    inputs.send_seconds = static_cast<double>(block.size()) / bw;
    inputs.lz_reduce_seconds =
        static_cast<double>(block.size()) / kPaperLzReducingBps;
    inputs.sampled_ratio_percent = sampler.sample(block).ratio_percent;
    const MethodId rule = decide(inputs, params);
    EXPECT_EQ(decide_policy(inputs, params), rule)
        << "kBandwidth diverged from decide() at block " << index;
    out.push_back(method_char(rule));
  }
  return out;
}

netsim::SimLink fig_link(const netsim::LoadTrace& trace) {
  netsim::LinkParams link = netsim::fast_ethernet_link();
  link.jitter_frac = 0.02;
  link.share_per_connection = 0.014;
  netsim::SimLink sim(link, 1);
  sim.set_background(&trace);
  return sim;
}

TEST(DecisionGolden, Fig08CommercialSelectionsPinned) {
  workloads::TransactionGenerator gen(2004);
  const Bytes data = gen.text_block(48 * 128 * 1024);
  const netsim::LoadTrace trace = netsim::mbone_trace().scaled(4.0);
  netsim::SimLink link = fig_link(trace);
  const std::string sequence = bandwidth_sequence(data, link);
  // Pinned from the pre-refactor engine: the §2.5 rule on the commercial
  // stream over the MBone x4-loaded 100 Mb link. '0'=none 'h'=huffman
  // 'l'=LZ 'b'=BW. Any diff here means the DEFAULT policy changed.
  EXPECT_EQ(sequence, "0000000000000llllllllbblllbbbblbbblllll000000000");
}

TEST(DecisionGolden, Fig11MolecularSelectionsPinned) {
  workloads::MolecularConfig config;
  config.atom_count = 4096;
  config.seed = 2004;
  workloads::MolecularGenerator gen(config);
  const Bytes data = gen.stream(48);
  const netsim::LoadTrace trace = netsim::mbone_trace().scaled(4.0);
  netsim::SimLink link = fig_link(trace);
  const std::string sequence = bandwidth_sequence(data, link);
  // The MD stream lacks string repetitions (ratio above the cut), so when
  // the loaded link makes compression pay at all, Huffman is the §2.5
  // answer — never LZ/BW, unlike the commercial trace above.
  EXPECT_EQ(sequence, "0000000000000hhhhhhhhhhhhhhhhhhhhhhhhhh0000000000");
}

// ------------------------------------------------------- pure properties

SelectionInputs random_inputs(Rng& rng) {
  SelectionInputs inputs;
  inputs.block_bytes = 1u << (10 + rng.below(8));  // 1 KiB .. 128 KiB
  inputs.bandwidth_Bps = 1e4 + rng.uniform() * 1e8;
  inputs.send_seconds =
      static_cast<double>(inputs.block_bytes) / inputs.bandwidth_Bps;
  inputs.lz_reduce_seconds = rng.uniform() * 0.2;
  inputs.sampled_ratio_percent = rng.uniform() * 120.0;
  inputs.target_rate_Bps = rng.chance(0.5) ? rng.uniform() * 1e7 : 0.0;
  for (std::size_t rung = 0; rung < kDecisionLadder.size(); ++rung) {
    inputs.estimates[rung].ratio = rung == 0 ? 1.0 : rng.uniform() * 1.2;
    inputs.estimates[rung].encode_seconds =
        rung == 0 ? 0.0 : rng.uniform() * 0.5;
  }
  return inputs;
}

const std::vector<DecisionPolicy>& scored_policies() {
  static const std::vector<DecisionPolicy> kScored = {
      DecisionPolicy::kCpuEfficiency, DecisionPolicy::kEnergyProxy,
      DecisionPolicy::kTargetRate};
  return kScored;
}

TEST(DecisionPolicyProperties, UtilityNonIncreasingInRatio) {
  Rng rng(41);
  for (int iter = 0; iter < 500; ++iter) {
    SelectionInputs inputs = random_inputs(rng);
    const std::size_t rung = 1 + rng.below(kDecisionLadder.size() - 1);
    for (const DecisionPolicy policy : scored_policies()) {
      DecisionParams params;
      params.policy = policy;
      const double before = policy_utility(inputs, params, rung);
      SelectionInputs worse = inputs;
      worse.estimates[rung].ratio += 0.05 + rng.uniform() * 0.5;
      const double after = policy_utility(worse, params, rung);
      EXPECT_LE(after, before)
          << policy_name(policy) << " rewarded a worse ratio";
    }
  }
}

TEST(DecisionPolicyProperties, UtilityNonIncreasingInCpu) {
  Rng rng(43);
  for (int iter = 0; iter < 500; ++iter) {
    SelectionInputs inputs = random_inputs(rng);
    const std::size_t rung = 1 + rng.below(kDecisionLadder.size() - 1);
    for (const DecisionPolicy policy : scored_policies()) {
      DecisionParams params;
      params.policy = policy;
      const double before = policy_utility(inputs, params, rung);
      SelectionInputs worse = inputs;
      worse.estimates[rung].encode_seconds += 0.01 + rng.uniform();
      const double after = policy_utility(worse, params, rung);
      EXPECT_LE(after, before)
          << policy_name(policy) << " rewarded more CPU";
    }
  }
}

TEST(DecisionPolicyProperties, BetterRatioAtEqualCpuNeverLoses) {
  // The satellite wording verbatim: at equal CPU, improving a candidate's
  // ratio can only improve (or keep) its rank against a fixed rival.
  Rng rng(47);
  for (int iter = 0; iter < 500; ++iter) {
    SelectionInputs inputs = random_inputs(rng);
    const std::size_t rung = 1 + rng.below(kDecisionLadder.size() - 1);
    for (const DecisionPolicy policy : scored_policies()) {
      DecisionParams params;
      params.policy = policy;
      SelectionInputs better = inputs;
      better.estimates[rung].ratio =
          std::max(0.0, inputs.estimates[rung].ratio - 0.1);
      EXPECT_GE(policy_utility(better, params, rung),
                policy_utility(inputs, params, rung));
    }
  }
}

TEST(DecisionPolicyProperties, PureFunctionAndAlwaysOnLadder) {
  Rng rng(53);
  for (int iter = 0; iter < 1000; ++iter) {
    const SelectionInputs inputs = random_inputs(rng);
    for (const DecisionPolicy policy : all_policies()) {
      DecisionParams params;
      params.policy = policy;
      const MethodId first = decide_policy(inputs, params);
      EXPECT_EQ(decide_policy(inputs, params), first);
      EXPECT_LT(decision_ladder_rung(first), kDecisionLadder.size())
          << policy_name(policy) << " left the ladder";
    }
  }
}

TEST(DecisionPolicyProperties, BandwidthPolicyBitIdenticalToRule) {
  Rng rng(59);
  for (int iter = 0; iter < 2000; ++iter) {
    const SelectionInputs inputs = random_inputs(rng);
    const DecisionParams params;  // kBandwidth
    EXPECT_EQ(decide_policy(inputs, params), decide(inputs, params));
  }
}

TEST(DecisionPolicyProperties, BandwidthUtilityThrows) {
  const SelectionInputs inputs;
  const DecisionParams params;  // kBandwidth is rule-based, not scored
  EXPECT_THROW(policy_utility(inputs, params, 0), ConfigError);
  DecisionParams scored;
  scored.policy = DecisionPolicy::kEnergyProxy;
  EXPECT_THROW(policy_utility(inputs, scored, kDecisionLadder.size()),
               ConfigError);
}

TEST(DecisionPolicyProperties, NullCodecWinsOnIncompressibleData) {
  // Incompressible estimates: every method achieves ratio ~1 at real CPU
  // cost. No objective may pick anything but the null codec.
  SelectionInputs inputs;
  inputs.block_bytes = 128 * 1024;
  inputs.bandwidth_Bps = 1e6;
  inputs.send_seconds = 0.13;
  inputs.sampled_ratio_percent = 100.0;
  for (std::size_t rung = 0; rung < kDecisionLadder.size(); ++rung) {
    inputs.estimates[rung].ratio = 1.0;
    inputs.estimates[rung].encode_seconds = rung == 0 ? 0.0 : 0.05;
  }
  for (const DecisionPolicy policy : scored_policies()) {
    DecisionParams params;
    params.policy = policy;
    EXPECT_EQ(decide_policy(inputs, params), MethodId::kNone)
        << policy_name(policy);
  }
}

TEST(DecisionPolicyProperties, ValidateRejectsBadPolicyParams) {
  DecisionParams params;
  params.min_saving_per_cpu_us = -1.0;
  EXPECT_THROW(params.validate(), ConfigError);
  params = DecisionParams{};
  params.energy_wire_weight = -1e-9;
  EXPECT_THROW(params.validate(), ConfigError);
  params = DecisionParams{};
  params.policy = static_cast<DecisionPolicy>(200);
  EXPECT_THROW(params.validate(), ConfigError);
}

TEST(DecisionPolicyNames, RoundTripAndKnownness) {
  for (const DecisionPolicy policy : all_policies()) {
    EXPECT_TRUE(known_policy(static_cast<std::uint64_t>(policy)));
    EXPECT_NE(policy_name(policy), "?");
  }
  EXPECT_FALSE(known_policy(99));
  EXPECT_EQ(all_policies().size(), 4u);
}

// ----------------------------------------------- policy-specific behaviour

SelectionInputs slow_link_inputs() {
  // 128 KiB over a ~1 MB/s link; candidate estimates with the usual shape:
  // stronger method, better ratio, more CPU.
  SelectionInputs inputs;
  inputs.block_bytes = 128 * 1024;
  inputs.bandwidth_Bps = 1e6;
  inputs.send_seconds = 0.131;
  inputs.sampled_ratio_percent = 40.0;
  inputs.estimates[0] = {1.0, 0.0};
  inputs.estimates[1] = {0.65, 0.01};  // Huffman
  inputs.estimates[2] = {0.40, 0.04};  // LZ
  inputs.estimates[3] = {0.30, 0.20};  // BW
  return inputs;
}

TEST(DecisionTargetRate, NoFloorMeansMinimumCpu) {
  SelectionInputs inputs = slow_link_inputs();
  inputs.target_rate_Bps = 0;
  DecisionParams params;
  params.policy = DecisionPolicy::kTargetRate;
  // Every candidate qualifies vacuously; the null codec has the least CPU.
  EXPECT_EQ(decide_policy(inputs, params), MethodId::kNone);
}

TEST(DecisionTargetRate, PicksCheapestQualifier) {
  SelectionInputs inputs = slow_link_inputs();
  inputs.target_rate_Bps = 2.0e6;
  DecisionParams params;
  params.policy = DecisionPolicy::kTargetRate;
  // Effective rates: none 1.0 MB/s, Huffman 1.54, LZ 2.5, BW 0.64 (CPU
  // bound at 128KiB/0.2s). Only LZ clears 2 MB/s.
  EXPECT_EQ(decide_policy(inputs, params), MethodId::kLempelZiv);
}

TEST(DecisionTargetRate, BestEffortStrongestRateWhenNoneQualifies) {
  SelectionInputs inputs = slow_link_inputs();
  inputs.target_rate_Bps = 1e9;  // unreachable
  DecisionParams params;
  params.policy = DecisionPolicy::kTargetRate;
  // Best effective rate wins: LZ's 2.5 MB/s beats every alternative.
  EXPECT_EQ(decide_policy(inputs, params), MethodId::kLempelZiv);
}

TEST(DecisionCpuEfficiency, FloorKillsMarginalSavings) {
  SelectionInputs inputs = slow_link_inputs();
  // Make every compression marginal: tiny savings, heavy CPU.
  for (std::size_t rung = 1; rung < kDecisionLadder.size(); ++rung) {
    inputs.estimates[rung].ratio = 0.99;
    inputs.estimates[rung].encode_seconds = 0.5;
  }
  DecisionParams params;
  params.policy = DecisionPolicy::kCpuEfficiency;
  EXPECT_EQ(decide_policy(inputs, params), MethodId::kNone);
  // Drop the floor to zero and the (tiny) saving is pure profit again.
  params.min_saving_per_cpu_us = 0.0;
  EXPECT_NE(decide_policy(inputs, params), MethodId::kNone);
}

TEST(DecisionEnergyProxy, WeightsShiftTheChoice) {
  const SelectionInputs inputs = slow_link_inputs();
  DecisionParams params;
  params.policy = DecisionPolicy::kEnergyProxy;
  // Wire-dominated deployment (radio): strongest ratio wins.
  params.energy_cpu_weight = 1e-3;
  params.energy_wire_weight = 1e-3;
  EXPECT_EQ(decide_policy(inputs, params), MethodId::kBurrowsWheeler);
  // CPU-dominated deployment (datacenter LAN): the wire is nearly free.
  params.energy_cpu_weight = 10.0;
  params.energy_wire_weight = 1e-9;
  EXPECT_EQ(decide_policy(inputs, params), MethodId::kNone);
}

// ------------------------------------------------ cross-path determinism

netsim::LinkParams flat_link(double bps) {
  netsim::LinkParams p;
  p.bandwidth_Bps = bps;
  p.jitter_frac = 0;
  p.latency_s = 0;
  return p;
}

AdaptiveConfig policy_config(DecisionPolicy policy, std::size_t workers) {
  AdaptiveConfig config;
  config.async_sampling = false;
  config.decision.block_size = 4096;
  config.decision.sample_size = 1024;
  config.decision.policy = policy;
  // Pin the scored policies into their ratio-dominated regime: ratio
  // estimates are pure functions of the bytes, so decisions stay identical
  // across serial/parallel/broker paths regardless of wall-clock encode
  // noise. The CPU terms are covered by the pure-function tests above.
  config.decision.min_saving_per_cpu_us = 0.0;
  config.decision.energy_cpu_weight = 0.0;
  config.worker_threads = workers;
  return config;
}

std::vector<MethodId> methods_of(const StreamReport& stream) {
  std::vector<MethodId> out;
  for (const auto& b : stream.blocks) out.push_back(b.method);
  return out;
}

TEST(DecisionPolicyPaths, SerialAndParallelPickIdenticalMethods) {
  workloads::TransactionGenerator gen(11);
  const Bytes data = gen.text_block(32 * 4096);
  for (const DecisionPolicy policy : all_policies()) {
    VirtualClock serial_clock;
    netsim::SimLink sf(flat_link(1e6), 1), sr(flat_link(1e9), 2);
    transport::SimDuplex serial_duplex(sf, sr, serial_clock);
    AdaptiveSender serial(serial_duplex.a(), policy_config(policy, 1));
    const auto serial_methods = methods_of(serial.send_all(data));

    VirtualClock parallel_clock;
    netsim::SimLink pf(flat_link(1e6), 1), pr(flat_link(1e9), 2);
    transport::SimDuplex parallel_duplex(pf, pr, parallel_clock);
    engine::ParallelSender parallel(parallel_duplex.a(),
                                    policy_config(policy, 4));
    const auto parallel_methods = methods_of(parallel.send_all(data));

    EXPECT_EQ(serial_methods, parallel_methods)
        << "policy " << policy_name(policy)
        << " diverged between serial and parallel paths";
    AdaptiveReceiver receiver(parallel_duplex.b());
    EXPECT_EQ(receiver.receive_available(), data);
  }
}

TEST(DecisionPolicyPaths, SharedSamplePlansMatchInlinePlans) {
  // The broker path: one sample shared across subscribers via
  // plan_block_sampled must produce the same decision the inline
  // plan_block path makes from its own identical sample.
  workloads::TransactionGenerator gen(13);
  const Bytes data = gen.text_block(16 * 4096);
  const Sampler sampler(1024);
  for (const DecisionPolicy policy : all_policies()) {
    VirtualClock clock_a, clock_b;
    netsim::SimLink fa(flat_link(1e6), 1), ra(flat_link(1e9), 2);
    netsim::SimLink fb(flat_link(1e6), 1), rb(flat_link(1e9), 2);
    transport::SimDuplex duplex_a(fa, ra, clock_a);
    transport::SimDuplex duplex_b(fb, rb, clock_b);
    AdaptiveSender inline_sender(duplex_a.a(), policy_config(policy, 1));
    AdaptiveSender shared_sender(duplex_b.a(), policy_config(policy, 1));
    for (std::size_t off = 0; off < data.size(); off += 4096) {
      const ByteView block = ByteView(data).subspan(off, 4096);
      const BlockPlan inline_plan = inline_sender.plan_block(block);
      const BlockPlan shared_plan =
          shared_sender.plan_block_sampled(block, sampler.sample(block));
      EXPECT_EQ(inline_plan.method, shared_plan.method)
          << "policy " << policy_name(policy) << " block " << off / 4096;
      // Keep both senders' estimator state in lockstep.
      inline_sender.finish_block(
          inline_plan, block.size(),
          encode_block(inline_sender.registry(), block, inline_plan.method,
                       inline_plan.sequence, 64, true));
      shared_sender.finish_block(
          shared_plan, block.size(),
          encode_block(shared_sender.registry(), block, shared_plan.method,
                       shared_plan.sequence, 64, true));
    }
  }
}

TEST(DecisionPolicyPaths, SubscribersWithDistinctPoliciesDiverge) {
  // Two subscribers on the SAME blocks and the SAME shared sample but
  // different negotiated policies: the per-subscriber plans must be free
  // to disagree. e4m3 tensor data is the separating workload — no string
  // repetitions (the §2.5 rule refuses to compress on a fast link), but
  // low entropy (the CPU-efficiency scorer happily buys Huffman).
  workloads::TensorGenerator gen(17);
  const Bytes data = gen.e4m3_block(16 * 4096);
  const Sampler sampler(1024);

  VirtualClock clock_a, clock_b;
  netsim::SimLink fa(flat_link(5e7), 1), ra(flat_link(1e9), 2);
  netsim::SimLink fb(flat_link(5e7), 1), rb(flat_link(1e9), 2);
  transport::SimDuplex duplex_a(fa, ra, clock_a);
  transport::SimDuplex duplex_b(fb, rb, clock_b);
  AdaptiveConfig bandwidth_config =
      policy_config(DecisionPolicy::kBandwidth, 1);
  bandwidth_config.initial_bandwidth_Bps = 5e7;
  AdaptiveConfig efficiency_config =
      policy_config(DecisionPolicy::kCpuEfficiency, 1);
  efficiency_config.initial_bandwidth_Bps = 5e7;
  AdaptiveSender bandwidth_sub(duplex_a.a(), bandwidth_config);
  AdaptiveSender efficiency_sub(duplex_b.a(), efficiency_config);

  std::size_t divergent = 0;
  for (std::size_t off = 0; off < data.size(); off += 4096) {
    const ByteView block = ByteView(data).subspan(off, 4096);
    const SampleResult sample = sampler.sample(block);
    const BlockPlan a = bandwidth_sub.plan_block_sampled(block, sample);
    const BlockPlan b = efficiency_sub.plan_block_sampled(block, sample);
    if (a.method != b.method) ++divergent;
    bandwidth_sub.finish_block(
        a, block.size(),
        encode_block(bandwidth_sub.registry(), block, a.method, a.sequence,
                     64, true));
    efficiency_sub.finish_block(
        b, block.size(),
        encode_block(efficiency_sub.registry(), block, b.method, b.sequence,
                     64, true));
  }
  EXPECT_GT(divergent, 0u)
      << "policies never disagreed — the objective is not actually plugged "
         "into per-subscriber planning";
}

}  // namespace
}  // namespace acex::adaptive
