#include <gtest/gtest.h>

#include "adaptive/telemetry.hpp"
#include "echo/bridge.hpp"
#include "netsim/link.hpp"
#include "transport/sim_transport.hpp"
#include "workloads/transactions.hpp"

namespace acex::adaptive {
namespace {

BlockReport sample_report(std::size_t index, MethodId method) {
  BlockReport r;
  r.index = index;
  r.method = method;
  r.original_size = 131072;
  r.wire_size = method == MethodId::kNone ? 131083 : 40000;
  r.compress_seconds = 0.003;
  r.send_seconds = 0.02;
  r.bandwidth_estimate_Bps = 5e6;
  r.sampled_ratio_percent = 33.0;
  return r;
}

TEST(Telemetry, BlockEventsCarryTheRecord) {
  echo::EventChannel channel("telemetry");
  TelemetryPublisher publisher(channel);

  echo::AttributeMap seen;
  channel.subscribe([&](const echo::Event& e) { seen = e.attributes; });
  publisher.publish(sample_report(7, MethodId::kLempelZiv));

  EXPECT_EQ(seen.get_string("acex.t.kind"), "block");
  EXPECT_EQ(seen.get_int("acex.t.index"), 7);
  EXPECT_EQ(seen.get_string("acex.t.method"), "lempel-ziv");
  EXPECT_EQ(seen.get_int("acex.t.original"), 131072);
  EXPECT_EQ(seen.get_int("acex.t.wire"), 40000);
  EXPECT_NEAR(*seen.get_double("acex.t.compress_us"), 3000.0, 1e-6);
}

TEST(Telemetry, AggregatorBuildsTheDashboard) {
  echo::EventChannel channel("telemetry");
  TelemetryPublisher publisher(channel);
  TelemetryAggregator dashboard;
  channel.subscribe(
      [&](const echo::Event& e) { EXPECT_TRUE(dashboard.observe(e)); });

  StreamReport stream;
  for (std::size_t i = 0; i < 10; ++i) {
    const MethodId m = i < 4 ? MethodId::kNone : MethodId::kLempelZiv;
    const auto r = sample_report(i, m);
    stream.blocks.push_back(r);
    stream.original_bytes += r.original_size;
    stream.wire_bytes += r.wire_size;
    publisher.publish(r);
  }
  publisher.publish_summary(stream);

  EXPECT_EQ(dashboard.blocks(), 10u);
  EXPECT_EQ(dashboard.original_bytes(), 10u * 131072);
  EXPECT_EQ(dashboard.method_counts().at("none"), 4u);
  EXPECT_EQ(dashboard.method_counts().at("lempel-ziv"), 6u);
  EXPECT_TRUE(dashboard.summary_seen());
  EXPECT_LT(dashboard.wire_ratio_percent(), 100.0);
}

TEST(Telemetry, NonTelemetryEventsIgnored) {
  TelemetryAggregator dashboard;
  echo::Event plain(to_bytes("payload"));
  EXPECT_FALSE(dashboard.observe(plain));
  EXPECT_EQ(dashboard.blocks(), 0u);
}

TEST(Telemetry, CrossesTheBridgeLikeAnyChannel) {
  // The point of attribute-borne telemetry: it travels through the same
  // middleware machinery as data, including the remote bridge.
  VirtualClock clock;
  netsim::LinkParams flat;
  flat.jitter_frac = 0;
  netsim::SimLink fwd(flat, 1), rev(flat, 2);
  transport::SimDuplex duplex(fwd, rev, clock);

  echo::EventChannel local("telemetry");
  echo::ChannelSender bridge_out(local, duplex.a());
  echo::EventChannel remote("telemetry.inbound");
  echo::ChannelReceiver bridge_in(remote, duplex.b());

  TelemetryAggregator remote_dashboard;
  remote.subscribe(
      [&](const echo::Event& e) { remote_dashboard.observe(e); });

  TelemetryPublisher publisher(local);
  publisher.publish(sample_report(0, MethodId::kBurrowsWheeler));
  publisher.publish(sample_report(1, MethodId::kBurrowsWheeler));
  bridge_in.poll();

  EXPECT_EQ(remote_dashboard.blocks(), 2u);
  EXPECT_EQ(remote_dashboard.method_counts().at("burrows-wheeler"), 2u);
}

TEST(Telemetry, EndToEndWithRealSenderReports) {
  // Publish the blocks an actual adaptive stream produced; the dashboard
  // must reconcile exactly with the sender's own StreamReport.
  VirtualClock clock;
  netsim::LinkParams slow;
  slow.bandwidth_Bps = 2e5;
  slow.jitter_frac = 0;
  netsim::SimLink fwd(slow, 3), rev(slow, 4);
  transport::SimDuplex duplex(fwd, rev, clock);

  AdaptiveConfig config;
  config.async_sampling = false;
  AdaptiveSender sender(duplex.a(), config);
  workloads::TransactionGenerator gen(5);
  const Bytes data = gen.text_block(512 * 1024);
  const StreamReport report = sender.send_all(data);

  echo::EventChannel channel("telemetry");
  TelemetryPublisher publisher(channel);
  TelemetryAggregator dashboard;
  channel.subscribe([&](const echo::Event& e) { dashboard.observe(e); });
  for (const auto& b : report.blocks) publisher.publish(b);
  publisher.publish_summary(report);

  EXPECT_EQ(dashboard.blocks(), report.blocks.size());
  EXPECT_EQ(dashboard.original_bytes(), report.original_bytes);
  EXPECT_EQ(dashboard.wire_bytes(), report.wire_bytes);
  EXPECT_NEAR(dashboard.wire_ratio_percent(),
              report.wire_ratio_percent(), 1e-9);
}

}  // namespace
}  // namespace acex::adaptive
