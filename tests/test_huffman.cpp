#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "compress/huffman.hpp"
#include "testdata.hpp"
#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex {
namespace {

using huff::build_code_lengths;
using huff::canonical_codes;

std::vector<std::uint64_t> freqs_of(ByteView data) {
  std::vector<std::uint64_t> f(256, 0);
  for (const auto b : data) ++f[b];
  return f;
}

// ------------------------------------------------------------ code builder

TEST(HuffmanBuilder, TwoSymbolsGetOneBitEach) {
  std::vector<std::uint64_t> freqs(256, 0);
  freqs['a'] = 10;
  freqs['b'] = 90;
  const auto lengths = build_code_lengths(freqs);
  EXPECT_EQ(lengths['a'], 1);
  EXPECT_EQ(lengths['b'], 1);
  EXPECT_EQ(lengths['c'], 0);
}

TEST(HuffmanBuilder, SingleSymbolGetsLengthOne) {
  std::vector<std::uint64_t> freqs(256, 0);
  freqs['x'] = 5;
  const auto lengths = build_code_lengths(freqs);
  EXPECT_EQ(lengths['x'], 1);
}

TEST(HuffmanBuilder, EmptyInputYieldsEmptyCode) {
  std::vector<std::uint64_t> freqs(256, 0);
  const auto lengths = build_code_lengths(freqs);
  for (const auto len : lengths) EXPECT_EQ(len, 0);
}

TEST(HuffmanBuilder, RareSymbolsGetLongerCodes) {
  std::vector<std::uint64_t> freqs(256, 0);
  freqs[0] = 1000;
  freqs[1] = 100;
  freqs[2] = 10;
  freqs[3] = 1;
  const auto lengths = build_code_lengths(freqs);
  EXPECT_LE(lengths[0], lengths[1]);
  EXPECT_LE(lengths[1], lengths[2]);
  EXPECT_LE(lengths[2], lengths[3]);
}

TEST(HuffmanBuilder, RespectsLengthLimit) {
  // Fibonacci-like frequencies force deep trees without a limit.
  std::vector<std::uint64_t> freqs(256, 0);
  std::uint64_t a = 1, b = 1;
  for (int i = 0; i < 40; ++i) {
    freqs[static_cast<std::size_t>(i)] = a;
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  const auto lengths = build_code_lengths(freqs);
  for (const auto len : lengths) EXPECT_LE(len, huff::kMaxBits);
  // All 40 symbols must still be coded.
  int coded = 0;
  for (const auto len : lengths) coded += len != 0;
  EXPECT_EQ(coded, 40);
}

TEST(HuffmanBuilder, SatisfiesKraftEquality) {
  std::vector<std::uint64_t> freqs(256, 1);
  const auto lengths = build_code_lengths(freqs);
  double kraft = 0;
  for (const auto len : lengths) {
    if (len != 0) kraft += std::pow(2.0, -static_cast<double>(len));
  }
  EXPECT_NEAR(kraft, 1.0, 1e-9);
}

// --------------------------------------------------------- canonical codes

TEST(HuffmanCanonical, CodesArePrefixFree) {
  std::vector<std::uint8_t> lengths(8, 3);  // 8 symbols, 3 bits each
  const auto codes = canonical_codes(lengths);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    for (std::size_t j = i + 1; j < codes.size(); ++j) {
      EXPECT_NE(codes[i].bits, codes[j].bits);
    }
  }
}

TEST(HuffmanCanonical, ShorterCodesNumericallyPrecede) {
  std::vector<std::uint8_t> lengths = {1, 2, 3, 3};
  const auto codes = canonical_codes(lengths);
  EXPECT_EQ(codes[0].bits, 0b0u);
  EXPECT_EQ(codes[1].bits, 0b10u);
  EXPECT_EQ(codes[2].bits, 0b110u);
  EXPECT_EQ(codes[3].bits, 0b111u);
}

TEST(HuffmanCanonical, RejectsOversubscribedLengths) {
  std::vector<std::uint8_t> lengths = {1, 1, 1};  // Kraft sum 1.5
  EXPECT_THROW(canonical_codes(lengths), DecodeError);
}

TEST(HuffmanCanonical, RejectsLengthsOverLimit) {
  std::vector<std::uint8_t> lengths = {16};
  EXPECT_THROW(canonical_codes(lengths), DecodeError);
}

// -------------------------------------------------------- encoder/decoder

TEST(HuffmanCoder, EncodeDecodeSymbolStream) {
  const Bytes data = testdata::low_entropy(5000, 1);
  const auto freqs = freqs_of(data);
  const auto lengths = build_code_lengths(freqs);

  BitWriter bw;
  const huff::Encoder enc(lengths);
  for (const auto b : data) enc.encode(bw, b);
  const Bytes coded = bw.take();

  BitReader br(coded);
  const huff::Decoder dec(lengths);
  for (const auto b : data) {
    ASSERT_EQ(dec.decode(br), b);
  }
}

TEST(HuffmanCoder, CostBitsMatchesActualOutput) {
  const Bytes data = testdata::repetitive_text(3000, 2);
  const auto freqs = freqs_of(data);
  const auto lengths = build_code_lengths(freqs);
  const huff::Encoder enc(lengths);

  BitWriter bw;
  for (const auto b : data) enc.encode(bw, b);
  EXPECT_EQ(enc.cost_bits(freqs), bw.bit_count());
}

TEST(HuffmanCoder, EncodingUnknownSymbolThrows) {
  std::vector<std::uint64_t> freqs(256, 0);
  freqs['a'] = 1;
  freqs['b'] = 1;
  const huff::Encoder enc(build_code_lengths(freqs));
  BitWriter bw;
  EXPECT_THROW(enc.encode(bw, 'z'), ConfigError);
}

TEST(HuffmanCoder, LengthHeaderRoundTrips) {
  std::vector<std::uint64_t> freqs(300, 0);
  for (std::size_t i = 0; i < 300; i += 3) freqs[i] = i + 1;
  const auto lengths = build_code_lengths(freqs);
  BitWriter bw;
  huff::write_lengths(bw, lengths);
  const Bytes buf = bw.take();
  BitReader br(buf);
  EXPECT_EQ(huff::read_lengths(br, 300), lengths);
}

// ------------------------------------------------------------ whole codec

TEST(HuffmanCodec, RoundTripsText) {
  HuffmanCodec codec;
  const Bytes data = testdata::repetitive_text(20000, 3);
  EXPECT_EQ(codec.decompress(codec.compress(data)), data);
}

TEST(HuffmanCodec, EmptyInput) {
  HuffmanCodec codec;
  EXPECT_TRUE(codec.decompress(codec.compress(Bytes{})).empty());
}

TEST(HuffmanCodec, OneByteInput) {
  HuffmanCodec codec;
  const Bytes data = {0x42};
  EXPECT_EQ(codec.decompress(codec.compress(data)), data);
}

TEST(HuffmanCodec, CompressesLowEntropyData) {
  HuffmanCodec codec;
  const Bytes data = testdata::low_entropy(64 * 1024, 4);
  const Bytes packed = codec.compress(data);
  EXPECT_LT(packed.size(), data.size() * 3 / 4);
}

TEST(HuffmanCodec, RandomDataBarelyExpands) {
  HuffmanCodec codec;
  const Bytes data = testdata::random_bytes(64 * 1024, 5);
  const Bytes packed = codec.compress(data);
  // Header (128 B) plus ~8 bits/byte payload: bounded small overhead.
  EXPECT_LT(packed.size(), data.size() + 256);
}

TEST(HuffmanCodec, TruncatedStreamThrows) {
  HuffmanCodec codec;
  Bytes packed = codec.compress(testdata::repetitive_text(4096, 6));
  packed.resize(packed.size() / 2);
  EXPECT_THROW(codec.decompress(packed), DecodeError);
}

TEST(HuffmanCodec, EmptyBufferThrows) {
  HuffmanCodec codec;
  EXPECT_THROW(codec.decompress(Bytes{}), DecodeError);
}

TEST(HuffmanCodec, ImplausibleSizeHeaderThrows) {
  Bytes bogus;
  put_varint(bogus, 1ull << 50);
  bogus.push_back(0);
  HuffmanCodec codec;
  EXPECT_THROW(codec.decompress(bogus), DecodeError);
}

}  // namespace
}  // namespace acex
