#include <gtest/gtest.h>

#include "adaptive/calibrator.hpp"
#include "adaptive/decision.hpp"
#include "adaptive/echo_integration.hpp"
#include "adaptive/monitor.hpp"
#include "adaptive/sampler.hpp"
#include "echo/bus.hpp"
#include "testdata.hpp"
#include "util/error.hpp"
#include "workloads/transactions.hpp"

namespace acex::adaptive {
namespace {

// ---------------------------------------------------------------- decision

TEST(Decision, FastLinkChoosesNoCompression) {
  // Sending is much faster than reducing: don't compress (1 Gb intranet).
  SelectionInputs in;
  in.send_seconds = 0.001;
  in.lz_reduce_seconds = 0.05;
  in.sampled_ratio_percent = 30.0;
  EXPECT_EQ(decide(in, {}), MethodId::kNone);
}

TEST(Decision, SlowLinkCompressibleDataChoosesLempelZiv) {
  SelectionInputs in;
  in.send_seconds = 0.10;  // between alpha (0.83) and beta (3.48) x reduce
  in.lz_reduce_seconds = 0.05;
  in.sampled_ratio_percent = 30.0;
  EXPECT_EQ(decide(in, {}), MethodId::kLempelZiv);
}

TEST(Decision, VerySlowLinkEscalatesToBurrowsWheeler) {
  SelectionInputs in;
  in.send_seconds = 0.5;  // > 3.48 x 0.05
  in.lz_reduce_seconds = 0.05;
  in.sampled_ratio_percent = 30.0;
  EXPECT_EQ(decide(in, {}), MethodId::kBurrowsWheeler);
}

TEST(Decision, IncompressibleDataFallsBackToHuffman) {
  SelectionInputs in;
  in.send_seconds = 0.5;
  in.lz_reduce_seconds = 0.05;
  in.sampled_ratio_percent = 80.0;  // above the 48.78 % cut
  EXPECT_EQ(decide(in, {}), MethodId::kHuffman);
}

TEST(Decision, FirstBlockInfinityAssumptionPicksStrongestMethod) {
  // "Assume the reducing size speed of first block is infinity":
  // lz_reduce_seconds = 0 passes BOTH the alpha and beta gates, so the
  // paper's pseudocode starts compressible data on Burrows-Wheeler until
  // real measurements arrive.
  SelectionInputs in;
  in.send_seconds = 1e-6;
  in.lz_reduce_seconds = 0;
  in.sampled_ratio_percent = 30.0;
  EXPECT_EQ(decide(in, {}), MethodId::kBurrowsWheeler);
  in.sampled_ratio_percent = 60.0;  // incompressible start: Huffman
  EXPECT_EQ(decide(in, {}), MethodId::kHuffman);
}

TEST(Decision, ThresholdBoundariesAreExact) {
  DecisionParams p;  // alpha 0.83, beta 3.48
  SelectionInputs in;
  in.lz_reduce_seconds = 1.0;
  in.sampled_ratio_percent = 10.0;

  in.send_seconds = 0.83;  // not strictly greater: no compression
  EXPECT_EQ(decide(in, p), MethodId::kNone);
  in.send_seconds = 0.8301;
  EXPECT_EQ(decide(in, p), MethodId::kLempelZiv);
  in.send_seconds = 3.48;
  EXPECT_EQ(decide(in, p), MethodId::kLempelZiv);
  in.send_seconds = 3.4801;
  EXPECT_EQ(decide(in, p), MethodId::kBurrowsWheeler);
}

TEST(Decision, RatioCutBoundary) {
  DecisionParams p;
  SelectionInputs in;
  in.send_seconds = 1.0;
  in.lz_reduce_seconds = 0.5;
  in.sampled_ratio_percent = 48.78;  // not strictly below: Huffman
  EXPECT_EQ(decide(in, p), MethodId::kHuffman);
  in.sampled_ratio_percent = 48.77;
  EXPECT_EQ(decide(in, p), MethodId::kLempelZiv);
}

TEST(Decision, ParamValidation) {
  DecisionParams p;
  p.alpha = 0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = {};
  p.beta = 0.5;  // < alpha
  EXPECT_THROW(p.validate(), ConfigError);
  p = {};
  p.ratio_cut_percent = 0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = {};
  p.sample_size = p.block_size + 1;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Figure1Table, MatchesPublishedRatings) {
  const auto& table = figure1_table();
  ASSERT_EQ(table.size(), 4u);
  // Spot-check the published cells.
  EXPECT_EQ(table[0].method, MethodId::kBurrowsWheeler);
  EXPECT_EQ(table[0].efficiency, Rating::kExcellent);
  EXPECT_EQ(table[0].compress_time, Rating::kPoor);
  EXPECT_EQ(table[3].method, MethodId::kHuffman);
  EXPECT_EQ(table[3].compress_time, Rating::kExcellent);
  EXPECT_EQ(table[3].efficiency, Rating::kPoor);
  EXPECT_EQ(table[2].method, MethodId::kArithmetic);
  EXPECT_EQ(table[2].global_time, Rating::kPoor);
}

TEST(Figure1Table, BucketRatingOrdersValues) {
  EXPECT_EQ(bucket_rating(100, 100, 1, true), Rating::kExcellent);
  EXPECT_EQ(bucket_rating(1, 100, 1, true), Rating::kPoor);
  EXPECT_EQ(bucket_rating(1, 100, 1, false), Rating::kExcellent);
  EXPECT_EQ(bucket_rating(50, 100, 1, true) >= Rating::kSatisfactory, true);
}

// ----------------------------------------------------------------- sampler

TEST(Sampler, MeasuresRatioOnCompressibleData) {
  Sampler sampler(4096);
  const Bytes block = testdata::repetitive_text(128 * 1024, 1);
  const SampleResult s = sampler.sample(block);
  EXPECT_EQ(s.sample_bytes, 4096u);
  EXPECT_LT(s.ratio_percent, 48.0);
  EXPECT_GT(s.reducing_speed, 0.0);
  EXPECT_GT(s.throughput, 0.0);
}

TEST(Sampler, RandomDataReportsNoReduction) {
  Sampler sampler(4096);
  const SampleResult s = sampler.sample(testdata::random_bytes(8192, 2));
  EXPECT_GE(s.ratio_percent, 99.0);
  EXPECT_DOUBLE_EQ(s.reducing_speed, 0.0);
}

TEST(Sampler, ShortBlockSamplesWhatExists) {
  Sampler sampler(4096);
  const SampleResult s = sampler.sample(testdata::repetitive_text(100, 3));
  EXPECT_EQ(s.sample_bytes, 100u);
}

TEST(Sampler, EmptyBlockIsNeutral) {
  Sampler sampler(4096);
  const SampleResult s = sampler.sample(Bytes{});
  EXPECT_EQ(s.sample_bytes, 0u);
  EXPECT_DOUBLE_EQ(s.ratio_percent, 100.0);
}

TEST(Sampler, AsyncLaunchMatchesSyncResultShape) {
  Sampler sampler(4096);
  const Bytes block = testdata::repetitive_text(64 * 1024, 4);
  sampler.launch(block);
  EXPECT_TRUE(sampler.pending());
  const auto async_result = sampler.wait();
  ASSERT_TRUE(async_result.has_value());
  const SampleResult sync_result = sampler.sample(block);
  EXPECT_EQ(async_result->sample_bytes, sync_result.sample_bytes);
  EXPECT_DOUBLE_EQ(async_result->ratio_percent, sync_result.ratio_percent);
}

TEST(Sampler, WaitWithoutLaunchIsEmpty) {
  Sampler sampler;
  EXPECT_FALSE(sampler.pending());
  EXPECT_FALSE(sampler.wait().has_value());
}

TEST(Sampler, RejectsZeroPrefix) { EXPECT_THROW(Sampler(0), ConfigError); }

// ----------------------------------------------------------------- monitor

TEST(Monitor, NoSamplesMeansInfinitySemantics) {
  ReducingSpeedMonitor monitor;
  EXPECT_FALSE(monitor.has_sample(MethodId::kLempelZiv));
  EXPECT_DOUBLE_EQ(monitor.reduce_seconds(MethodId::kLempelZiv, 1 << 17), 0.0);
  EXPECT_DOUBLE_EQ(monitor.reducing_speed_or(MethodId::kLempelZiv, 7.0), 7.0);
}

TEST(Monitor, TracksReducingSpeed) {
  ReducingSpeedMonitor monitor;
  // 1000 -> 400 in 0.1 s: 6000 bytes removed per second.
  monitor.record(MethodId::kLempelZiv, 1000, 400, 0.1);
  EXPECT_NEAR(monitor.reducing_speed_or(MethodId::kLempelZiv, 0), 6000, 1);
  EXPECT_NEAR(monitor.reduce_seconds(MethodId::kLempelZiv, 6000), 1.0, 1e-6);
  EXPECT_NEAR(monitor.throughput_or(MethodId::kLempelZiv, 0), 10000, 1);
}

TEST(Monitor, ExpansionCountsAsZeroReduction) {
  ReducingSpeedMonitor monitor;
  monitor.record(MethodId::kHuffman, 1000, 1200, 0.1);
  EXPECT_DOUBLE_EQ(monitor.reducing_speed_or(MethodId::kHuffman, -1), 0.0);
}

TEST(Monitor, EwmaAdaptsToCpuLoadChange) {
  ReducingSpeedMonitor monitor(0.5);
  for (int i = 0; i < 10; ++i) {
    monitor.record(MethodId::kLempelZiv, 1000, 500, 0.001);  // fast CPU
  }
  const double fast = monitor.reducing_speed_or(MethodId::kLempelZiv, 0);
  for (int i = 0; i < 10; ++i) {
    monitor.record(MethodId::kLempelZiv, 1000, 500, 0.01);  // 10x slower
  }
  const double slow = monitor.reducing_speed_or(MethodId::kLempelZiv, 0);
  EXPECT_LT(slow, fast / 5);
}

TEST(Monitor, MethodsAreIndependent) {
  ReducingSpeedMonitor monitor;
  monitor.record(MethodId::kLempelZiv, 1000, 500, 0.1);
  EXPECT_TRUE(monitor.has_sample(MethodId::kLempelZiv));
  EXPECT_FALSE(monitor.has_sample(MethodId::kBurrowsWheeler));
  EXPECT_EQ(monitor.sample_count(MethodId::kLempelZiv), 1u);
}

TEST(Monitor, IgnoresNonPositiveElapsed) {
  ReducingSpeedMonitor monitor;
  monitor.record(MethodId::kLempelZiv, 1000, 500, 0.0);
  EXPECT_FALSE(monitor.has_sample(MethodId::kLempelZiv));
}

// -------------------------------------------------------------- calibrator

TEST(Calibrator, DerivesSaneConstantsFromCommercialData) {
  workloads::TransactionGenerator gen(1);
  const Bytes sample = gen.text_block(256 * 1024);
  const Calibrator calibrator;
  const CalibrationReport report = calibrator.calibrate(sample);

  // Structural sanity, not exact values: BW compresses harder than LZ,
  // beta sits above alpha, and the cut is in the plausible band.
  EXPECT_LT(report.bw_ratio_percent, report.lz_ratio_percent);
  EXPECT_GT(report.params.beta, report.params.alpha);
  EXPECT_GE(report.params.ratio_cut_percent, 30.0);
  EXPECT_LE(report.params.ratio_cut_percent, 70.0);
  EXPECT_NO_THROW(report.params.validate());
}

TEST(Calibrator, PaperConstantsAreWithinDerivedBallpark) {
  // The paper's alpha = 0.83 is our overlap-credit default by construction;
  // its beta = 3.48 should be the right order of magnitude on repetitive
  // commercial data.
  workloads::TransactionGenerator gen(2);
  const CalibrationReport report =
      Calibrator().calibrate(gen.text_block(512 * 1024));
  EXPECT_DOUBLE_EQ(report.params.alpha, 0.83);
  EXPECT_GT(report.params.beta, 1.0);
  EXPECT_LT(report.params.beta, 50.1);
}

TEST(Calibrator, RejectsTinySample) {
  EXPECT_THROW(Calibrator().calibrate(Bytes(100, 0)), ConfigError);
}

TEST(Calibrator, RejectsBadOverlapCredit) {
  EXPECT_THROW(Calibrator(0.0), ConfigError);
  EXPECT_THROW(Calibrator(1.5), ConfigError);
}

// ---------------------------------------------------- echo integration

TEST(CompressionHandler, RoundTripThroughHandlers) {
  const auto compress = make_compression_handler(MethodId::kLempelZiv);
  const auto decompress = make_decompression_handler();

  echo::Event event(testdata::repetitive_text(10000, 5));
  auto compressed = compress(event);
  ASSERT_TRUE(compressed.has_value());
  EXPECT_LT(compressed->payload.size(), event.payload.size());
  EXPECT_EQ(compressed->attributes.get_int(kMethodAttr),
            static_cast<int>(MethodId::kLempelZiv));
  EXPECT_EQ(compressed->attributes.get_int(kOriginalSizeAttr), 10000);

  const auto restored = decompress(*compressed);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->payload, event.payload);
  EXPECT_FALSE(restored->attributes.has(kMethodAttr));
}

TEST(CompressionHandler, DecompressionPassesRawEventsThrough) {
  const auto decompress = make_decompression_handler();
  echo::Event raw(to_bytes("uncompressed"));
  const auto out = decompress(raw);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload, raw.payload);
}

TEST(SwitchableCompressor, MethodChangesMidStream) {
  SwitchableCompressor compressor(MethodId::kNone);
  auto handler = compressor.handler();

  echo::Event event(testdata::repetitive_text(5000, 6));
  auto none = handler(event);
  compressor.set_method(MethodId::kBurrowsWheeler);
  auto bw = handler(event);
  ASSERT_TRUE(none && bw);
  EXPECT_GT(none->payload.size(), bw->payload.size());
  EXPECT_EQ(bw->attributes.get_int(kMethodAttr),
            static_cast<int>(MethodId::kBurrowsWheeler));
  EXPECT_EQ(compressor.events_compressed(), 2u);
}

TEST(SwitchableCompressor, ControlSinkAppliesConsumerRequest) {
  SwitchableCompressor compressor(MethodId::kNone);
  auto sink = compressor.control_sink();

  echo::AttributeMap request;
  request.set_int(kMethodAttr, static_cast<int>(MethodId::kLempelZiv));
  sink(request);
  EXPECT_EQ(compressor.method(), MethodId::kLempelZiv);
  EXPECT_EQ(compressor.switches_applied(), 1u);

  // Unknown method ids are ignored, not applied.
  request.set_int(kMethodAttr, 99);
  sink(request);
  EXPECT_EQ(compressor.method(), MethodId::kLempelZiv);
}

TEST(SwitchableCompressor, RejectsUnknownMethodProgrammatically) {
  SwitchableCompressor compressor;
  EXPECT_THROW(compressor.set_method(static_cast<MethodId>(123)),
               ConfigError);
}

TEST(ConsumerController, SignalsProducerWhenConditionsChange) {
  echo::EventChannel channel("data");
  VirtualClock clock;
  DecisionParams params;
  params.sample_size = 1024;
  ConsumerController controller(channel, clock, params);

  MethodId producer_method = MethodId::kNone;
  channel.on_control([&](const echo::AttributeMap& attrs) {
    if (const auto m = attrs.get_int(kMethodAttr)) {
      producer_method = static_cast<MethodId>(*m);
    }
  });

  // Slow arrivals of compressible raw events: the controller should decide
  // compression pays and signal the producer.
  workloads::TransactionGenerator gen(3);
  for (int i = 0; i < 6; ++i) {
    echo::Event event(gen.text_block(32 * 1024));
    controller.observe(event);
    clock.advance(2.0);  // 16 KB/s observed accept rate: very slow
  }
  EXPECT_NE(controller.current(), MethodId::kNone);
  EXPECT_EQ(producer_method, controller.current());
  EXPECT_GE(controller.switches(), 1u);
}

TEST(ConsumerController, FullLoopThroughSwitchableProducer) {
  // Producer compresses through a SwitchableCompressor; the consumer
  // controller watches the derived stream and steers the producer — the
  // complete §3.2 adaptation loop in-process.
  echo::EventBus bus;
  const auto raw = bus.create_channel("raw");
  SwitchableCompressor compressor(MethodId::kNone);
  const auto wire =
      bus.derive_channel(raw, compressor.handler(), "raw.compressed");
  bus.channel(wire).on_control(compressor.control_sink());

  VirtualClock clock;
  DecisionParams params;
  params.sample_size = 1024;
  // A 1 KiB sample of this text sits near the paper's 48.78 % cut; raise
  // the cut so the test deterministically lands in LZ/BW territory.
  params.ratio_cut_percent = 70.0;
  ConsumerController controller(bus.channel(wire), clock, params);

  std::size_t last_wire_size = 0;
  bus.channel(wire).subscribe([&](const echo::Event& e) {
    controller.observe(e);
    last_wire_size = e.payload.size();
  });

  workloads::TransactionGenerator gen(4);
  const std::size_t raw_size = 32 * 1024;
  for (int i = 0; i < 8; ++i) {
    bus.channel(raw).submit(echo::Event(gen.text_block(raw_size)));
    clock.advance(2.0);
  }
  // By the end the producer must have been switched to a compressing
  // method and the wire events must actually be smaller.
  EXPECT_NE(compressor.method(), MethodId::kNone);
  EXPECT_LT(last_wire_size, raw_size / 2);
}

}  // namespace
}  // namespace acex::adaptive
