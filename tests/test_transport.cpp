#include <gtest/gtest.h>

#include <thread>

#include "netsim/link.hpp"
#include "testdata.hpp"
#include "transport/sim_transport.hpp"
#include "transport/tcp_transport.hpp"
#include "util/error.hpp"

namespace acex::transport {
namespace {

netsim::LinkParams flat_link(double bps) {
  netsim::LinkParams p;
  p.bandwidth_Bps = bps;
  p.jitter_frac = 0;
  p.latency_s = 0;
  return p;
}

// ---------------------------------------------------------------- simulated

class SimTransportTest : public ::testing::Test {
 protected:
  VirtualClock clock_;
  netsim::SimLink forward_{flat_link(1000), 1};
  netsim::SimLink reverse_{flat_link(1000), 2};
  SimDuplex duplex_{forward_, reverse_, clock_};
};

TEST_F(SimTransportTest, MessageArrivesAtPeer) {
  duplex_.a().send(to_bytes("hello"));
  const auto got = duplex_.b().receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(to_string(*got), "hello");
  EXPECT_FALSE(duplex_.b().receive().has_value());
}

TEST_F(SimTransportTest, SendAdvancesVirtualClock) {
  duplex_.a().send(Bytes(1000, 0));  // 1000 B at 1000 B/s = 1 s
  EXPECT_NEAR(clock_.now(), 1.0, 1e-9);
  duplex_.a().send(Bytes(500, 0));
  EXPECT_NEAR(clock_.now(), 1.5, 1e-9);
}

TEST_F(SimTransportTest, DirectionsDoNotContend) {
  duplex_.a().send(Bytes(1000, 0));
  const Seconds after_forward = clock_.now();
  duplex_.b().send(Bytes(1000, 0));  // reverse link was idle the whole time
  // The reverse link's queue started at 0, so this takes 1 s from now.
  EXPECT_NEAR(clock_.now(), after_forward + 1.0, 1e-9);
  EXPECT_TRUE(duplex_.a().receive().has_value());
}

TEST_F(SimTransportTest, OrderingIsFifo) {
  duplex_.a().send(to_bytes("one"));
  duplex_.a().send(to_bytes("two"));
  EXPECT_EQ(to_string(*duplex_.b().receive()), "one");
  EXPECT_EQ(to_string(*duplex_.b().receive()), "two");
}

TEST_F(SimTransportTest, TracksBytesAndLastTransfer) {
  duplex_.a().send(Bytes(123, 0));
  EXPECT_EQ(duplex_.a().bytes_sent(), 123u);
  EXPECT_GT(duplex_.a().last_transfer().delivered, 0.0);
  EXPECT_EQ(duplex_.b().pending(), 1u);
}

TEST(SimDuplex, RejectsSharedLink) {
  VirtualClock clock;
  netsim::SimLink link(flat_link(1000), 1);
  EXPECT_THROW(SimDuplex(link, link, clock), ConfigError);
}

// ---------------------------------------------------------------------- tcp

TEST(TcpTransport, SocketPairRoundTrip) {
  auto [a, b] = socket_pair();
  const Bytes msg = testdata::random_bytes(100000, 5);
  a.send(msg);
  const auto got = b.receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, msg);
}

TEST(TcpTransport, EmptyMessageRoundTrip) {
  auto [a, b] = socket_pair();
  a.send(Bytes{});
  const auto got = b.receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
}

TEST(TcpTransport, ShutdownYieldsEndOfStream) {
  auto [a, b] = socket_pair();
  a.send(to_bytes("last"));
  a.shutdown_send();
  EXPECT_TRUE(b.receive().has_value());
  EXPECT_FALSE(b.receive().has_value());
}

TEST(TcpTransport, ListenerAcceptsLoopbackConnection) {
  TcpListener listener(0);
  ASSERT_GT(listener.port(), 0);

  std::thread client([port = listener.port()] {
    TcpTransport t = tcp_connect(port);
    t.send(to_bytes("ping"));
    const auto reply = t.receive();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(to_string(*reply), "pong");
  });

  TcpTransport server = listener.accept();
  const auto got = server.receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(to_string(*got), "ping");
  server.send(to_bytes("pong"));
  client.join();
}

TEST(TcpTransport, ManyMessagesPreserveOrderAndContent) {
  auto [a, b] = socket_pair();
  std::thread sender([&a] {
    Rng rng(9);
    for (int i = 0; i < 200; ++i) {
      a.send(rng.bytes(1 + rng.below(5000)));
    }
    a.shutdown_send();
  });
  Rng rng(9);
  int received = 0;
  while (const auto msg = b.receive()) {
    const Bytes expected = rng.bytes(1 + rng.below(5000));
    ASSERT_EQ(*msg, expected);
    ++received;
  }
  sender.join();
  EXPECT_EQ(received, 200);
}

TEST(TcpTransport, MoveTransfersOwnership) {
  auto [a, b] = socket_pair();
  TcpTransport moved = std::move(a);
  moved.send(to_bytes("x"));
  EXPECT_TRUE(b.receive().has_value());
}

TEST(TcpTransport, RejectsInvalidDescriptor) {
  EXPECT_THROW(TcpTransport(-1), ConfigError);
}

}  // namespace
}  // namespace acex::transport
