#include <gtest/gtest.h>

#include <limits>

#include "compress/frame.hpp"
#include "compress/null_codec.hpp"
#include "compress/registry.hpp"
#include "compress/zlib_codec.hpp"
#include "testdata.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/varint.hpp"

namespace acex {
namespace {

class FrameTest : public ::testing::Test {
 protected:
  CodecRegistry registry_ = CodecRegistry::with_builtins();
};

TEST_F(FrameTest, RoundTripsEveryBuiltinMethod) {
  const Bytes data = testdata::repetitive_text(20000, 1);
  for (const MethodId id : registry_.methods()) {
    const CodecPtr codec = registry_.create(id);
    const Bytes framed = frame_compress(*codec, data);
    EXPECT_EQ(frame_decompress(framed, registry_), data)
        << method_name(id);
  }
}

TEST_F(FrameTest, ParseExposesMethodAndPayload) {
  NullCodec null;
  const Bytes data = testdata::random_bytes(100, 2);
  const Bytes framed = frame_compress(null, data);
  const Frame frame = frame_parse(framed);
  EXPECT_EQ(frame.method, MethodId::kNone);
  EXPECT_EQ(frame.payload, data);
  EXPECT_EQ(framed.size(), data.size() + frame_overhead(data.size()));
}

TEST_F(FrameTest, EmptyPayloadRoundTrips) {
  NullCodec null;
  const Bytes framed = frame_compress(null, Bytes{});
  EXPECT_TRUE(frame_decompress(framed, registry_).empty());
}

TEST_F(FrameTest, DetectsPayloadCorruption) {
  const CodecPtr codec = registry_.create(MethodId::kHuffman);
  Bytes framed = frame_compress(*codec, testdata::low_entropy(4096, 3));
  framed[framed.size() / 2] ^= 0x01;
  EXPECT_THROW(frame_decompress(framed, registry_), DecodeError);
}

TEST_F(FrameTest, DetectsCrcCorruption) {
  NullCodec null;
  Bytes framed = frame_compress(null, testdata::random_bytes(64, 4));
  framed.back() ^= 0xFF;  // CRC trailer
  EXPECT_THROW(frame_decompress(framed, registry_), DecodeError);
}

TEST_F(FrameTest, RejectsBadMagic) {
  NullCodec null;
  Bytes framed = frame_compress(null, testdata::random_bytes(64, 5));
  framed[0] = 'Z';
  EXPECT_THROW(frame_parse(framed), DecodeError);
}

TEST_F(FrameTest, RejectsBadVersion) {
  NullCodec null;
  Bytes framed = frame_compress(null, testdata::random_bytes(64, 6));
  framed[2] = 99;
  EXPECT_THROW(frame_parse(framed), DecodeError);
}

TEST_F(FrameTest, RejectsTruncatedFrame) {
  NullCodec null;
  Bytes framed = frame_compress(null, testdata::random_bytes(64, 7));
  framed.resize(framed.size() - 5);
  EXPECT_THROW(frame_parse(framed), DecodeError);
}

TEST_F(FrameTest, RejectsTooShortBuffer) {
  EXPECT_THROW(frame_parse(Bytes{0x41}), DecodeError);
}

TEST_F(FrameTest, UnknownMethodIdIsCorruptWireData) {
  // An id the registry does not know arrived off the wire: that is damage
  // (or a newer dialect), not caller misuse — DecodeError, not ConfigError,
  // so recovery policies can quarantine the frame like any other bad one.
  NullCodec null;
  Bytes framed = frame_compress(null, testdata::random_bytes(64, 8));
  framed[3] = 77;  // unregistered method id
  EXPECT_THROW(frame_decompress(framed, registry_), DecodeError);
}

TEST_F(FrameTest, SeqFrameRoundTripsEveryBuiltinMethod) {
  const Bytes data = testdata::repetitive_text(20000, 10);
  std::uint64_t seq = 1;
  for (const MethodId id : registry_.methods()) {
    const CodecPtr codec = registry_.create(id);
    const Bytes framed = frame_compress_seq(*codec, data, seq);
    const Frame frame = frame_parse(framed);
    EXPECT_EQ(frame.version, kFrameVersionSeq) << method_name(id);
    EXPECT_TRUE(frame.has_sequence);
    EXPECT_EQ(frame.sequence, seq);
    EXPECT_EQ(frame_decompress(framed, registry_), data) << method_name(id);
    seq = seq * 1000 + 7;  // exercise multi-byte sequence varints
  }
}

TEST_F(FrameTest, SeqFrameOverheadMatches) {
  NullCodec null;
  const Bytes data = testdata::random_bytes(300, 11);
  const std::uint64_t seq = 300;  // two-byte varint
  const Bytes framed = frame_compress_seq(null, data, seq);
  EXPECT_EQ(framed.size(), data.size() + frame_overhead_seq(data.size(), seq));
}

TEST_F(FrameTest, EmptySeqFrameRoundTrips) {
  NullCodec null;
  const Bytes framed = frame_compress_seq(null, Bytes{}, 0);
  const Frame frame = frame_parse(framed);
  EXPECT_TRUE(frame.has_sequence);
  EXPECT_EQ(frame.sequence, 0u);
  EXPECT_TRUE(frame_decompress(framed, registry_).empty());
}

TEST_F(FrameTest, HeaderChecksumCatchesSequenceCorruption) {
  NullCodec null;
  Bytes framed = frame_compress_seq(null, testdata::random_bytes(64, 12),
                                    0x3FFF);  // two-byte sequence varint
  framed[4] ^= 0x10;  // inside the sequence varint
  EXPECT_THROW(frame_parse(framed), DecodeError);
}

TEST_F(FrameTest, HeaderChecksumCatchesSizeCorruption) {
  // A damaged size varint must fail the header checksum before it can
  // misdirect the payload bounds.
  NullCodec null;
  Bytes framed = frame_compress_seq(null, testdata::random_bytes(64, 13), 1);
  framed[5] ^= 0x01;  // size varint: magic(2) + version + method + seq(1)
  EXPECT_THROW(frame_parse(framed), DecodeError);
}

TEST_F(FrameTest, SeqFrameTruncationsRejected) {
  NullCodec null;
  const Bytes framed =
      frame_compress_seq(null, testdata::random_bytes(64, 14), 5);
  for (const std::size_t keep :
       {framed.size() - 1, framed.size() - 5, std::size_t{10}, std::size_t{4},
        std::size_t{0}}) {
    const Bytes cut(framed.begin(),
                    framed.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW(frame_parse(cut), DecodeError) << "kept " << keep;
  }
}

TEST_F(FrameTest, MinimumV1FrameIsNineBytes) {
  NullCodec null;
  const Bytes framed = frame_compress(null, Bytes{});
  ASSERT_EQ(framed.size(), 9u);  // the smallest well-formed v1 frame
  EXPECT_NO_THROW(frame_parse(framed));
  const Bytes eight(framed.begin(), framed.begin() + 8);
  EXPECT_THROW(frame_parse(eight), DecodeError);
}

TEST_F(FrameTest, HugePayloadSizeVarintCannotWrapBounds) {
  // Adversarial size varint near UINT64_MAX: a naive `pos + size + 4`
  // bound check wraps around; the parser must reject, not read OOB.
  Bytes framed = {'A', 'X', 1, 0};
  put_varint(framed, std::numeric_limits<std::uint64_t>::max() - 2);
  framed.insert(framed.end(), 8, 0xAB);
  EXPECT_THROW(frame_parse(framed), DecodeError);
}

TEST_F(FrameTest, OverlongVarintRejected) {
  Bytes framed = {'A', 'X', 1, 0};
  framed.insert(framed.end(), 10, 0xFF);  // never-terminating varint
  EXPECT_THROW(frame_parse(framed), DecodeError);
}

TEST_F(FrameTest, LegacyV1LayoutStillDecodes) {
  // Hand-crafted seed-era layout: "AX" | 1 | method | varint size |
  // payload | crc32(original) LE. Byte-for-byte what pre-sequence senders
  // emit — it must keep decoding forever.
  const Bytes payload = {'h', 'e', 'l', 'l', 'o'};
  Bytes framed = {'A', 'X', 1, 0};
  put_varint(framed, payload.size());
  framed.insert(framed.end(), payload.begin(), payload.end());
  const std::uint32_t crc = crc32(payload);
  for (int i = 0; i < 4; ++i) {
    framed.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  const Frame frame = frame_parse(framed);
  EXPECT_EQ(frame.version, kFrameVersion);
  EXPECT_FALSE(frame.has_sequence);
  EXPECT_EQ(frame_decompress(framed, registry_), payload);
}

// --------------------------- v1 <-> v2 cross-version differential (§10)
// The two frame dialects are envelopes around the *same* codec output:
// byte-identical payload, method and CRC, decoding to the same data, with
// the v2 overhead being exactly the sequence varint plus one checksum
// byte. Regression-pins the compat path acexfuzz's cross_version oracle
// fuzzes.

TEST_F(FrameTest, CrossVersionEnvelopesCarryIdenticalCodecOutput) {
  const Bytes data = testdata::repetitive_text(12000, 21);
  for (const MethodId id : registry_.methods()) {
    const CodecPtr codec_v1 = registry_.create(id);
    const CodecPtr codec_v2 = registry_.create(id);
    const std::uint64_t seq = 0x4000;  // three-varint-byte territory
    const Bytes v1 = frame_compress(*codec_v1, data);
    const Bytes v2 = frame_compress_seq(*codec_v2, data, seq);

    const Frame f1 = frame_parse(v1);
    const Frame f2 = frame_parse(v2);
    EXPECT_FALSE(f1.has_sequence) << method_name(id);
    ASSERT_TRUE(f2.has_sequence) << method_name(id);
    EXPECT_EQ(f2.sequence, seq);
    EXPECT_EQ(f1.method, f2.method) << method_name(id);
    EXPECT_EQ(f1.crc, f2.crc) << method_name(id);
    EXPECT_TRUE(f1.payload == f2.payload) << method_name(id);

    EXPECT_EQ(v2.size(), v1.size() + varint_size(seq) + 1) << method_name(id);
    EXPECT_EQ(frame_decompress(v1, registry_), data) << method_name(id);
    EXPECT_EQ(frame_decompress(v2, registry_), data) << method_name(id);
  }
}

TEST_F(FrameTest, CrossVersionOverheadTracksSequenceVarintWidth) {
  const Bytes data = testdata::low_entropy(3000, 22);
  const CodecPtr base = registry_.create(MethodId::kLempelZiv);
  const Bytes v1 = frame_compress(*base, data);
  for (const std::uint64_t seq :
       {std::uint64_t{0}, std::uint64_t{0x7F}, std::uint64_t{0x80},
        std::uint64_t{0x3FFF}, std::uint64_t{0x4000},
        std::numeric_limits<std::uint64_t>::max()}) {
    const CodecPtr codec = registry_.create(MethodId::kLempelZiv);
    const Bytes v2 = frame_compress_seq(*codec, data, seq);
    EXPECT_EQ(v2.size(), v1.size() + varint_size(seq) + 1) << "seq " << seq;
    EXPECT_EQ(frame_decompress(v2, registry_), data) << "seq " << seq;
  }
}

TEST_F(FrameTest, V2BodySurvivesAsV1AfterEnvelopeTransplant) {
  // Strip a v2 frame's sequence varint and checksum byte, rewrite the
  // version byte, and the result must be a well-formed v1 frame carrying
  // the same payload — the compat path is an envelope change only.
  const Bytes data = testdata::repetitive_text(5000, 23);
  const CodecPtr codec = registry_.create(MethodId::kHuffman);
  const Bytes v2 = frame_compress_seq(*codec, data, 0x1234);

  Bytes v1(v2);
  v1[2] = 1;  // version byte back to v1
  // Layout: "AX" ver method | seq varint | size varint | checksum | ...
  const std::size_t seq_pos = 4;
  std::size_t pos = seq_pos;
  (void)get_varint(v2, &pos);        // skip the sequence varint
  std::size_t size_end = pos;
  (void)get_varint(v2, &size_end);   // size varint ends here; checksum next
  v1.erase(v1.begin() + static_cast<std::ptrdiff_t>(size_end),
           v1.begin() + static_cast<std::ptrdiff_t>(size_end) + 1);
  v1.erase(v1.begin() + seq_pos,
           v1.begin() + static_cast<std::ptrdiff_t>(pos));

  const Frame parsed = frame_parse(v1);
  EXPECT_FALSE(parsed.has_sequence);
  EXPECT_EQ(parsed.method, MethodId::kHuffman);
  EXPECT_EQ(frame_decompress(v1, registry_), data);
}

TEST(Registry, CreateAllBuiltins) {
  const CodecRegistry reg = CodecRegistry::with_builtins();
  for (const MethodId id :
       {MethodId::kNone, MethodId::kHuffman, MethodId::kArithmetic,
        MethodId::kLempelZiv, MethodId::kBurrowsWheeler}) {
    EXPECT_TRUE(reg.contains(id));
    EXPECT_EQ(reg.create(id)->id(), id);
  }
}

TEST(Registry, RuntimeRegistrationOfNewMethod) {
  // §3.2: "a new compression method can be introduced at any time".
  CodecRegistry reg = CodecRegistry::with_builtins();
  const auto custom_id = static_cast<MethodId>(200);
  EXPECT_FALSE(reg.contains(custom_id));
  reg.register_factory(custom_id, [] { return CodecPtr(new NullCodec); });
  EXPECT_TRUE(reg.contains(custom_id));
  EXPECT_NE(reg.create(custom_id), nullptr);
}

TEST(Registry, UnregisteredIdThrows) {
  const CodecRegistry reg = CodecRegistry::with_builtins();
  EXPECT_THROW(reg.create(static_cast<MethodId>(222)), ConfigError);
}

TEST(Registry, EmptyFactoryRejected) {
  CodecRegistry reg;
  EXPECT_THROW(reg.register_factory(MethodId::kNone, nullptr), ConfigError);
}

TEST(Registry, PaperMethodsAreTheEvaluationSet) {
  const auto& methods = paper_methods();
  ASSERT_EQ(methods.size(), 4u);
  EXPECT_EQ(methods[0], MethodId::kBurrowsWheeler);
  EXPECT_EQ(methods[3], MethodId::kHuffman);
}

TEST(MethodNames, RoundTrip) {
  for (const MethodId id :
       {MethodId::kNone, MethodId::kHuffman, MethodId::kArithmetic,
        MethodId::kLempelZiv, MethodId::kBurrowsWheeler, MethodId::kZlib}) {
    EXPECT_EQ(method_from_name(method_name(id)), id);
  }
  EXPECT_THROW(method_from_name("bogus"), ConfigError);
}

TEST(Zlib, ComparatorRoundTripsWhenAvailable) {
  if (!zlib_available()) GTEST_SKIP() << "zlib not compiled in";
  const CodecPtr codec = make_codec(MethodId::kZlib);
  const Bytes data = testdata::repetitive_text(50000, 9);
  EXPECT_EQ(codec->decompress(codec->compress(data)), data);
}

}  // namespace
}  // namespace acex
