#include <gtest/gtest.h>

#include "compress/frame.hpp"
#include "compress/null_codec.hpp"
#include "compress/registry.hpp"
#include "compress/zlib_codec.hpp"
#include "testdata.hpp"
#include "util/error.hpp"

namespace acex {
namespace {

class FrameTest : public ::testing::Test {
 protected:
  CodecRegistry registry_ = CodecRegistry::with_builtins();
};

TEST_F(FrameTest, RoundTripsEveryBuiltinMethod) {
  const Bytes data = testdata::repetitive_text(20000, 1);
  for (const MethodId id : registry_.methods()) {
    const CodecPtr codec = registry_.create(id);
    const Bytes framed = frame_compress(*codec, data);
    EXPECT_EQ(frame_decompress(framed, registry_), data)
        << method_name(id);
  }
}

TEST_F(FrameTest, ParseExposesMethodAndPayload) {
  NullCodec null;
  const Bytes data = testdata::random_bytes(100, 2);
  const Bytes framed = frame_compress(null, data);
  const Frame frame = frame_parse(framed);
  EXPECT_EQ(frame.method, MethodId::kNone);
  EXPECT_EQ(frame.payload, data);
  EXPECT_EQ(framed.size(), data.size() + frame_overhead(data.size()));
}

TEST_F(FrameTest, EmptyPayloadRoundTrips) {
  NullCodec null;
  const Bytes framed = frame_compress(null, Bytes{});
  EXPECT_TRUE(frame_decompress(framed, registry_).empty());
}

TEST_F(FrameTest, DetectsPayloadCorruption) {
  const CodecPtr codec = registry_.create(MethodId::kHuffman);
  Bytes framed = frame_compress(*codec, testdata::low_entropy(4096, 3));
  framed[framed.size() / 2] ^= 0x01;
  EXPECT_THROW(frame_decompress(framed, registry_), DecodeError);
}

TEST_F(FrameTest, DetectsCrcCorruption) {
  NullCodec null;
  Bytes framed = frame_compress(null, testdata::random_bytes(64, 4));
  framed.back() ^= 0xFF;  // CRC trailer
  EXPECT_THROW(frame_decompress(framed, registry_), DecodeError);
}

TEST_F(FrameTest, RejectsBadMagic) {
  NullCodec null;
  Bytes framed = frame_compress(null, testdata::random_bytes(64, 5));
  framed[0] = 'Z';
  EXPECT_THROW(frame_parse(framed), DecodeError);
}

TEST_F(FrameTest, RejectsBadVersion) {
  NullCodec null;
  Bytes framed = frame_compress(null, testdata::random_bytes(64, 6));
  framed[2] = 99;
  EXPECT_THROW(frame_parse(framed), DecodeError);
}

TEST_F(FrameTest, RejectsTruncatedFrame) {
  NullCodec null;
  Bytes framed = frame_compress(null, testdata::random_bytes(64, 7));
  framed.resize(framed.size() - 5);
  EXPECT_THROW(frame_parse(framed), DecodeError);
}

TEST_F(FrameTest, RejectsTooShortBuffer) {
  EXPECT_THROW(frame_parse(Bytes{0x41}), DecodeError);
}

TEST_F(FrameTest, UnknownMethodIdThrowsConfigError) {
  NullCodec null;
  Bytes framed = frame_compress(null, testdata::random_bytes(64, 8));
  framed[3] = 77;  // unregistered method id
  EXPECT_THROW(frame_decompress(framed, registry_), ConfigError);
}

TEST(Registry, CreateAllBuiltins) {
  const CodecRegistry reg = CodecRegistry::with_builtins();
  for (const MethodId id :
       {MethodId::kNone, MethodId::kHuffman, MethodId::kArithmetic,
        MethodId::kLempelZiv, MethodId::kBurrowsWheeler}) {
    EXPECT_TRUE(reg.contains(id));
    EXPECT_EQ(reg.create(id)->id(), id);
  }
}

TEST(Registry, RuntimeRegistrationOfNewMethod) {
  // §3.2: "a new compression method can be introduced at any time".
  CodecRegistry reg = CodecRegistry::with_builtins();
  const auto custom_id = static_cast<MethodId>(200);
  EXPECT_FALSE(reg.contains(custom_id));
  reg.register_factory(custom_id, [] { return CodecPtr(new NullCodec); });
  EXPECT_TRUE(reg.contains(custom_id));
  EXPECT_NE(reg.create(custom_id), nullptr);
}

TEST(Registry, UnregisteredIdThrows) {
  const CodecRegistry reg = CodecRegistry::with_builtins();
  EXPECT_THROW(reg.create(static_cast<MethodId>(222)), ConfigError);
}

TEST(Registry, EmptyFactoryRejected) {
  CodecRegistry reg;
  EXPECT_THROW(reg.register_factory(MethodId::kNone, nullptr), ConfigError);
}

TEST(Registry, PaperMethodsAreTheEvaluationSet) {
  const auto& methods = paper_methods();
  ASSERT_EQ(methods.size(), 4u);
  EXPECT_EQ(methods[0], MethodId::kBurrowsWheeler);
  EXPECT_EQ(methods[3], MethodId::kHuffman);
}

TEST(MethodNames, RoundTrip) {
  for (const MethodId id :
       {MethodId::kNone, MethodId::kHuffman, MethodId::kArithmetic,
        MethodId::kLempelZiv, MethodId::kBurrowsWheeler, MethodId::kZlib}) {
    EXPECT_EQ(method_from_name(method_name(id)), id);
  }
  EXPECT_THROW(method_from_name("bogus"), ConfigError);
}

TEST(Zlib, ComparatorRoundTripsWhenAvailable) {
  if (!zlib_available()) GTEST_SKIP() << "zlib not compiled in";
  const CodecPtr codec = make_codec(MethodId::kZlib);
  const Bytes data = testdata::repetitive_text(50000, 9);
  EXPECT_EQ(codec->decompress(codec->compress(data)), data);
}

}  // namespace
}  // namespace acex
