#include <gtest/gtest.h>

#include "netsim/bandwidth.hpp"
#include "netsim/cpu_model.hpp"
#include "netsim/link.hpp"
#include "netsim/load_trace.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace acex::netsim {
namespace {

// -------------------------------------------------------------- load trace

TEST(LoadTrace, StepFunctionSemantics) {
  const LoadTrace trace({{0, 1}, {10, 5}, {20, 2}});
  EXPECT_DOUBLE_EQ(trace.value_at(-1), 0.0);
  EXPECT_DOUBLE_EQ(trace.value_at(0), 1.0);
  EXPECT_DOUBLE_EQ(trace.value_at(9.99), 1.0);
  EXPECT_DOUBLE_EQ(trace.value_at(10), 5.0);
  EXPECT_DOUBLE_EQ(trace.value_at(15), 5.0);
  EXPECT_DOUBLE_EQ(trace.value_at(20), 2.0);
  EXPECT_DOUBLE_EQ(trace.value_at(1000), 2.0);  // holds past the end
}

TEST(LoadTrace, RejectsUnsortedTimes) {
  EXPECT_THROW(LoadTrace({{5, 1}, {5, 2}}), ConfigError);
  EXPECT_THROW(LoadTrace({{5, 1}, {3, 2}}), ConfigError);
}

TEST(LoadTrace, RejectsNegativeLoad) {
  EXPECT_THROW(LoadTrace({{0, -1}}), ConfigError);
}

TEST(LoadTrace, ScaledMultipliesValues) {
  const LoadTrace trace({{0, 2}, {10, 4}});
  const LoadTrace x4 = trace.scaled(4.0);
  EXPECT_DOUBLE_EQ(x4.value_at(0), 8.0);
  EXPECT_DOUBLE_EQ(x4.value_at(10), 16.0);
  EXPECT_DOUBLE_EQ(x4.peak(), 16.0);
}

TEST(LoadTrace, ParseTextFormat) {
  const LoadTrace trace = LoadTrace::parse(
      "# MBone-style trace\n"
      "0 0\n"
      "10 3.5\n"
      "\n"
      "20 7\n");
  EXPECT_DOUBLE_EQ(trace.value_at(12), 3.5);
  EXPECT_DOUBLE_EQ(trace.duration(), 20.0);
}

TEST(LoadTrace, ParseRejectsGarbage) {
  EXPECT_THROW(LoadTrace::parse("abc def\n"), ConfigError);
}

TEST(LoadTrace, BuiltinMboneMatchesFigure7Shape) {
  const LoadTrace& trace = mbone_trace();
  EXPECT_DOUBLE_EQ(trace.duration(), 160.0);
  // Quiet start, peak of ~17 around t = 60..100, decayed end.
  EXPECT_LT(trace.value_at(2), 2.0);
  EXPECT_NEAR(trace.peak(), 17.0, 2.0);
  double peak_window = 0;
  for (double t = 60; t <= 100; t += 2) {
    peak_window = std::max(peak_window, trace.value_at(t));
  }
  EXPECT_GT(peak_window, 14.0);
  EXPECT_LT(trace.value_at(158), 4.0);
}

// -------------------------------------------------------------------- link

TEST(SimLink, UnloadedSpeedMatchesFigure5Presets) {
  // Means within ~3 std-devs over many 128 KiB transfers.
  for (const LinkParams& params : figure5_links()) {
    SimLink link(params, 7);
    RunningStats speed;
    Seconds t = 0;
    for (int i = 0; i < 300; ++i) {
      const auto r = link.transmit(128 * 1024, t);
      speed.add(128.0 * 1024 /
                (r.delivered - r.started - params.latency_s));
      t = r.delivered;
    }
    EXPECT_NEAR(speed.mean() / params.bandwidth_Bps, 1.0, 0.1)
        << params.name;
  }
}

TEST(SimLink, JitterReproducesFigure5StdDevs) {
  // The international link's 46 % vs the gigabit link's 0.78 %.
  SimLink intl(international_link(), 3);
  SimLink giga(gigabit_link(), 3);
  RunningStats intl_speed, giga_speed;
  Seconds t1 = 0, t2 = 0;
  for (int i = 0; i < 500; ++i) {
    const auto a = intl.transmit(64 * 1024, t1);
    t1 = a.delivered;
    intl_speed.add(a.effective_Bps);
    const auto b = giga.transmit(64 * 1024, t2);
    t2 = b.delivered;
    giga_speed.add(b.effective_Bps);
  }
  EXPECT_GT(intl_speed.stddev_percent(), 25.0);
  EXPECT_LT(giga_speed.stddev_percent(), 3.0);
}

TEST(SimLink, FifoQueueingSerializesTransfers) {
  LinkParams params;
  params.bandwidth_Bps = 1000;  // 1 KB/s: 1000 bytes take 1 s
  params.jitter_frac = 0;
  SimLink link(params, 1);
  const auto first = link.transmit(1000, 0.0);
  EXPECT_NEAR(first.delivered, 1.0, 1e-6);
  // Submitted while busy: must wait for the queue.
  const auto second = link.transmit(1000, 0.1);
  EXPECT_NEAR(second.started, 1.0, 1e-6);
  EXPECT_NEAR(second.delivered, 2.0, 1e-6);
}

TEST(SimLink, BackgroundLoadThrottles) {
  LinkParams params;
  params.bandwidth_Bps = 1e6;
  params.jitter_frac = 0;
  params.share_per_connection = 0.01;
  SimLink link(params, 1);
  const LoadTrace trace({{0, 0}, {10, 68}});  // 68 % consumed after t=10
  link.set_background(&trace);
  EXPECT_DOUBLE_EQ(link.effective_bandwidth(5), 1e6);
  EXPECT_NEAR(link.effective_bandwidth(15), 0.32e6, 1e3);
}

TEST(SimLink, BackgroundLoadRespectsFloor) {
  LinkParams params;
  params.bandwidth_Bps = 1e6;
  params.share_per_connection = 0.1;
  SimLink link(params, 1);
  const LoadTrace trace({{0, 1000}});  // would consume 100x the link
  link.set_background(&trace, 0.07);
  EXPECT_NEAR(link.effective_bandwidth(0), 0.07e6, 1e3);
}

TEST(SimLink, LossInflatesDuration) {
  LinkParams lossy;
  lossy.bandwidth_Bps = 1e6;
  lossy.jitter_frac = 0;
  lossy.loss_rate = 0.5;
  SimLink link(lossy, 11);
  double retransmissions = 0;
  Seconds t = 0;
  for (int i = 0; i < 200; ++i) {
    const auto r = link.transmit(1000, t);
    retransmissions += r.retransmissions;
    t = r.delivered;
  }
  EXPECT_GT(retransmissions, 100.0);  // ~1 retransmission per transfer
}

TEST(SimLink, DeterministicForSameSeed) {
  SimLink a(international_link(), 42);
  SimLink b(international_link(), 42);
  for (int i = 0; i < 50; ++i) {
    const auto ra = a.transmit(4096, 0);
    const auto rb = b.transmit(4096, 0);
    EXPECT_DOUBLE_EQ(ra.delivered, rb.delivered);
  }
}

TEST(SimLink, RejectsInvalidParams) {
  LinkParams bad;
  bad.bandwidth_Bps = 0;
  EXPECT_THROW(SimLink(bad, 1), ConfigError);
  LinkParams lossy;
  lossy.loss_rate = 1.0;
  EXPECT_THROW(SimLink(lossy, 1), ConfigError);
}

TEST(SimLink, ResetClearsQueue) {
  LinkParams params;
  params.bandwidth_Bps = 1000;
  params.jitter_frac = 0;
  SimLink link(params, 1);
  link.transmit(5000, 0);
  EXPECT_GT(link.busy_until(), 0.0);
  link.reset();
  EXPECT_DOUBLE_EQ(link.busy_until(), 0.0);
}

// --------------------------------------------------------------- estimator

TEST(BandwidthEstimator, NoSamplesUsesFallback) {
  BandwidthEstimator est;
  EXPECT_FALSE(est.has_estimate());
  EXPECT_DOUBLE_EQ(est.estimate_or(123.0), 123.0);
}

TEST(BandwidthEstimator, ConvergesToSteadyRate) {
  BandwidthEstimator est;
  for (int i = 0; i < 50; ++i) est.record(1000, 0.01);  // 100 KB/s
  EXPECT_NEAR(est.estimate_or(0), 1e5, 1e3);
}

TEST(BandwidthEstimator, ReactsToLoadDrop) {
  BandwidthEstimator est;
  for (int i = 0; i < 20; ++i) est.record(1000, 0.001);  // 1 MB/s
  for (int i = 0; i < 8; ++i) est.record(1000, 0.01);    // drops to 100 KB/s
  EXPECT_LT(est.estimate_or(0), 3e5);
}

TEST(BandwidthEstimator, IgnoresNonPositiveDurations) {
  BandwidthEstimator est;
  est.record(1000, 0.0);
  est.record(1000, -1.0);
  EXPECT_FALSE(est.has_estimate());
  EXPECT_EQ(est.sample_count(), 0u);
}

TEST(BandwidthEstimator, PessimisticUnderOutliers) {
  // A single fast outlier must not balloon the estimate (min of EWMA and
  // window mean).
  BandwidthEstimator est;
  for (int i = 0; i < 10; ++i) est.record(1000, 0.01);  // 100 KB/s
  est.record(1000, 0.0001);                             // 10 MB/s outlier
  EXPECT_LT(est.estimate_or(0), 2.5e6);
}

// --------------------------------------------------------------- cpu model

TEST(CpuModel, ScalingPreservesSizesAndScalesTimes) {
  CompressionMeasurement m;
  m.original_size = 1000;
  m.compressed_size = 400;
  m.compress_time = 1.0;
  m.decompress_time = 0.5;
  const auto slow = ultra_sparc().apply(m);
  EXPECT_EQ(slow.compressed_size, 400u);
  EXPECT_NEAR(slow.compress_time, 1.0 / 0.45, 1e-9);
  EXPECT_NEAR(slow.reducing_speed(), m.reducing_speed() * 0.45, 1e-6);
}

TEST(CpuModel, Figure4CpusOrdered) {
  const auto cpus = figure4_cpus();
  ASSERT_EQ(cpus.size(), 2u);
  EXPECT_GT(cpus[0].speed_factor, cpus[1].speed_factor);
}

}  // namespace
}  // namespace acex::netsim
