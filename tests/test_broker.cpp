#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "adaptive/pipeline.hpp"
#include "broker/broker.hpp"
#include "netsim/link.hpp"
#include "obs/metrics.hpp"
#include "testdata.hpp"
#include "transport/fault_transport.hpp"
#include "transport/sim_transport.hpp"
#include "util/error.hpp"

namespace acex::broker {
namespace {

netsim::LinkParams flat(double bandwidth_Bps = 1e6) {
  netsim::LinkParams p;
  p.bandwidth_Bps = bandwidth_Bps;
  p.jitter_frac = 0;
  return p;
}

/// Thread-safe frame sink for the concurrency tests (SimDuplex is
/// single-threaded by design, so churn/blocking tests use this instead).
class SinkTransport final : public transport::Transport {
 public:
  void send(ByteView message) override {
    std::lock_guard<std::mutex> lock(mutex_);
    ++frames_;
    bytes_ += message.size();
  }
  std::optional<Bytes> receive() override { return std::nullopt; }
  const Clock& clock() const override { return clock_; }

  std::uint64_t frames() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return frames_;
  }

 private:
  mutable std::mutex mutex_;
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
  MonotonicClock clock_;
};

Bytes compressible_block(std::size_t size, std::uint64_t seed) {
  return testdata::low_entropy(size, seed);
}

/// One simulated subscriber endpoint: its own duplex link pair, with the
/// broker writing into a() and the receiver draining b().
struct SimEndpoint {
  explicit SimEndpoint(VirtualClock& clock, double bandwidth_Bps = 1e6,
                       std::uint64_t seed = 1)
      : forward(flat(bandwidth_Bps), seed),
        reverse(flat(bandwidth_Bps), seed + 1000),
        duplex(forward, reverse, clock) {}

  netsim::SimLink forward;
  netsim::SimLink reverse;
  transport::SimDuplex duplex;
};

// ------------------------------------------------------- group formation

TEST(BrokerGroups, HomogeneousSubscribersFormOneGroupPerBlock) {
  VirtualClock clock;
  std::vector<std::unique_ptr<SimEndpoint>> endpoints;
  FanoutBroker broker;
  std::vector<SubscriberId> ids;
  for (int i = 0; i < 4; ++i) {
    endpoints.push_back(std::make_unique<SimEndpoint>(clock, 1e6, 10 + i));
    ids.push_back(broker.subscribe(endpoints.back()->duplex.a()));
  }

  const Bytes block = compressible_block(8 * 1024, 7);
  const int kBlocks = 5;
  for (int i = 0; i < kBlocks; ++i) {
    broker.publish(block);
    broker.pump_all();
  }

  const BrokerStats stats = broker.stats();
  EXPECT_EQ(stats.blocks, static_cast<std::uint64_t>(kBlocks));
  // Identical configs + identical measured links + one shared sample per
  // block => every subscriber picks the same method => exactly one codec
  // run per block, K-1 cache hits.
  EXPECT_EQ(stats.encodes, static_cast<std::uint64_t>(kBlocks));
  EXPECT_EQ(stats.cache_misses, stats.encodes);
  EXPECT_EQ(stats.cache_hits, static_cast<std::uint64_t>(kBlocks * 3));
  EXPECT_EQ(stats.last_groups, 1u);
  for (const SubscriberId id : ids) {
    EXPECT_EQ(broker.subscriber_stats(id).frames,
              static_cast<std::uint64_t>(kBlocks));
  }
}

TEST(BrokerGroups, HeterogeneousLinksFormMethodGroups) {
  VirtualClock clock;
  // Two subscribers behind an (initially) very fast link — sending is
  // cheaper than compressing, the selector stays at kNone — and two
  // behind a crawling one, which must compress.
  SimEndpoint fast1(clock, 1e6, 1), fast2(clock, 1e6, 2);
  SimEndpoint slow1(clock, 1e6, 3), slow2(clock, 1e6, 4);

  FanoutBroker broker;
  SubscriberConfig fast_cfg;
  fast_cfg.adaptive.initial_bandwidth_Bps = 1e12;
  SubscriberConfig slow_cfg;
  slow_cfg.adaptive.initial_bandwidth_Bps = 1e3;
  broker.subscribe(fast1.duplex.a(), fast_cfg);
  broker.subscribe(fast2.duplex.a(), fast_cfg);
  broker.subscribe(slow1.duplex.a(), slow_cfg);
  broker.subscribe(slow2.duplex.a(), slow_cfg);

  broker.publish(compressible_block(16 * 1024, 9));

  const BrokerStats stats = broker.stats();
  // Two distinct method choices -> two groups -> two encodes, two hits.
  EXPECT_EQ(stats.last_groups, 2u);
  EXPECT_EQ(stats.encodes, 2u);
  EXPECT_EQ(stats.cache_hits, 2u);
}

// --------------------------------------------- shared-encode byte identity

TEST(BrokerCache, SubscribersOnIdenticalLinksReceiveIdenticalBytes) {
  obs::MetricsRegistry::global().reset_values();
  VirtualClock clock;
  constexpr int kSubs = 3;
  std::vector<std::unique_ptr<SimEndpoint>> endpoints;
  FanoutBroker broker;
  std::vector<SubscriberId> ids;
  for (int i = 0; i < kSubs; ++i) {
    // Same link seed everywhere: the measured transfers (and therefore
    // the bandwidth feedback) are identical across subscribers.
    endpoints.push_back(std::make_unique<SimEndpoint>(clock, 1e6, 1));
    ids.push_back(broker.subscribe(endpoints.back()->duplex.a()));
  }

  std::vector<Bytes> blocks;
  const int kBlocks = 6;
  for (int i = 0; i < kBlocks; ++i) {
    blocks.push_back(compressible_block(8 * 1024, 100 + i));
    broker.publish(blocks.back());
    broker.pump_all();
  }

  // The wire bytes must be identical subscriber-to-subscriber: same
  // payload from the shared encode, same sequence (every subscriber
  // joined at the start), same frame envelope.
  std::vector<std::vector<Bytes>> wires(kSubs);
  for (int s = 0; s < kSubs; ++s) {
    while (auto frame = endpoints[s]->duplex.b().receive()) {
      wires[s].push_back(std::move(*frame));
    }
    ASSERT_EQ(wires[s].size(), static_cast<std::size_t>(kBlocks));
  }
  for (int s = 1; s < kSubs; ++s) EXPECT_EQ(wires[s], wires[0]);

  // And each frame decodes back to the published block.
  const CodecRegistry registry = CodecRegistry::with_builtins();
  for (int i = 0; i < kBlocks; ++i) {
    EXPECT_EQ(frame_decompress(wires[0][i], registry), blocks[i]);
  }

  // Obs mirror == ground truth: encode invocations per block == distinct
  // chosen methods (here 1), asserted through the encode-cache counters.
  const BrokerStats stats = broker.stats();
  EXPECT_EQ(stats.encodes, static_cast<std::uint64_t>(kBlocks));
  EXPECT_EQ(stats.cache_hits, static_cast<std::uint64_t>(kBlocks * (kSubs - 1)));
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  const obs::MetricPoint* hits = snap.find("acex.broker.encode_cache.hits");
  const obs::MetricPoint* misses = snap.find("acex.broker.encode_cache.misses");
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(misses, nullptr);
  EXPECT_EQ(hits->counter, stats.cache_hits);
  EXPECT_EQ(misses->counter, stats.cache_misses);
}

TEST(BrokerCache, LateJoinerSequencesStartAtZero) {
  VirtualClock clock;
  SimEndpoint early(clock, 1e6, 1), late(clock, 1e6, 2);
  FanoutBroker broker;
  broker.subscribe(early.duplex.a());

  broker.publish(compressible_block(4096, 1));
  broker.publish(compressible_block(4096, 2));
  broker.pump_all();

  broker.subscribe(late.duplex.a());
  broker.publish(compressible_block(4096, 3));
  broker.pump_all();

  // The late joiner's stream starts at sequence 0: its receiver must see
  // a gapless fresh stream, not a hole covering the blocks it missed.
  adaptive::AdaptiveReceiver receiver(late.duplex.b(),
                                      {adaptive::RecoveryPolicy::kNack,
                                       3, 1024});
  const adaptive::ReceiveReport report = receiver.receive_report();
  EXPECT_EQ(report.frames_ok, 1u);
  EXPECT_TRUE(report.gaps.empty());
  ASSERT_EQ(report.frames.size(), 1u);
  EXPECT_EQ(report.frames[0].sequence, 0u);
}

// --------------------------------------------------- slow-consumer policy

TEST(BrokerPolicy, DropOldestNeverStallsAndCountsDrops) {
  VirtualClock clock;
  SimEndpoint slow(clock, 1e6, 1), healthy(clock, 1e6, 2);
  FanoutBroker broker;

  SubscriberConfig slow_cfg;
  slow_cfg.egress_capacity = 2;
  slow_cfg.policy = SlowConsumerPolicy::kDropOldest;
  const SubscriberId slow_id = broker.subscribe(slow.duplex.a(), slow_cfg);

  SubscriberConfig healthy_cfg;
  healthy_cfg.egress_capacity = 64;
  const SubscriberId healthy_id =
      broker.subscribe(healthy.duplex.a(), healthy_cfg);

  // Publish without ever pumping the slow subscriber: the publisher must
  // never block, and the overflow lands on the slow queue alone.
  const int kBlocks = 5;
  for (int i = 0; i < kBlocks; ++i) {
    broker.publish(compressible_block(4096, i));
  }
  EXPECT_EQ(broker.subscriber_stats(slow_id).drops,
            static_cast<std::uint64_t>(kBlocks - 2));
  EXPECT_EQ(broker.egress_depth(slow_id), 2u);
  EXPECT_FALSE(broker.disconnected(slow_id));
  EXPECT_EQ(broker.subscriber_stats(healthy_id).frames,
            static_cast<std::uint64_t>(kBlocks));
  EXPECT_EQ(broker.egress_depth(healthy_id),
            static_cast<std::size_t>(kBlocks));
}

TEST(BrokerPolicy, DisconnectFailsSlowSubscriberOnly) {
  VirtualClock clock;
  SimEndpoint doomed(clock, 1e6, 1), healthy(clock, 1e6, 2);
  FanoutBroker broker;

  SubscriberConfig doomed_cfg;
  doomed_cfg.egress_capacity = 2;
  doomed_cfg.policy = SlowConsumerPolicy::kDisconnect;
  const SubscriberId doomed_id =
      broker.subscribe(doomed.duplex.a(), doomed_cfg);
  const SubscriberId healthy_id = broker.subscribe(healthy.duplex.a());

  const int kBlocks = 5;
  for (int i = 0; i < kBlocks; ++i) {
    broker.publish(compressible_block(4096, i));
  }
  EXPECT_TRUE(broker.disconnected(doomed_id));
  EXPECT_FALSE(broker.disconnected(healthy_id));
  // The overflow happened on block 3 (capacity 2): the doomed subscriber
  // accepted 2 frames, then dropped out; the healthy one got them all.
  EXPECT_EQ(broker.subscriber_stats(doomed_id).frames, 2u);
  EXPECT_EQ(broker.subscriber_stats(healthy_id).frames,
            static_cast<std::uint64_t>(kBlocks));
  broker.pump_all();
  EXPECT_EQ(broker.subscriber_stats(healthy_id).delivered,
            static_cast<std::uint64_t>(kBlocks));
}

TEST(BrokerPolicy, BlockPolicyWakesWhenPumped) {
  SinkTransport sink;
  FanoutBroker broker;
  SubscriberConfig cfg;
  cfg.egress_capacity = 1;
  cfg.policy = SlowConsumerPolicy::kBlock;
  const SubscriberId id = broker.subscribe(sink, cfg);

  const Bytes block = compressible_block(4096, 1);
  std::atomic<int> published{0};
  std::thread publisher([&] {
    for (int i = 0; i < 3; ++i) {
      broker.publish(block);
      published.fetch_add(1);
    }
  });
  // Drain until all three frames made it through the capacity-1 queue —
  // each pump frees the slot the blocked publisher is waiting for.
  while (broker.subscriber_stats(id).delivered < 3) {
    broker.pump(id);
    std::this_thread::yield();
  }
  publisher.join();
  EXPECT_EQ(published.load(), 3);
  EXPECT_EQ(sink.frames(), 3u);
}

// ------------------------------------------------------ churn under load

TEST(BrokerChurn, SubscribeUnsubscribeDuringConcurrentPublish) {
  SinkTransport sinks[4];
  FanoutBroker broker({.worker_threads = 2});

  SubscriberConfig cfg;
  cfg.egress_capacity = 4;
  cfg.policy = SlowConsumerPolicy::kDropOldest;

  // A stable subscriber that lives through the whole run.
  const SubscriberId stable = broker.subscribe(sinks[0], cfg);

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    const Bytes block = compressible_block(8 * 1024, 1);
    while (!stop.load()) broker.publish(block);
  });
  std::thread pumper([&] {
    while (!stop.load()) broker.pump_all();
  });
  std::thread churner([&] {
    for (int round = 0; round < 50; ++round) {
      std::vector<SubscriberId> ids;
      for (int i = 1; i < 4; ++i) ids.push_back(broker.subscribe(sinks[i], cfg));
      for (const SubscriberId id : ids) broker.unsubscribe(id);
    }
    stop.store(true);
  });
  churner.join();
  publisher.join();
  pumper.join();
  broker.pump_all();

  EXPECT_EQ(broker.subscriber_count(), 1u);
  const SubscriberStats stats = broker.subscriber_stats(stable);
  EXPECT_FALSE(stats.disconnected);
  EXPECT_GT(stats.frames, 0u);
  // Ground truth stays consistent under churn: every frame the stable
  // subscriber accepted was either delivered or dropped or is queued.
  EXPECT_EQ(stats.frames,
            stats.delivered + stats.drops + broker.egress_depth(stable));
}

TEST(BrokerChurn, UnsubscribedSubscriberStopsReceiving) {
  VirtualClock clock;
  SimEndpoint a(clock, 1e6, 1), b(clock, 1e6, 2);
  FanoutBroker broker;
  const SubscriberId id_a = broker.subscribe(a.duplex.a());
  const SubscriberId id_b = broker.subscribe(b.duplex.a());

  broker.publish(compressible_block(4096, 1));
  ASSERT_TRUE(broker.unsubscribe(id_a));
  EXPECT_FALSE(broker.unsubscribe(id_a));  // idempotent
  broker.publish(compressible_block(4096, 2));
  broker.pump_all();

  EXPECT_EQ(broker.subscriber_count(), 1u);
  EXPECT_EQ(broker.subscriber_stats(id_b).frames, 2u);
  EXPECT_THROW(broker.subscriber_stats(id_a), ConfigError);
  // The removed subscriber's egress died with it: only the pre-removal
  // frame could ever have been delivered, and queued ones were dropped.
  std::size_t delivered_a = 0;
  while (a.duplex.b().receive()) ++delivered_a;
  EXPECT_LE(delivered_a, 1u);
}

// ------------------------------------------- per-subscriber recovery

TEST(BrokerRecovery, LossySubscriberRecoversIndependently) {
  VirtualClock clock;
  SimEndpoint lossy_ep(clock, 1e6, 1), clean_ep(clock, 1e6, 2);
  transport::FaultConfig faults;
  faults.drop_prob = 0.3;
  faults.seed = 7;
  transport::FaultInjectingTransport lossy(lossy_ep.duplex.a(), faults);

  FanoutBroker broker;
  const SubscriberId lossy_id = broker.subscribe(lossy);
  const SubscriberId clean_id = broker.subscribe(clean_ep.duplex.a());

  std::vector<Bytes> blocks;
  const int kBlocks = 12;
  for (int i = 0; i < kBlocks; ++i) {
    blocks.push_back(compressible_block(4096, 200 + i));
    broker.publish(blocks.back());
    broker.pump_all();
  }
  lossy.flush();

  adaptive::ReceiverConfig rcfg;
  rcfg.policy = adaptive::RecoveryPolicy::kNack;
  adaptive::AdaptiveReceiver lossy_rx(lossy_ep.duplex.b(), rcfg);
  adaptive::AdaptiveReceiver clean_rx(clean_ep.duplex.b(), rcfg);

  std::map<std::uint64_t, Bytes> recovered;
  const auto drain = [&](adaptive::AdaptiveReceiver& rx) {
    const adaptive::ReceiveReport report = rx.receive_report();
    for (const auto& frame : report.frames) {
      if (frame.status == adaptive::FrameOutcome::Status::kOk) {
        recovered[frame.sequence] = frame.data;
      }
    }
  };

  drain(lossy_rx);
  // NACK cycles: receiver asks, broker replays from the lossy
  // subscriber's OWN retransmit ring, pump delivers.
  for (int cycle = 0; cycle < 8; ++cycle) {
    const std::vector<std::uint64_t> nacks = lossy_rx.take_nacks();
    if (nacks.empty()) break;
    broker.retransmit(lossy_id, nacks);
    broker.pump(lossy_id);
    lossy.flush();
    broker.pump(lossy_id);
    drain(lossy_rx);
  }
  ASSERT_EQ(recovered.size(), static_cast<std::size_t>(kBlocks));
  for (int i = 0; i < kBlocks; ++i) {
    EXPECT_EQ(recovered[static_cast<std::uint64_t>(i)], blocks[i]);
  }
  EXPECT_GT(broker.subscriber_stats(lossy_id).retransmits, 0u);

  // The clean subscriber never noticed: full stream, zero retransmits.
  recovered.clear();
  drain(clean_rx);
  EXPECT_EQ(recovered.size(), static_cast<std::size_t>(kBlocks));
  EXPECT_EQ(broker.subscriber_stats(clean_id).retransmits, 0u);
}

// ---------------------------------------------------------- channel attach

TEST(BrokerAttach, ChannelEventsFanOutToSubscribers) {
  VirtualClock clock;
  SimEndpoint ep(clock, 1e6, 1);
  FanoutBroker broker;
  broker.subscribe(ep.duplex.a());

  echo::EventChannel channel("sensors");
  const echo::SubscriberId tap = broker.attach(channel);
  channel.submit(echo::Event(compressible_block(4096, 1)));
  channel.submit(echo::Event(compressible_block(4096, 2)));
  broker.detach(channel, tap);
  channel.submit(echo::Event(compressible_block(4096, 3)));  // not published
  broker.pump_all();

  EXPECT_EQ(broker.stats().blocks, 2u);
  std::size_t frames = 0;
  while (ep.duplex.b().receive()) ++frames;
  EXPECT_EQ(frames, 2u);
}

// ----------------------------------------- egress timeout + shed mode

TEST(BrokerEgress, BlockTimeoutThrowsTypedOutcomeAndKeepsQueueOpen) {
  MonotonicClock clock;
  EgressQueue q(1, SlowConsumerPolicy::kBlock, clock, 0.05);
  q.send(Bytes{1});
  // Nobody pumps: the bounded wait must expire with the typed outcome
  // instead of pinning this thread forever (the seed behaviour).
  EXPECT_THROW(q.send(Bytes{2}), EgressTimeout);
  EXPECT_EQ(q.timeouts(), 1u);
  EXPECT_FALSE(q.closed());
  // The timed-out frame was not enqueued; the queue keeps working.
  EXPECT_EQ(q.try_pop(), Bytes{1});
  q.send(Bytes{3});
  EXPECT_EQ(q.try_pop(), Bytes{3});
}

TEST(BrokerEgress, BlockedSenderWakesWhenDrainedBeforeTimeout) {
  MonotonicClock clock;
  EgressQueue q(1, SlowConsumerPolicy::kBlock, clock, 5.0);
  q.send(Bytes{1});
  std::thread consumer([&] {
    while (!q.try_pop()) std::this_thread::yield();
  });
  q.send(Bytes{2});  // must ride the drain, nowhere near the 5 s deadline
  consumer.join();
  EXPECT_EQ(q.timeouts(), 0u);
  EXPECT_EQ(q.try_pop(), Bytes{2});
}

TEST(BrokerEgress, ShedModeDropsOldestInsteadOfBlocking) {
  MonotonicClock clock;
  EgressQueue q(2, SlowConsumerPolicy::kBlock, clock);
  q.send(Bytes{1});
  q.send(Bytes{2});
  q.set_shed_mode(true);
  q.send(Bytes{3});  // full queue + shed: evict 1, admit 3, never wait
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.try_pop(), Bytes{2});
  EXPECT_EQ(q.try_pop(), Bytes{3});
  q.set_shed_mode(false);
  EXPECT_FALSE(q.shed_mode());
}

TEST(BrokerEgress, ClearEmptiesWithoutCountingDrops) {
  MonotonicClock clock;
  EgressQueue q(8, SlowConsumerPolicy::kDropOldest, clock);
  q.send(Bytes{1, 2, 3});
  q.send(Bytes{4, 5});
  EXPECT_EQ(q.bytes(), 5u);
  EXPECT_EQ(q.clear(), 2u);
  EXPECT_EQ(q.bytes(), 0u);
  EXPECT_EQ(q.drops(), 0u);  // cleared frames are replayed, not lost
  EXPECT_FALSE(q.closed());
  q.send(Bytes{6});
  EXPECT_EQ(q.try_pop(), Bytes{6});
}

TEST(BrokerPolicy, EgressTimeoutCountsOnSubscriberAndStaysConnected) {
  SinkTransport sink;
  FanoutBroker broker;
  SubscriberConfig cfg;
  cfg.egress_capacity = 1;
  cfg.policy = SlowConsumerPolicy::kBlock;
  cfg.block_timeout = 0.05;
  const SubscriberId id = broker.subscribe(sink, cfg);

  broker.publish(compressible_block(4096, 1));
  // Queue full, nobody pumping: the publish must return after the bounded
  // wait with the timeout accounted, NOT disconnect the subscriber and NOT
  // wedge the publisher.
  broker.publish(compressible_block(4096, 2));
  EXPECT_EQ(broker.subscriber_stats(id).egress_timeouts, 1u);
  EXPECT_FALSE(broker.disconnected(id));

  // Drain and confirm the stream continues; the lost sequence stays
  // NACK-recoverable from the ring.
  broker.pump(id);
  broker.publish(compressible_block(4096, 3));
  broker.pump(id);
  EXPECT_EQ(sink.frames(), 2u);
  EXPECT_EQ(broker.retransmit(id, {1}), 1u);
}

}  // namespace
}  // namespace acex::broker
