#include <gtest/gtest.h>

#include "pbio/pbio.hpp"
#include "testdata.hpp"
#include "util/error.hpp"

namespace acex::pbio {
namespace {

RecordFormat sensor_format() {
  return RecordFormat("sensor.reading", {
                                            {"id", FieldType::kUInt32},
                                            {"seq", FieldType::kInt64},
                                            {"value", FieldType::kFloat64},
                                            {"scale", FieldType::kFloat32},
                                            {"label", FieldType::kString},
                                            {"blob", FieldType::kBytes},
                                        });
}

Record sample_record(const RecordFormat& fmt) {
  Record r(fmt);
  r.set("id", std::uint32_t{7});
  r.set("seq", std::int64_t{-123456789012345});
  r.set("value", 2.718281828);
  r.set("scale", 0.5f);
  r.set("label", std::string("thermocouple-A"));
  r.set("blob", Bytes{0xde, 0xad, 0xbe, 0xef});
  return r;
}

// ------------------------------------------------------------------ schema

TEST(PbioFormat, RejectsEmptyName) {
  EXPECT_THROW(RecordFormat("", {{"a", FieldType::kInt32}}), ConfigError);
}

TEST(PbioFormat, RejectsEmptyFieldName) {
  EXPECT_THROW(RecordFormat("f", {{"", FieldType::kInt32}}), ConfigError);
}

TEST(PbioFormat, RejectsDuplicateFieldNames) {
  EXPECT_THROW(RecordFormat("f", {{"a", FieldType::kInt32},
                                  {"a", FieldType::kFloat32}}),
               ConfigError);
}

TEST(PbioFormat, FieldIndexLookup) {
  const auto fmt = sensor_format();
  EXPECT_EQ(fmt.field_index("id"), 0u);
  EXPECT_EQ(fmt.field_index("blob"), 5u);
  EXPECT_THROW(fmt.field_index("nope"), ConfigError);
}

TEST(PbioFieldType, NamesAreStable) {
  EXPECT_EQ(field_type_name(FieldType::kInt32), "int32");
  EXPECT_EQ(field_type_name(FieldType::kBytes), "bytes");
}

// ------------------------------------------------------------------ record

TEST(PbioRecord, DefaultsAreTypedZeros) {
  const auto fmt = sensor_format();
  const Record r(fmt);
  EXPECT_EQ(r.as<std::uint32_t>("id"), 0u);
  EXPECT_EQ(r.as<std::string>("label"), "");
}

TEST(PbioRecord, SetRejectsWrongType) {
  const auto fmt = sensor_format();
  Record r(fmt);
  EXPECT_THROW(r.set("id", 1.5), ConfigError);             // double into u32
  EXPECT_THROW(r.set("label", std::int32_t{1}), ConfigError);
}

TEST(PbioRecord, TypedAccessorChecks) {
  const auto fmt = sensor_format();
  Record r(fmt);
  r.set("value", 1.25);
  EXPECT_DOUBLE_EQ(r.as<double>("value"), 1.25);
  EXPECT_THROW(r.as<float>("value"), ConfigError);
}

TEST(PbioRecord, IndexOutOfRangeThrows) {
  const auto fmt = sensor_format();
  Record r(fmt);
  EXPECT_THROW(r.set(99, std::int32_t{1}), ConfigError);
  EXPECT_THROW(r.get(99), ConfigError);
}

// ----------------------------------------------------------- encode/decode

TEST(PbioStream, RoundTripsNativeOrder) {
  const auto fmt = sensor_format();
  const Encoder enc(fmt);
  std::vector<Record> records;
  records.push_back(sample_record(fmt));
  records.push_back(sample_record(fmt));
  records[1].set("id", std::uint32_t{8});

  const Bytes stream = encode_stream(enc, records);
  const auto decoded = decode_stream(stream);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].format(), fmt);
  EXPECT_EQ(decoded[0].as<std::uint32_t>("id"), 7u);
  EXPECT_EQ(decoded[1].as<std::uint32_t>("id"), 8u);
  EXPECT_EQ(decoded[0].as<std::int64_t>("seq"), -123456789012345);
  EXPECT_DOUBLE_EQ(decoded[0].as<double>("value"), 2.718281828);
  EXPECT_FLOAT_EQ(decoded[0].as<float>("scale"), 0.5f);
  EXPECT_EQ(decoded[0].as<std::string>("label"), "thermocouple-A");
  EXPECT_EQ(decoded[0].as<Bytes>("blob"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(PbioStream, CrossByteOrderDecodesIdentically) {
  // PBIO's trick: the receiver swaps only when the sender's byte order
  // differs. Encode the same record both ways; decoding must agree.
  const auto fmt = sensor_format();
  const auto records = std::vector<Record>{sample_record(fmt)};

  const Bytes native =
      encode_stream(Encoder(fmt, host_order()), records);
  const ByteOrder foreign = host_order() == ByteOrder::kLittle
                                ? ByteOrder::kBig
                                : ByteOrder::kLittle;
  const Bytes swapped = encode_stream(Encoder(fmt, foreign), records);

  EXPECT_NE(native, swapped);  // scalar bytes actually differ on the wire
  const auto a = decode_stream(native);
  const auto b = decode_stream(swapped);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].as<std::int64_t>("seq"), b[0].as<std::int64_t>("seq"));
  EXPECT_DOUBLE_EQ(a[0].as<double>("value"), b[0].as<double>("value"));
  EXPECT_FLOAT_EQ(a[0].as<float>("scale"), b[0].as<float>("scale"));
  EXPECT_EQ(a[0].as<std::string>("label"), b[0].as<std::string>("label"));
}

TEST(PbioStream, HeaderOnlyStreamDecodesToNothing) {
  const Encoder enc(sensor_format());
  Bytes header;
  enc.encode_format(header);
  EXPECT_TRUE(decode_stream(header).empty());
}

TEST(PbioStream, RejectsBadMagic) {
  const Encoder enc(sensor_format());
  Bytes stream = encode_stream(enc, {sample_record(enc.format())});
  stream[0] = 'X';
  EXPECT_THROW(decode_stream(stream), DecodeError);
}

TEST(PbioStream, RejectsBadVersion) {
  const Encoder enc(sensor_format());
  Bytes stream = encode_stream(enc, {sample_record(enc.format())});
  stream[2] = 9;
  EXPECT_THROW(decode_stream(stream), DecodeError);
}

TEST(PbioStream, RejectsTruncatedRecord) {
  const Encoder enc(sensor_format());
  Bytes stream = encode_stream(enc, {sample_record(enc.format())});
  stream.resize(stream.size() - 3);
  EXPECT_THROW(decode_stream(stream), DecodeError);
}

TEST(PbioStream, RejectsTruncatedSchema) {
  const Encoder enc(sensor_format());
  Bytes header;
  enc.encode_format(header);
  header.resize(header.size() / 2);
  EXPECT_THROW(decode_stream(header), DecodeError);
}

TEST(PbioStream, RejectsUnknownFieldType) {
  const Encoder enc(RecordFormat("t", {{"a", FieldType::kInt32}}));
  Bytes header;
  enc.encode_format(header);
  // Layout: magic(2) ver(1) order(1) | namelen(1) 't' | count(1) | type(1)
  // name... — index 7 is the field-type byte.
  ASSERT_EQ(header[7], static_cast<std::uint8_t>(FieldType::kInt32));
  Bytes bad = header;
  bad[7] = 0xEE;
  EXPECT_THROW(decode_stream(bad), DecodeError);
}

TEST(PbioStream, HeaderCorruptionNeverCrashes) {
  // Any single corrupted header byte must either throw or decode to a
  // (different) valid schema — corrupting a name character is legal data.
  const Encoder enc(RecordFormat("t", {{"a", FieldType::kInt32}}));
  Bytes header;
  enc.encode_format(header);
  for (std::size_t i = 0; i < header.size(); ++i) {
    Bytes bad = header;
    bad[i] = 0xEE;
    try {
      const auto records = decode_stream(bad);
      EXPECT_TRUE(records.empty());  // header-only stream
    } catch (const Error&) {
      // detected corruption
    }
  }
}

TEST(PbioStream, EncoderRejectsForeignRecord) {
  const auto fmt_a = sensor_format();
  const RecordFormat fmt_b("other", {{"q", FieldType::kInt32}});
  const Encoder enc(fmt_a);
  Record foreign(fmt_b);
  Bytes out;
  EXPECT_THROW(enc.encode_record(foreign, out), ConfigError);
}

TEST(PbioStream, ManyRecordsRoundTrip) {
  const RecordFormat fmt("point", {{"x", FieldType::kFloat32},
                                   {"y", FieldType::kFloat32}});
  const Encoder enc(fmt);
  std::vector<Record> records;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    Record r(fmt);
    r.set("x", static_cast<float>(rng.uniform()));
    r.set("y", static_cast<float>(rng.uniform()));
    records.push_back(std::move(r));
  }
  const auto decoded = decode_stream(encode_stream(enc, records));
  ASSERT_EQ(decoded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded[i].as<float>("x"), records[i].as<float>("x"));
    EXPECT_EQ(decoded[i].as<float>("y"), records[i].as<float>("y"));
  }
}

}  // namespace
}  // namespace acex::pbio
