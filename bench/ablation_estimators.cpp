// Ablation: network measurement techniques. The middleware accepts any
// bandwidth source (§1 cites [10-13]); this bench compares the two built-in
// ones against ground truth while the MBone trace modulates a 100 Mb link:
//
//   passive  — BandwidthEstimator fed by the ongoing 128 KiB block
//              transfers (what AdaptiveSender uses; free but lags, and can
//              only see the link while payload flows);
//   probing  — packet_pair_probe sessions (tiny cost, works even when the
//              application is idle, noisier per sample).

#include <cmath>

#include "bench_common.hpp"
#include "netsim/bandwidth.hpp"
#include "netsim/load_trace.hpp"
#include "netsim/probe.hpp"

int main() {
  using namespace acex;

  netsim::LinkParams params = netsim::fast_ethernet_link();
  params.share_per_connection = 0.014;
  params.jitter_frac = 0.05;
  const netsim::LoadTrace trace = netsim::mbone_trace().scaled(4.0);

  netsim::SimLink payload_link(params, 41);
  netsim::SimLink probe_link(params, 42);  // independent jitter stream
  probe_link.set_background(&trace);
  payload_link.set_background(&trace);

  netsim::BandwidthEstimator passive;

  bench::header("Ablation: bandwidth estimators vs ground truth");
  std::printf("%8s  %10s  %10s  %10s\n", "time(s)", "true MB/s",
              "passive", "pkt-pair");
  bench::rule();

  RunningStats passive_err, probe_err;
  Seconds t = 0;
  while (t < trace.duration()) {
    // Payload traffic: one 128 KiB block, feeding the passive estimator.
    const auto transfer = payload_link.transmit(128 * 1024, t);
    passive.record(128 * 1024, transfer.delivered - transfer.started);

    // Probing: one packet-pair session on the (shared-state) link.
    const auto probe = netsim::packet_pair_probe(probe_link, t);

    const double truth = payload_link.effective_bandwidth(t);
    const double p_est = passive.estimate_or(0);
    const double q_est = probe.bandwidth_Bps;
    passive_err.add(std::abs(p_est - truth) / truth);
    probe_err.add(std::abs(q_est - truth) / truth);

    if (static_cast<int>(t) % 10 == 0) {
      std::printf("%8.0f  %10.2f  %10.2f  %10.2f\n", t, truth / 1e6,
                  p_est / 1e6, q_est / 1e6);
    }
    t = std::max(transfer.delivered, probe.finished) + 1.0;
  }

  std::printf(
      "\nmean relative error: passive %.1f %%  packet-pair %.1f %%\n",
      100 * passive_err.mean(), 100 * probe_err.mean());
  std::printf(
      "Reading: both track the load swings; the passive estimator smooths "
      "(EWMA lag\naround steps), packet pairs respond instantly but carry "
      "per-sample jitter —\nwhich is why the middleware treats measurement "
      "as a pluggable layer.\n");
  return 0;
}
