// Parallel engine scaling: wall-clock blocks/s for the same BWT-heavy
// molecular stream at 1, 2, 4 and 8 workers.
//
// Unlike the fig* benches this one measures REAL elapsed time, not the
// virtual-clock simulation: the engine's win is concurrent encoding, which
// only shows up on a wall clock. The transport is a no-op capture sink so
// the numbers isolate compression throughput from link emulation.
//
// Every run is checked for correctness: frames must carry strictly
// increasing sequence numbers and must decode to the original stream
// byte-for-byte, regardless of worker count.
//
//   usage: parallel_scaling [DATA_MIB]   (default 8)
//
// Speedup is bounded by std::thread::hardware_concurrency(); on a 1-core
// host every row measures the same serial throughput plus pool overhead.

#include <cstdlib>
#include <thread>

#include "bench_common.hpp"
#include "compress/frame.hpp"
#include "engine/parallel_sender.hpp"
#include "transport/transport.hpp"

namespace {

using namespace acex;

bool verify(const bench::CaptureTransport& transport, ByteView original) {
  const CodecRegistry registry = CodecRegistry::with_builtins();
  Bytes decoded;
  std::uint64_t expected = 0;
  for (const Bytes& framed : transport.frames()) {
    const Frame frame = frame_parse(framed);
    if (!frame.has_sequence || frame.sequence != expected++) return false;
    const Bytes block = frame_decompress(framed, registry);
    decoded.insert(decoded.end(), block.begin(), block.end());
  }
  return decoded.size() == original.size() &&
         std::equal(decoded.begin(), decoded.end(), original.begin());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace acex;

  const std::size_t mib =
      argc > 1 ? static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10))
               : 8;
  const std::size_t atoms = 16384;
  const std::size_t steps = std::max<std::size_t>(
      1, (mib * 1024 * 1024) / (atoms * 32));  // ~512 KiB per snapshot
  const Bytes data = bench::molecular_data(atoms, steps);

  adaptive::AdaptiveConfig base;
  base.decision.block_size = 64 * 1024;
  base.decision.sample_size = 4096;
  base.async_sampling = false;

  const std::size_t block_size = base.decision.block_size;
  const std::size_t blocks = (data.size() + block_size - 1) / block_size;
  bench::header("Parallel engine scaling (burrows-wheeler, molecular)");
  std::printf("%zu bytes in %zu blocks of %zu KiB; hardware threads: %u\n\n",
              data.size(), blocks, block_size / 1024,
              std::thread::hardware_concurrency());
  std::printf("%8s  %10s  %10s  %8s  %s\n", "workers", "elapsed(s)",
              "blocks/s", "speedup", "verified");
  bench::rule();

  MonotonicClock wall;
  double baseline = 0;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    adaptive::AdaptiveConfig config = base;
    config.worker_threads = workers;
    bench::CaptureTransport transport;
    engine::ParallelSender sender(transport, config);

    const Seconds start = wall.now();
    sender.send_all_fixed(data, MethodId::kBurrowsWheeler);
    const double elapsed = wall.now() - start;

    if (workers == 1) baseline = elapsed;
    std::printf("%8zu  %10.3f  %10.1f  %7.2fx  %s\n", workers, elapsed,
                static_cast<double>(blocks) / elapsed, baseline / elapsed,
                verify(transport, data) ? "ok" : "FAILED");
    const std::string label = std::to_string(workers);
    bench::record_result("bench.scaling.elapsed_s", "workers", label, elapsed);
    bench::record_result("bench.scaling.blocks_per_s", "workers", label,
                         static_cast<double>(blocks) / elapsed);
    bench::record_result("bench.scaling.speedup", "workers", label,
                         baseline / elapsed);
  }

  std::printf(
      "\nSame stream, same frames: only wall-clock encode time changes "
      "with worker count.\n");
  bench::write_results_json("parallel_scaling");
  return 0;
}
