#pragma once

// Shared plumbing for the figure-reproduction benches: dataset builders,
// table printing, and the CPU-profile calibration every experiment uses to
// emulate the paper's 2003-era hosts (see DESIGN.md §2).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "adaptive/experiment.hpp"
#include "compress/metrics.hpp"
#include "compress/registry.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "transport/transport.hpp"
#include "util/bytes.hpp"
#include "workloads/molecular.hpp"
#include "workloads/transactions.hpp"

namespace acex::bench {

/// Accepts frames instantly and keeps them for verification. Lets the
/// wall-clock benches measure pure encode + pipeline overhead with no link
/// emulation in the way.
class CaptureTransport : public transport::Transport {
 public:
  void send(ByteView message) override {
    frames_.emplace_back(message.begin(), message.end());
  }
  std::optional<Bytes> receive() override { return std::nullopt; }
  const Clock& clock() const override { return clock_; }
  const std::vector<Bytes>& frames() const { return frames_; }

 private:
  MonotonicClock clock_;
  std::vector<Bytes> frames_;
};

/// The commercial (OIS transaction) dataset used by Figs. 2, 3, 4, 8-10.
inline Bytes commercial_data(std::size_t size = 4 * 1024 * 1024,
                             std::uint64_t seed = 2004) {
  workloads::TransactionGenerator gen(seed);
  return gen.text_block(size);
}

/// The molecular-dynamics dataset (PBIO snapshots) of Figs. 6, 11, 12.
inline Bytes molecular_data(std::size_t atoms = 16384, std::size_t steps = 4,
                            std::uint64_t seed = 2004) {
  workloads::MolecularConfig config;
  config.atom_count = atoms;
  config.seed = seed;
  workloads::MolecularGenerator gen(config);
  return gen.stream(steps);
}

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void rule() {
  std::printf("%s\n", std::string(74, '-').c_str());
}

/// Measure one paper method on `data` with round-trip verification.
inline CompressionMeasurement measure(MethodId method, ByteView data) {
  MonotonicClock clock;
  const CodecPtr codec = make_codec(method);
  return measure_codec(*codec, data, clock);
}

/// Per-block series printer shared by the Fig. 8-12 benches.
inline void print_block_series(const adaptive::StreamReport& stream) {
  std::printf("%8s  %6s  %-16s  %12s  %12s\n", "time(s)", "block", "method",
              "comp_us", "wire_bytes");
  rule();
  for (const auto& b : stream.blocks) {
    std::printf("%8.2f  %6zu  %-16s  %12.0f  %12zu\n", b.submitted, b.index,
                std::string(method_name(b.method)).c_str(),
                b.compress_seconds * 1e6, b.wire_size);
  }
}

inline void print_stream_summary(const char* name,
                                 const adaptive::StreamReport& s) {
  std::printf(
      "%-16s total=%8.3f s  wire=%5.1f %%  compress=%6.3f s (%4.1f %% of "
      "total)\n",
      name, s.total_seconds, s.wire_ratio_percent(), s.compress_seconds,
      100.0 * s.compression_share());
}

/// Record one headline result as a labelled single-sample histogram — the
/// JSON-lines exporter prints `sum` with %.17g, so the value survives a
/// parse round-trip exactly (read it back as sum/count).
inline void record_result(std::string_view name, std::string_view label_key,
                          std::string_view label_value, double value) {
  obs::MetricsRegistry::global()
      .histogram(name, label_key, label_value)
      .record(value);
}

/// Dump the full metrics registry (bench results recorded above plus every
/// instrument the exercised layers fed) as JSON lines. The path comes from
/// $ACEX_BENCH_JSON, defaulting to BENCH_results.json in the working
/// directory; CI uploads the file as a workflow artifact.
inline void write_results_json(const char* bench_name) {
  const char* env = std::getenv("ACEX_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_results.json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\"type\":\"bench\",\"name\":\"" << bench_name << "\"}\n";
  out << obs::to_json_lines(obs::MetricsRegistry::global().snapshot());
  std::printf("\nresults written to %s\n", path.c_str());
}

}  // namespace acex::bench
