// Figures 11, 12: the same §4.2 scenario but streaming molecular-dynamics
// data (PBIO snapshots). Paper: "most of the data was compressed by
// Huffman" — the coordinate-dominated blocks fail the compressibility cut
// — with occasional LZ/BW on portions with string repetitions, and
// compressed block sizes barely below 128 KiB (Fig. 12).

#include <map>

#include "bench_common.hpp"
#include "netsim/load_trace.hpp"

int main() {
  using namespace acex;

  const Bytes data = bench::molecular_data(16384, 38);  // ~20 MB stream

  adaptive::ExperimentConfig config;
  config.link = netsim::fast_ethernet_link();
  config.link.jitter_frac = 0.02;
  config.link.share_per_connection = 0.014;
  config.background = netsim::mbone_trace().scaled(4.0);
  config.pace = 1.0;
  config.adaptive.async_sampling = false;
  config.adaptive.initial_bandwidth_Bps = config.link.bandwidth_Bps;
  // Calibrate against the commercial data (the paper's Fig. 4 calibration
  // corpus), not the MD data itself.
  const Bytes calib = bench::commercial_data(512 * 1024);
  config.adaptive.cpu_scale =
      adaptive::cpu_scale_for_lz_speed(calib, adaptive::kPaperLzReducingBps);

  const auto result = run_adaptive(data, config);

  bench::header(
      "Figures 11-12: adaptive run, molecular data, loaded 100 Mb link");
  std::printf("dataset: %zu bytes of PBIO atom snapshots; %zu blocks\n\n",
              data.size(), result.stream.blocks.size());
  bench::print_block_series(result.stream);

  std::map<std::string, std::size_t> counts;
  for (const auto& b : result.stream.blocks) {
    counts[std::string(method_name(b.method))]++;
  }
  std::printf("\nmethod usage:");
  for (const auto& [name, n] : counts) {
    std::printf("  %s=%zu", name.c_str(), n);
  }
  std::printf("\nround-trip verified: %s\n",
              result.verified ? "yes" : "NO (BUG)");
  bench::print_stream_summary("adaptive", result.stream);

  const std::size_t huffman = counts["huffman"];
  const std::size_t strong = counts["lempel-ziv"] + counts["burrows-wheeler"];
  std::printf(
      "\nShape check (paper Fig. 11): Huffman dominates the compressed "
      "blocks (%zu huffman\nvs %zu LZ/BW): %s; compressed sizes stay near "
      "the 128 KiB block size (Fig. 12).\n",
      huffman, strong,
      huffman > strong ? "reproduced" : "DIFFERS");
  return 0;
}
