// Figures 8, 9, 10: configurable compression streaming the commercial
// transaction data over a 100 Mb link whose background load replays the
// MBone trace x4 (§4.2). One paced run produces all three series:
//   Fig. 8  — method chosen per block over time (none -> LZ -> BW as load
//             rises, back down as it drains);
//   Fig. 9  — compression time per block (us);
//   Fig. 10 — compressed block size (bytes, <= 128 KiB).
//
// The CPU is calibrated to the paper's Sun-Fire profile so the regime
// boundaries land where Figs. 4/5 put them (DESIGN.md §2).

#include <map>

#include "bench_common.hpp"
#include "netsim/load_trace.hpp"

int main() {
  using namespace acex;

  // 160 blocks, one per second, mirroring the 160 s trace.
  const Bytes data = bench::commercial_data(160 * 128 * 1024);

  adaptive::ExperimentConfig config;
  config.link = netsim::fast_ethernet_link();
  config.link.jitter_frac = 0.02;
  // Paper: "raw MBone numbers multiplied by a factor of 4". Our emulated
  // link assigns each connection 1.4 % of capacity so that the x4 peak
  // (~68 connections) saturates it, as in the paper's experiment.
  config.link.share_per_connection = 0.014;
  config.background = netsim::mbone_trace().scaled(4.0);
  config.pace = 1.0;
  config.adaptive.async_sampling = false;
  config.adaptive.initial_bandwidth_Bps = config.link.bandwidth_Bps;
  config.adaptive.cpu_scale =
      adaptive::cpu_scale_for_lz_speed(data, adaptive::kPaperLzReducingBps);

  const auto result = run_adaptive(data, config);

  bench::header(
      "Figures 8-10: adaptive run, commercial data, loaded 100 Mb link");
  std::printf("cpu profile: Sun-Fire emulation (cpu_scale=%.3f), pace 1 "
              "block/s, %zu blocks\n\n",
              config.adaptive.cpu_scale, result.stream.blocks.size());
  bench::print_block_series(result.stream);

  // Phase summary (which methods served which load phases).
  std::map<std::string, std::size_t> counts;
  for (const auto& b : result.stream.blocks) {
    counts[std::string(method_name(b.method))]++;
  }
  std::printf("\nmethod usage:");
  for (const auto& [name, n] : counts) {
    std::printf("  %s=%zu", name.c_str(), n);
  }
  std::printf("\nround-trip verified: %s\n",
              result.verified ? "yes" : "NO (BUG)");
  bench::print_stream_summary("adaptive", result.stream);

  const bool has_all = counts.count("none") && counts.count("lempel-ziv") &&
                       counts.count("burrows-wheeler");
  std::printf(
      "\nShape check (paper Fig. 8): '1' (no compression) under no load, "
      "'2' (LZ) as load\nrises, '3' (BW) at peak: %s\n",
      has_all ? "all three phases reproduced" : "PHASES MISSING");
  return 0;
}
