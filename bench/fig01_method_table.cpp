// Figure 1: the paper's qualitative comparison of the four compression
// methods across six criteria. Prints the published table, then re-derives
// every rating from live measurements on the two data regimes the rows
// distinguish (string repetitions vs low entropy).

#include <array>
#include <map>

#include "adaptive/decision.hpp"
#include "bench_common.hpp"
#include "testdata_shim.hpp"

namespace acex {
namespace {

using adaptive::Rating;
using adaptive::bucket_rating;
using adaptive::rating_name;

struct Row {
  MethodId method;
  std::map<std::string, Rating> cells;
};

void print_table(const char* title, const std::vector<Row>& rows,
                 const std::vector<std::string>& columns) {
  bench::header(title);
  std::printf("%-16s", "method");
  for (const auto& c : columns) std::printf("  %-13s", c.c_str());
  std::printf("\n");
  bench::rule();
  for (const auto& row : rows) {
    std::printf("%-16s", std::string(method_name(row.method)).c_str());
    for (const auto& c : columns) {
      std::printf("  %-13s", std::string(rating_name(row.cells.at(c))).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace acex

int main() {
  using namespace acex;

  const std::vector<std::string> columns = {
      "string-reps", "low-entropy", "efficiency",
      "t-compress",  "t-decompress", "global-time"};

  // The table as published (§2.5, Fig. 1).
  std::vector<Row> published;
  for (const auto& p : adaptive::figure1_table()) {
    Row row{p.method, {}};
    row.cells["string-reps"] = p.string_repetitions;
    row.cells["low-entropy"] = p.low_entropy;
    row.cells["efficiency"] = p.efficiency;
    row.cells["t-compress"] = p.compress_time;
    row.cells["t-decompress"] = p.decompress_time;
    row.cells["global-time"] = p.global_time;
    published.push_back(std::move(row));
  }
  print_table("Figure 1 (published ratings)", published, columns);

  // Re-derive from measurements: repetitive commercial data exercises the
  // string-repetition column; skewed low-entropy data the entropy column.
  const Bytes repetitive = bench::commercial_data(2 * 1024 * 1024);
  const Bytes low_entropy = testshim::low_entropy(2 * 1024 * 1024, 7);

  struct Raw {
    double rep_ratio, ent_ratio, t_comp, t_decomp, global;
  };
  std::map<MethodId, Raw> raw;
  for (const MethodId m : paper_methods()) {
    const auto rep = bench::measure(m, repetitive);
    const auto ent = bench::measure(m, low_entropy);
    raw[m] = Raw{rep.ratio_percent(), ent.ratio_percent(),
                 rep.compress_time, rep.decompress_time,
                 rep.compress_time + rep.decompress_time};
  }

  const auto best_worst = [&](auto proj, bool higher_better) {
    double best = higher_better ? -1e300 : 1e300;
    double worst = higher_better ? 1e300 : -1e300;
    for (const auto& [m, r] : raw) {
      const double v = proj(r);
      if (higher_better ? v > best : v < best) best = v;
      if (higher_better ? v < worst : v > worst) worst = v;
    }
    return std::pair{best, worst};
  };

  std::vector<Row> derived;
  for (const MethodId m : paper_methods()) {
    const Raw& r = raw[m];
    Row row{m, {}};
    {
      const auto [b, w] =
          best_worst([](const Raw& x) { return x.rep_ratio; }, false);
      row.cells["string-reps"] = bucket_rating(r.rep_ratio, b, w, false);
      row.cells["efficiency"] = bucket_rating(r.rep_ratio, b, w, false);
    }
    {
      const auto [b, w] =
          best_worst([](const Raw& x) { return x.ent_ratio; }, false);
      row.cells["low-entropy"] = bucket_rating(r.ent_ratio, b, w, false);
    }
    {
      const auto [b, w] =
          best_worst([](const Raw& x) { return x.t_comp; }, false);
      row.cells["t-compress"] = bucket_rating(r.t_comp, b, w, false);
    }
    {
      const auto [b, w] =
          best_worst([](const Raw& x) { return x.t_decomp; }, false);
      row.cells["t-decompress"] = bucket_rating(r.t_decomp, b, w, false);
    }
    {
      const auto [b, w] =
          best_worst([](const Raw& x) { return x.global; }, false);
      row.cells["global-time"] = bucket_rating(r.global, b, w, false);
    }
    derived.push_back(std::move(row));
  }
  print_table("Figure 1 (re-derived from measurements on this host)",
              derived, columns);

  std::printf(
      "\nShape check: Burrows-Wheeler leads both compression columns and "
      "trails both\ntime columns; Huffman is the mirror image — matching "
      "the published table.\n");
  return 0;
}
