// Fan-out broker scaling: wall-clock publish throughput and raw encode CPU
// for the same commercial stream distributed to 1, 4, 16 and 64
// subscribers, on identical links and on heterogeneous ones.
//
// The number the broker exists for: with K subscribers on IDENTICAL links
// every block forms one method group, so encode CPU stays flat as K grows
// (64 homogeneous subscribers should cost well under 2x the encode CPU of
// one). Heterogeneous links split into method groups and encode CPU scales
// with the number of DISTINCT methods — never with the subscriber count.
//
// Subscribers are not pumped during the measured loop (frames land in the
// egress queues), so the per-subscriber planners keep their configured
// link profile and the measurement isolates plan + shared-encode + frame
// cost. Every run is verified afterwards: each subscriber's egress drains
// to a capture sink whose frames must carry sequences 0..N-1 and decode
// byte-exact to the published stream.
//
//   usage: fanout_scaling [BLOCKS]   (default 32 blocks of 16 KiB)

#include <cstdlib>
#include <memory>
#include <thread>

#include "bench_common.hpp"
#include "broker/broker.hpp"
#include "compress/frame.hpp"
#include "shm/bus.hpp"

namespace {

using namespace acex;

bool verify(const bench::CaptureTransport& transport, ByteView original,
            std::size_t block_size) {
  const CodecRegistry registry = CodecRegistry::with_builtins();
  Bytes decoded;
  std::uint64_t expected = 0;
  for (const Bytes& framed : transport.frames()) {
    const Frame frame = frame_parse(framed);
    if (!frame.has_sequence || frame.sequence != expected++) return false;
    const Bytes block = frame_decompress(framed, registry);
    if (block.size() > block_size) return false;
    decoded.insert(decoded.end(), block.begin(), block.end());
  }
  return decoded.size() == original.size() &&
         std::equal(decoded.begin(), decoded.end(), original.begin());
}

/// Initial link profile for subscriber i: identical everywhere in
/// homogeneous mode, cycling four tiers (from "so fast compression never
/// pays" down to a thin pipe) in heterogeneous mode.
double subscriber_bandwidth(bool heterogeneous, std::size_t i) {
  if (!heterogeneous) return 1e6;
  const double tiers[] = {1e12, 1e6, 2e5, 2e4};
  return tiers[i % 4];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace acex;

  const std::size_t blocks =
      argc > 1 ? static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10))
               : 32;
  const std::size_t block_size = 16 * 1024;
  const Bytes data = bench::commercial_data(blocks * block_size);

  bench::header("Fan-out broker scaling (commercial stream)");
  std::printf(
      "%zu blocks of %zu KiB to each subscriber; hardware threads: %u\n\n",
      blocks, block_size / 1024, std::thread::hardware_concurrency());
  std::printf("%-10s  %5s  %10s  %10s  %8s  %12s  %6s  %s\n", "links", "subs",
              "elapsed(s)", "blocks/s", "encodes", "encode_cpu_s", "hit%",
              "verified");
  bench::rule();

  double homog_encode_cpu_1 = 0;
  double homog_encode_cpu_64 = 0;
  for (const bool heterogeneous : {false, true}) {
    for (const std::size_t subs : {1u, 4u, 16u, 64u}) {
      broker::BrokerConfig bc;
      bc.worker_threads = 4;
      broker::FanoutBroker broker(bc);

      std::vector<std::unique_ptr<bench::CaptureTransport>> sinks;
      std::vector<broker::SubscriberId> ids;
      for (std::size_t i = 0; i < subs; ++i) {
        sinks.push_back(std::make_unique<bench::CaptureTransport>());
        broker::SubscriberConfig sc;
        sc.adaptive.decision.block_size = block_size;
        sc.adaptive.decision.sample_size = 4096;
        sc.adaptive.initial_bandwidth_Bps =
            subscriber_bandwidth(heterogeneous, i);
        sc.egress_capacity = blocks + 8;  // hold the whole run un-pumped
        ids.push_back(broker.subscribe(*sinks.back(), sc));
      }

      MonotonicClock wall;
      const Seconds start = wall.now();
      for (std::size_t at = 0; at < data.size(); at += block_size) {
        const std::size_t len = std::min(block_size, data.size() - at);
        broker.publish(ByteView(data.data() + at, len));
      }
      const double elapsed = wall.now() - start;

      broker.pump_all();
      bool ok = true;
      for (std::size_t i = 0; i < subs; ++i) {
        ok = ok && verify(*sinks[i], data, block_size);
      }

      const broker::BrokerStats stats = broker.stats();
      const double total =
          static_cast<double>(stats.cache_hits + stats.cache_misses);
      const double hit_pct =
          total == 0 ? 0.0 : 100.0 * static_cast<double>(stats.cache_hits) /
                                 total;
      const char* mode = heterogeneous ? "hetero" : "identical";
      std::printf("%-10s  %5zu  %10.3f  %10.1f  %8llu  %12.3f  %5.1f%%  %s\n",
                  mode, subs, elapsed,
                  static_cast<double>(blocks) / elapsed,
                  static_cast<unsigned long long>(stats.encodes),
                  stats.encode_seconds, hit_pct, ok ? "ok" : "FAILED");

      const std::string label = std::string(mode) + "-" + std::to_string(subs);
      bench::record_result("bench.fanout.elapsed_s", "config", label, elapsed);
      bench::record_result("bench.fanout.blocks_per_s", "config", label,
                           static_cast<double>(blocks) / elapsed);
      bench::record_result("bench.fanout.encodes", "config", label,
                           static_cast<double>(stats.encodes));
      bench::record_result("bench.fanout.encode_cpu_s", "config", label,
                           stats.encode_seconds);
      bench::record_result("bench.fanout.cache_hit_pct", "config", label,
                           hit_pct);
      if (!heterogeneous && subs == 1) homog_encode_cpu_1 = stats.encode_seconds;
      if (!heterogeneous && subs == 64) {
        homog_encode_cpu_64 = stats.encode_seconds;
      }
    }
  }

  const double ratio = homog_encode_cpu_1 > 0
                           ? homog_encode_cpu_64 / homog_encode_cpu_1
                           : 0.0;
  bench::record_result("bench.fanout.homog_cpu_ratio_64v1", "config",
                       "identical", ratio);
  std::printf(
      "\nShared-encode headline: 64 identical subscribers cost %.2fx the "
      "encode CPU of 1\n(the fan-out is %zux; encode work follows distinct "
      "methods, not subscriber count).\n",
      ratio, static_cast<std::size_t>(64));

  // ---- shared-memory fan-out: descriptor shipping instead of payloads ----
  //
  // The same homogeneous stream, but frames are staged ONCE into shm slabs
  // (FanoutBroker::frame_builder) and each subscriber's transport carries a
  // ~16-byte descriptor. Two checks gate the row:
  //   1. every subscriber's received frames are byte-identical to the heap
  //      (TCP-path) broker's frames for the same stream, and
  //   2. the MEASURED payload bytes moved through memory for 64 subscribers
  //      stay within 1.5x those of a single stream (they should be ~1.0x:
  //      one staging write per block regardless of fan-out), with zero
  //      copy-fallbacks in steady state.
  std::printf("\nShared-memory fan-out (descriptor shipping)\n");
  std::printf("%5s  %10s  %12s  %12s  %6s  %s\n", "subs", "elapsed(s)",
              "staged_B", "delivered_B", "fallbk", "verified");
  bench::rule();

  bool shm_ok = true;
  double staged_bytes_1 = 0;
  double staged_bytes_64 = 0;
  for (const std::size_t subs : {1u, 64u}) {
    // Reference frames off the heap path — exactly what TCP would carry.
    broker::BrokerConfig ref_cfg;
    ref_cfg.worker_threads = 4;
    broker::FanoutBroker reference(ref_cfg);
    std::vector<std::unique_ptr<bench::CaptureTransport>> ref_sinks;
    broker::SubscriberConfig sc;
    sc.adaptive.decision.block_size = block_size;
    sc.adaptive.decision.sample_size = 4096;
    sc.adaptive.initial_bandwidth_Bps = 1e6;
    sc.egress_capacity = blocks + 8;
    for (std::size_t i = 0; i < subs; ++i) {
      ref_sinks.push_back(std::make_unique<bench::CaptureTransport>());
      reference.subscribe(*ref_sinks.back(), sc);
    }
    for (std::size_t at = 0; at < data.size(); at += block_size) {
      reference.publish(
          ByteView(data.data() + at, std::min(block_size, data.size() - at)));
    }
    reference.pump_all();

    // Shm path: slab-staged frames, descriptor fan-out.
    shm::ShmBusConfig bus_cfg;
    bus_cfg.ring.slab_count = blocks + 16;
    bus_cfg.ring.slab_size = block_size + 256;
    bus_cfg.queue_capacity = blocks + 8;
    shm::ShmBus bus(bus_cfg);
    broker::BrokerConfig shm_cfg;
    shm_cfg.worker_threads = 4;
    shm_cfg.frame_builder = bus.frame_builder();
    broker::FanoutBroker fan(shm_cfg);
    std::vector<std::unique_ptr<shm::ShmEndpoint>> endpoints;
    for (std::size_t i = 0; i < subs; ++i) {
      endpoints.push_back(bus.endpoint());
      fan.subscribe(*endpoints.back(), sc);
    }

    MonotonicClock wall;
    const Seconds start = wall.now();
    for (std::size_t at = 0; at < data.size(); at += block_size) {
      fan.publish(
          ByteView(data.data() + at, std::min(block_size, data.size() - at)));
    }
    fan.pump_all();
    const double elapsed = wall.now() - start;

    // Drain every endpoint and hold the shm frames against the reference.
    bool identical = true;
    std::size_t delivered_bytes = 0;
    for (std::size_t i = 0; i < subs; ++i) {
      std::vector<Bytes> got;
      while (auto frame = endpoints[i]->receive()) {
        delivered_bytes += frame->size();
        got.push_back(std::move(*frame));
      }
      identical = identical && got == ref_sinks[i]->frames();
    }
    const shm::ShmBusStats bus_stats = bus.stats();
    const bool no_fallback = bus_stats.copy_fallbacks == 0;
    shm_ok = shm_ok && identical && no_fallback;
    if (subs == 1) staged_bytes_1 = static_cast<double>(bus_stats.staged_bytes);
    if (subs == 64) {
      staged_bytes_64 = static_cast<double>(bus_stats.staged_bytes);
    }

    std::printf("%5zu  %10.3f  %12llu  %12zu  %6llu  %s\n", subs, elapsed,
                static_cast<unsigned long long>(bus_stats.staged_bytes),
                delivered_bytes,
                static_cast<unsigned long long>(bus_stats.copy_fallbacks),
                identical ? "ok" : "FAILED");

    const std::string label = "shm-" + std::to_string(subs);
    bench::record_result("bench.fanout.shm.elapsed_s", "config", label,
                         elapsed);
    bench::record_result("bench.fanout.shm.staged_bytes", "config", label,
                         static_cast<double>(bus_stats.staged_bytes));
    bench::record_result("bench.fanout.shm.delivered_bytes", "config", label,
                         static_cast<double>(delivered_bytes));
    bench::record_result("bench.fanout.shm.copy_fallbacks", "config", label,
                         static_cast<double>(bus_stats.copy_fallbacks));
    bench::record_result("bench.fanout.shm.verified", "config", label,
                         identical ? 1.0 : 0.0);
  }

  const double shm_ratio =
      staged_bytes_1 > 0 ? staged_bytes_64 / staged_bytes_1 : 0.0;
  const bool bandwidth_ok = shm_ratio > 0 && shm_ratio <= 1.5;
  shm_ok = shm_ok && bandwidth_ok;
  bench::record_result("bench.fanout.shm.staged_ratio_64v1", "config", "shm",
                       shm_ratio);
  std::printf(
      "\nShm headline: 64 subscribers moved %.2fx the payload bytes of 1 "
      "(acceptance: <= 1.5x,\nzero copy-fallbacks, byte-identical to the "
      "TCP-path frames) -> %s\n",
      shm_ratio, shm_ok ? "PASS" : "FAIL");

  bench::write_results_json("fanout_scaling");
  return shm_ok ? 0 : 1;
}
