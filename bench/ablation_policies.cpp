// Ablation: adaptive vs every fixed policy across all four Fig. 5 links —
// where are the crossovers? Paper §4.1: compression should win big on the
// 1 Mb and international links, be marginal-to-useful on a loaded 100 Mb
// link, and LOSE on an unloaded gigabit link.

#include "bench_common.hpp"

int main() {
  using namespace acex;
  const Bytes data = bench::commercial_data(8 * 1024 * 1024);
  const double cpu_scale = adaptive::cpu_scale_for_lz_speed(
      data, adaptive::kPaperLzReducingBps);

  bench::header("Ablation: policy x link (commercial data, unloaded links)");
  std::printf("%-16s  %12s  %12s  %12s  %12s\n", "policy", "1Gb(s)",
              "100Mb(s)", "1Mb(s)", "intl(s)");
  bench::rule();

  // totals[policy][link]
  std::vector<std::vector<double>> totals(4);
  std::vector<std::string> names;
  for (std::size_t l = 0; l < netsim::figure5_links().size(); ++l) {
    adaptive::ExperimentConfig config;
    config.link = netsim::figure5_links()[l];
    config.adaptive.async_sampling = false;
    config.adaptive.initial_bandwidth_Bps = config.link.bandwidth_Bps;
    config.adaptive.cpu_scale = cpu_scale;
    config.seed = 7 + l;

    const auto results = adaptive::run_policy_comparison(data, config);
    for (std::size_t p = 0; p < results.size(); ++p) {
      totals[p].push_back(results[p].stream.total_seconds);
      if (l == 0) names.push_back(results[p].policy);
      if (!results[p].verified) {
        std::printf("!! round-trip FAILED: %s on %s\n",
                    results[p].policy.c_str(), config.link.name.c_str());
      }
    }
  }
  for (std::size_t p = 0; p < names.size(); ++p) {
    std::printf("%-16s", names[p].c_str());
    for (const double t : totals[p]) std::printf("  %12.3f", t);
    std::printf("\n");
  }

  // Crossover summary: best policy per link.
  std::printf("\nbest policy per link:");
  for (std::size_t l = 0; l < netsim::figure5_links().size(); ++l) {
    std::size_t best = 0;
    for (std::size_t p = 1; p < names.size(); ++p) {
      if (totals[p][l] < totals[best][l]) best = p;
    }
    std::printf("  %s=%s", netsim::figure5_links()[l].name.c_str(),
                names[best].c_str());
  }
  std::printf(
      "\n\nShape check (paper §4.1): no-compression competitive on fast "
      "intranet links,\ncompression decisive on the 1 Mb and international "
      "links, adaptive within a few\npercent of the best fixed policy "
      "everywhere (it cannot beat an oracle, but must\nnever be badly "
      "wrong).\n");
  return 0;
}
