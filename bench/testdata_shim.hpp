#pragma once

// Small synthetic-data helpers for benches that need a regime the workload
// generators don't provide directly.

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace acex::testshim {

/// Low-entropy but repetition-free bytes: a heavily skewed distribution
/// with no exploitable string structure — order-0 coder territory.
inline Bytes low_entropy(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(size);
  for (auto& b : out) {
    const double u = rng.uniform();
    if (u < 0.55) {
      b = 'e';
    } else if (u < 0.8) {
      b = static_cast<std::uint8_t>('a' + rng.below(4));
    } else {
      b = static_cast<std::uint8_t>(rng.below(256));
    }
  }
  return out;
}

/// Incompressible bytes.
inline Bytes random_bytes(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  return rng.bytes(size);
}

}  // namespace acex::testshim
