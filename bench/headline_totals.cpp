// §5 headline numbers: end-to-end totals for bulk transfers over the
// loaded 100 Mb link.
//
//   Commercial data:  paper 10.7142 s adaptive vs 29.1388 s uncompressed
//                     (~2.7x; "compression took slightly more than 60% of
//                     total time").
//   Molecular data:   paper ~29 s -> 30.5 s — adaptive *loses* slightly,
//                     motivating application-specific lossy compression.
//
// The paper's totals come from a bulk transfer that collides with the
// trace's congestion; a transfer that finishes before the load ramp shows
// nothing. We therefore drive a sustained-congestion profile (ramp to a
// saturated link that STAYS saturated — the tail of the MBone session) and
// report adaptive vs the fixed policies, with both the paper's decision
// constants and constants re-derived by the Calibrator on this host.

#include <thread>

#include "adaptive/calibrator.hpp"
#include "bench_common.hpp"
#include "engine/parallel_sender.hpp"
#include "netsim/load_trace.hpp"

namespace {

acex::adaptive::ExperimentConfig scenario(double cpu_scale) {
  using namespace acex;
  adaptive::ExperimentConfig config;
  config.link = netsim::fast_ethernet_link();
  config.link.jitter_frac = 0.02;
  config.link.share_per_connection = 0.014;
  // Connections ramp in and stay: 25 (~35 % of capacity), 50 (~70 %),
  // then 68 — the MBone x4 peak — saturating the link to its 5 % floor.
  config.background = netsim::LoadTrace(
      {{0, 0}, {2, 25}, {4, 50}, {6, 68}});
  config.adaptive.async_sampling = false;
  config.adaptive.initial_bandwidth_Bps = config.link.bandwidth_Bps;
  config.adaptive.cpu_scale = cpu_scale;
  return config;
}

void run_dataset(const char* title, const char* slug, const acex::Bytes& data,
                 acex::adaptive::ExperimentConfig config) {
  using namespace acex;
  bench::header(title);
  std::printf("%zu bytes, 100 Mb link under a sustained load ramp\n\n",
              data.size());

  const auto results = adaptive::run_policy_comparison(data, config);
  const std::string series = std::string("bench.headline.") + slug;
  double adaptive_total = 0, raw_total = 0;
  for (const auto& r : results) {
    bench::print_stream_summary(r.policy.c_str(), r.stream);
    if (!r.verified) std::printf("  !! round-trip FAILED for %s\n",
                                 r.policy.c_str());
    bench::record_result(series + ".total_s", "policy", r.policy,
                         r.stream.total_seconds);
    bench::record_result(series + ".wire_pct", "policy", r.policy,
                         r.stream.wire_ratio_percent());
    if (r.policy == "adaptive") adaptive_total = r.stream.total_seconds;
    if (r.policy == "none") raw_total = r.stream.total_seconds;
  }
  bench::record_result(series + ".speedup_vs_raw", "policy", "adaptive",
                       raw_total / adaptive_total);
  std::printf("\nadaptive vs uncompressed: %.2fx %s\n",
              raw_total / adaptive_total,
              raw_total > adaptive_total ? "faster" : "slower (<1x)");
}

/// Wall-clock encode throughput for the same stream at 1 and N workers —
/// the parallel engine's contribution, orthogonal to the virtual-time
/// totals above (which model the 2003 link, not this host's cores).
void run_parallel_throughput(const char* title, const acex::Bytes& data) {
  using namespace acex;
  adaptive::AdaptiveConfig config;
  config.async_sampling = false;

  const std::size_t block_size = config.decision.block_size;
  const std::size_t blocks = (data.size() + block_size - 1) / block_size;
  const std::size_t hw = engine::resolve_worker_threads(0);

  bench::header(title);
  std::printf("wall-clock adaptive encode, %zu blocks of %zu KiB\n",
              blocks, block_size / 1024);
  MonotonicClock wall;
  for (const std::size_t workers : {std::size_t{1}, hw}) {
    config.worker_threads = workers;
    bench::CaptureTransport transport;
    engine::ParallelSender sender(transport, config);
    const Seconds start = wall.now();
    sender.send_all(data);
    const double elapsed = wall.now() - start;
    std::printf("  %zu worker(s): %8.1f blocks/s  (%.3f s)\n", workers,
                static_cast<double>(blocks) / elapsed, elapsed);
    bench::record_result("bench.headline.encode_blocks_per_s", "workers",
                         std::to_string(workers),
                         static_cast<double>(blocks) / elapsed);
    if (workers == hw) break;  // single-core host: one row says it all
  }
}

}  // namespace

int main() {
  using namespace acex;

  const Bytes commercial = bench::commercial_data(48 * 1024 * 1024);
  const Bytes molecular = bench::molecular_data(16384, 84);  // ~44 MB

  // One Sun-Fire calibration shared by every run so totals are comparable.
  const double cpu_scale = adaptive::cpu_scale_for_lz_speed(
      commercial, adaptive::kPaperLzReducingBps);
  std::printf("Sun-Fire CPU emulation: cpu_scale=%.3f\n", cpu_scale);

  // --- paper constants ---------------------------------------------------
  run_dataset("Headline (commercial, paper constants)", "commercial",
              commercial, scenario(cpu_scale));
  run_dataset("Headline (molecular, paper constants)", "molecular", molecular,
              scenario(cpu_scale));

  // --- host-calibrated constants (§2.5: "can be tuned easily by sampling
  // even a small piece of data") --------------------------------------
  {
    auto config = scenario(cpu_scale);
    const adaptive::CalibrationReport calib = adaptive::Calibrator().calibrate(
        ByteView(commercial).subspan(0, 1024 * 1024), config.adaptive.decision);
    config.adaptive.decision = calib.params;
    std::printf(
        "\ncalibrated constants: alpha=%.2f beta=%.2f ratio_cut=%.1f%%\n",
        calib.params.alpha, calib.params.beta, calib.params.ratio_cut_percent);
    run_dataset("Headline (commercial, host-calibrated constants)",
                "commercial_calibrated", commercial, config);
  }

  // --- parallel engine: wall-clock blocks/s at 1 and N workers ----------
  run_parallel_throughput("Parallel encode throughput (commercial)",
                          commercial);
  run_parallel_throughput("Parallel encode throughput (molecular)",
                          molecular);

  std::printf(
      "\nPaper reference: 10.71 s adaptive vs 29.14 s raw (2.72x) on "
      "commercial data;\nmolecular data slightly SLOWER with compression "
      "(29 -> 30.5 s, ~0.95x).\n");
  bench::write_results_json("headline_totals");
  return 0;
}
