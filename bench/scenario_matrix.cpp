// The scenario x policy grid (ROADMAP item 5, DESIGN.md §15): replay every
// workload class the repo knows — transactional text (with and without
// context takeover), molecular PBIO, e4m3 and float32 tensor streams, and
// nested XML markup — against every decision policy over emulated netsim
// links, and emit one machine-readable BENCH_scenarios.json grid:
//
//   scenario x policy -> blocks/s, wire ratio, CPU-us/block, method histogram
//
// This is the frontier map every future PR diffs against: a decision-engine
// change that moves a cell moves it HERE, visibly, under a pinned seed.
//
// The binary exits non-zero when the grid degenerates: any cell failing
// round-trip verification, or fewer than two scenarios whose dominant
// method actually shifts across policies (if no scenario flips, the
// policies are not distinct and the grid proves nothing).
//
// Usage: scenario_matrix [blocks-per-scenario]   (default 48; CI smoke 12)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "netsim/load_trace.hpp"
#include "workloads/markup.hpp"
#include "workloads/tensor.hpp"

namespace {

using namespace acex;

struct ScenarioSpec {
  std::string name;
  Bytes data;
  netsim::LinkParams link;
  bool loaded = false;           ///< apply the MBone x4 background trace
  bool context_takeover = true;  ///< false = per-block-reset variant
  double pace = 0;               ///< virtual seconds between blocks
  double target_rate_Bps = 0;    ///< engaged only under kTargetRate
};

struct CellResult {
  std::string scenario;
  std::string policy;
  double blocks_per_s = 0;
  double wire_ratio_percent = 100;
  double cpu_us_per_block = 0;
  bool verified = false;
  std::map<std::string, std::size_t> methods;

  std::string dominant_method() const {
    std::string best;
    std::size_t best_n = 0;
    for (const auto& [name, n] : methods) {
      if (n > best_n) {
        best = name;
        best_n = n;
      }
    }
    return best;
  }
};

std::vector<ScenarioSpec> build_scenarios(std::size_t blocks) {
  const std::size_t bytes = blocks * 128 * 1024;
  std::vector<ScenarioSpec> scenarios;

  // 1/2: the paper's own commercial stream over the loaded 100 Mb link,
  // with carried context vs per-block reset — what context takeover buys.
  {
    ScenarioSpec s;
    s.name = "txn-text-mbone-takeover";
    s.data = bench::commercial_data(bytes);
    s.link = netsim::fast_ethernet_link();
    s.link.jitter_frac = 0.02;
    s.link.share_per_connection = 0.014;
    s.loaded = true;
    s.pace = 1.0;
    s.target_rate_Bps = 2.0e6;
    scenarios.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "txn-text-mbone-reset";
    s.data = bench::commercial_data(bytes);
    s.link = netsim::fast_ethernet_link();
    s.link.jitter_frac = 0.02;
    s.link.share_per_connection = 0.014;
    s.loaded = true;
    s.context_takeover = false;
    s.pace = 1.0;
    s.target_rate_Bps = 2.0e6;
    scenarios.push_back(std::move(s));
  }

  // 3: molecular-dynamics PBIO snapshots crawling through a megabit link —
  // the slow-link regime where strong compression pays its CPU bill.
  {
    ScenarioSpec s;
    s.name = "md-pbio-megabit";
    s.data = bench::molecular_data(8192, std::max<std::size_t>(blocks / 4, 2));
    s.link = netsim::megabit_link();
    s.target_rate_Bps = 0.4e6;
    scenarios.push_back(std::move(s));
  }

  // 4: e4m3 tensor stream on a fast link — low entropy, no string
  // repetitions: the sampled LZ ratio sits ABOVE the §2.5 cut while
  // Huffman still has headroom, exactly the case that separates the
  // bandwidth rule from the CPU/energy scorers.
  {
    ScenarioSpec s;
    s.name = "tensor-e4m3-fast";
    workloads::TensorGenerator gen(2004);
    s.data = gen.e4m3_block(bytes);
    s.link = netsim::fast_ethernet_link();
    s.target_rate_Bps = 9.0e6;
    scenarios.push_back(std::move(s));
  }

  // 5: the same tensors as raw float32 over a gigabit link — barely
  // compressible AND the link is faster than any codec: compression must
  // lose under every objective that counts CPU.
  {
    ScenarioSpec s;
    s.name = "tensor-f32-gigabit";
    workloads::TensorGenerator gen(2004);
    s.data = gen.f32_block(bytes / 4);
    s.link = netsim::gigabit_link();
    scenarios.push_back(std::move(s));
  }

  // 6: nested markup across the lossy international link — extreme string
  // repetition on a very slow path: Burrows-Wheeler territory for every
  // policy that values the wire at all.
  {
    ScenarioSpec s;
    s.name = "xml-markup-intl";
    workloads::MarkupGenerator gen(2004);
    s.data = gen.block(std::max<std::size_t>(bytes / 16, 4 * 128 * 1024));
    s.link = netsim::international_link();
    s.target_rate_Bps = 0.2e6;
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

CellResult run_cell(const ScenarioSpec& spec, adaptive::DecisionPolicy policy,
                    const netsim::LoadTrace& mbone, double cpu_scale) {
  adaptive::ExperimentConfig config;
  config.link = spec.link;
  if (spec.loaded) config.background = mbone;
  config.pace = spec.pace;
  config.context_takeover = spec.context_takeover;
  config.adaptive.async_sampling = false;
  config.adaptive.initial_bandwidth_Bps = spec.link.bandwidth_Bps;
  config.adaptive.cpu_scale = cpu_scale;
  config.adaptive.decision.policy = policy;
  if (policy == adaptive::DecisionPolicy::kTargetRate) {
    config.adaptive.target_rate_Bps = spec.target_rate_Bps;
  }

  const adaptive::ExperimentResult result =
      run_adaptive(spec.data, config);

  CellResult cell;
  cell.scenario = spec.name;
  cell.policy = std::string(adaptive::policy_name(policy));
  cell.verified = result.verified;
  const auto& stream = result.stream;
  const double blocks = static_cast<double>(stream.blocks.size());
  if (stream.total_seconds > 0) {
    cell.blocks_per_s = blocks / stream.total_seconds;
  }
  if (stream.original_bytes > 0) {
    cell.wire_ratio_percent = 100.0 *
                              static_cast<double>(stream.wire_bytes) /
                              static_cast<double>(stream.original_bytes);
  }
  if (blocks > 0) {
    cell.cpu_us_per_block = stream.compress_seconds * 1e6 / blocks;
  }
  for (const auto& b : stream.blocks) {
    cell.methods[std::string(method_name(b.method))]++;
  }
  return cell;
}

void write_grid_json(const std::vector<CellResult>& cells) {
  const char* env = std::getenv("ACEX_SCENARIOS_JSON");
  const std::string path = env != nullptr ? env : "BENCH_scenarios.json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "scenario_matrix: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\"type\":\"bench\",\"name\":\"scenario_matrix\"}\n";
  for (const CellResult& cell : cells) {
    char line[512];
    std::snprintf(line, sizeof line,
                  "{\"scenario\":\"%s\",\"policy\":\"%s\","
                  "\"blocks_per_s\":%.6g,\"wire_ratio_percent\":%.6g,"
                  "\"cpu_us_per_block\":%.6g,\"verified\":%s,"
                  "\"dominant_method\":\"%s\",\"methods\":{",
                  cell.scenario.c_str(), cell.policy.c_str(),
                  cell.blocks_per_s, cell.wire_ratio_percent,
                  cell.cpu_us_per_block, cell.verified ? "true" : "false",
                  cell.dominant_method().c_str());
    out << line;
    bool first = true;
    for (const auto& [name, n] : cell.methods) {
      if (!first) out << ",";
      first = false;
      out << "\"" << name << "\":" << n;
    }
    out << "}}\n";
  }
  std::printf("\ngrid written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t blocks = 48;
  if (argc > 1) {
    blocks = static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10));
    if (blocks == 0) blocks = 48;
  }

  // One calibration for the whole grid (the Sun-Fire profile every figure
  // bench uses), measured on the commercial corpus.
  const Bytes calib = bench::commercial_data(512 * 1024);
  const double cpu_scale =
      adaptive::cpu_scale_for_lz_speed(calib, adaptive::kPaperLzReducingBps);
  const netsim::LoadTrace mbone = netsim::mbone_trace().scaled(4.0);

  const std::vector<ScenarioSpec> scenarios = build_scenarios(blocks);

  bench::header("Scenario x policy decision grid");
  std::printf("cpu_scale=%.3f, %zu scenarios x %zu policies, ~%zu blocks "
              "per scenario\n\n",
              cpu_scale, scenarios.size(), adaptive::all_policies().size(),
              blocks);
  std::printf("%-26s %-15s %9s %8s %10s  %s\n", "scenario", "policy",
              "blk/s", "wire%", "cpu_us/blk", "methods");
  bench::rule();

  std::vector<CellResult> cells;
  bool all_verified = true;
  for (const ScenarioSpec& spec : scenarios) {
    for (const adaptive::DecisionPolicy policy : adaptive::all_policies()) {
      CellResult cell = run_cell(spec, policy, mbone, cpu_scale);
      all_verified = all_verified && cell.verified;
      std::string hist;
      for (const auto& [name, n] : cell.methods) {
        hist += name + "=" + std::to_string(n) + " ";
      }
      std::printf("%-26s %-15s %9.2f %8.1f %10.0f  %s%s\n",
                  cell.scenario.c_str(), cell.policy.c_str(),
                  cell.blocks_per_s, cell.wire_ratio_percent,
                  cell.cpu_us_per_block, hist.c_str(),
                  cell.verified ? "" : " [VERIFY FAILED]");
      cells.push_back(std::move(cell));
    }
    std::printf("\n");
  }

  write_grid_json(cells);

  // Acceptance: the frontier must visibly move — at least two scenarios
  // where different policies produce different dominant methods.
  std::size_t moving = 0;
  for (const ScenarioSpec& spec : scenarios) {
    std::set<std::string> dominants;
    for (const CellResult& cell : cells) {
      if (cell.scenario == spec.name) dominants.insert(cell.dominant_method());
    }
    if (dominants.size() > 1) ++moving;
  }
  std::printf("scenarios whose dominant method shifts across policies: %zu\n",
              moving);
  if (!all_verified) {
    std::fprintf(stderr, "scenario_matrix: round-trip verification FAILED\n");
    return 1;
  }
  if (moving < 2) {
    std::fprintf(stderr,
                 "scenario_matrix: frontier did not move (need >= 2 "
                 "scenarios with policy-dependent methods, got %zu)\n",
                 moving);
    return 1;
  }
  std::printf("grid acceptance: OK\n");
  return 0;
}
