// Ablation: sensitivity of the §2.5 decision constants (alpha = 0.83,
// beta = 3.48, ratio cut = 48.78 %). Each constant is swept under three
// constant load regimes of the 100 Mb link:
//   light     (~10 % used, 6.8 MB/s)  — compression should NOT pay;
//   heavy     (~70 % used, 2.3 MB/s)  — LZ territory;
//   saturated (~95 % used, 0.38 MB/s) — strongest-method territory.
// The paper's constants should be at-or-near the best cell in EVERY column;
// extreme values must lose at least one regime — that is what makes the
// adaptive middle ground valuable.

#include "bench_common.hpp"
#include "netsim/load_trace.hpp"

namespace {

using namespace acex;

double run_regime(const Bytes& data, double cpu_scale, double connections,
                  adaptive::DecisionParams params) {
  adaptive::ExperimentConfig config;
  config.link = netsim::fast_ethernet_link();
  config.link.jitter_frac = 0.0;
  config.link.share_per_connection = 0.014;
  config.background = netsim::LoadTrace({{0, connections}});
  config.adaptive.async_sampling = false;
  config.adaptive.initial_bandwidth_Bps = config.link.bandwidth_Bps;
  config.adaptive.cpu_scale = cpu_scale;
  config.adaptive.decision = params;
  return run_adaptive(data, config).stream.total_seconds;
}

void sweep(const char* title, const char* column, const Bytes& data,
           double cpu_scale, const std::vector<double>& values,
           adaptive::DecisionParams (*make)(double)) {
  bench::header(title);
  std::printf("%10s  %10s  %10s  %12s\n", column, "light(s)", "heavy(s)",
              "saturated(s)");
  bench::rule();
  for (const double v : values) {
    const auto params = make(v);
    std::printf("%10.2f  %10.3f  %10.3f  %12.3f\n", v,
                run_regime(data, cpu_scale, 7, params),
                run_regime(data, cpu_scale, 50, params),
                run_regime(data, cpu_scale, 68, params));
  }
}

}  // namespace

int main() {
  const Bytes data = bench::commercial_data(8 * 1024 * 1024);
  const double cpu_scale = adaptive::cpu_scale_for_lz_speed(
      data, adaptive::kPaperLzReducingBps);

  sweep("Ablation: alpha (compress-at-all gate; paper 0.83)", "alpha", data,
        cpu_scale, {0.2, 0.5, 0.83, 1.5, 3.0, 6.0}, [](double v) {
          adaptive::DecisionParams p;
          p.alpha = v;
          p.beta = std::max(p.beta, v + 0.1);
          return p;
        });

  sweep("Ablation: beta (LZ -> BW escalation; paper 3.48)", "beta", data,
        cpu_scale, {1.0, 2.0, 3.48, 7.0, 20.0, 45.0}, [](double v) {
          adaptive::DecisionParams p;
          p.beta = v;
          return p;
        });

  sweep("Ablation: ratio cut percent (paper 48.78)", "cut", data, cpu_scale,
        {10.0, 25.0, 48.78, 70.0, 95.0}, [](double v) {
          adaptive::DecisionParams p;
          p.ratio_cut_percent = v;
          return p;
        });

  std::printf(
      "\nReading: small alpha over-compresses on the light link; huge alpha "
      "refuses to\ncompress on the loaded ones; the paper's 0.83 is "
      "competitive in every column.\nbeta only matters when the link is "
      "saturated (it picks LZ vs BW); the ratio cut\ntrades Huffman "
      "against LZ on data near the compressibility boundary.\n");
  return 0;
}
