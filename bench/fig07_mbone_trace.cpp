// Figure 7: the MBone-derived background-load trace — number of connected
// sessions over 160 s. Prints the built-in trace (our stand-in for the
// captured traces of [36]) both as numbers and as an ASCII profile.

#include "bench_common.hpp"
#include "netsim/load_trace.hpp"

int main() {
  using namespace acex;
  const netsim::LoadTrace& trace = netsim::mbone_trace();

  bench::header("Figure 7: MBone load trace (connections over time)");
  std::printf("%8s  %11s  profile\n", "time(s)", "connections");
  bench::rule();
  for (const auto& p : trace.points()) {
    if (static_cast<int>(p.time) % 8 != 0) continue;  // readable subsample
    std::printf("%8.0f  %11.0f  %s\n", p.time, p.value,
                std::string(static_cast<std::size_t>(p.value), '#').c_str());
  }
  std::printf("\nduration: %.0f s   peak: %.0f connections\n",
              trace.duration(), trace.peak());
  std::printf(
      "Shape check (paper Fig. 7): quiet start, peak of ~17 around "
      "t=60-100 s, decay: %s\n",
      trace.peak() >= 15 && trace.peak() <= 20 && trace.value_at(2) < 2 &&
              trace.value_at(158) < 4
          ? "reproduced"
          : "DIFFERS");
  return 0;
}
