// google-benchmark microbenches: per-codec compress/decompress throughput
// on the two paper datasets plus the BWT/MTF/RLE pipeline stages. These
// are the steady-state numbers behind Figs. 3 and 4 with benchmark-grade
// statistics (run with --benchmark_repetitions=... for confidence
// intervals).

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "compress/bwt.hpp"
#include "compress/mtf.hpp"
#include "compress/rle.hpp"

namespace {

using namespace acex;

const Bytes& commercial() {
  static const Bytes data = bench::commercial_data(1024 * 1024);
  return data;
}

const Bytes& molecular() {
  static const Bytes data = bench::molecular_data(8192, 4);
  return data;
}

void BM_Compress(benchmark::State& state, MethodId method, const Bytes& data) {
  const CodecPtr codec = make_codec(method);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->compress(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}

void BM_Decompress(benchmark::State& state, MethodId method,
                   const Bytes& data) {
  const CodecPtr codec = make_codec(method);
  const Bytes packed = codec->compress(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->decompress(packed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}

void BM_BwtForward(benchmark::State& state) {
  const ByteView block = ByteView(commercial()).subspan(0, 128 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bwt::forward(block));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block.size()));
}

void BM_BwtInverse(benchmark::State& state) {
  const auto t = bwt::forward(ByteView(commercial()).subspan(0, 128 * 1024));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bwt::inverse(t.last_column, t.primary));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.last_column.size()));
}

void BM_MtfEncode(benchmark::State& state) {
  const auto t = bwt::forward(ByteView(commercial()).subspan(0, 128 * 1024));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mtf::encode(t.last_column));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.last_column.size()));
}

void BM_RleEncode(benchmark::State& state) {
  const auto m = mtf::encode(
      bwt::forward(ByteView(commercial()).subspan(0, 128 * 1024)).last_column);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rle::encode(m));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.size()));
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<MethodId> methods = paper_methods();
  methods.push_back(MethodId::kLzw);
  for (const MethodId m : methods) {
    const std::string name(method_name(m));
    benchmark::RegisterBenchmark(("compress/" + name + "/commercial").c_str(),
                                 BM_Compress, m, commercial());
    benchmark::RegisterBenchmark(("compress/" + name + "/molecular").c_str(),
                                 BM_Compress, m, molecular());
    benchmark::RegisterBenchmark(
        ("decompress/" + name + "/commercial").c_str(), BM_Decompress, m,
        commercial());
  }
  benchmark::RegisterBenchmark("stage/bwt_forward_128K", BM_BwtForward);
  benchmark::RegisterBenchmark("stage/bwt_inverse_128K", BM_BwtInverse);
  benchmark::RegisterBenchmark("stage/mtf_encode_128K", BM_MtfEncode);
  benchmark::RegisterBenchmark("stage/rle_encode_128K", BM_RleEncode);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
