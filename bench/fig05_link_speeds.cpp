// Figure 5: end-to-end transfer speed of the four links (1 Gb, 100 Mb,
// 1 Mb, GaTech<->Bar-Ilan international), with the measured standard
// deviations the paper reports (0.782 %, 8.95 %, 1.17 %, 46.02 %).
//
// The emulated links are parameterized to the paper's measured means and
// variabilities (DESIGN.md §2); this bench verifies the emulation delivers
// them end to end through the transport layer, 128 KiB blocks on warm
// links.

#include "bench_common.hpp"
#include "netsim/link.hpp"
#include "transport/sim_transport.hpp"
#include "util/stats.hpp"

int main() {
  using namespace acex;

  bench::header("Figure 5: transfer speed per link (128 KiB blocks)");
  std::printf("%-16s  %12s  %12s  %10s  %12s\n", "link", "paper MB/s",
              "measured", "stddev %", "paper stddev");
  bench::rule();

  const double paper_stddev[] = {0.782, 8.95, 1.17, 46.02};
  std::size_t idx = 0;
  for (const netsim::LinkParams& params : netsim::figure5_links()) {
    VirtualClock clock;
    netsim::SimLink link(params, 2004);
    netsim::SimLink reverse(params, 2005);
    transport::SimDuplex duplex(link, reverse, clock);

    RunningStats speed;
    const Bytes block(128 * 1024, 0xA5);
    // Warm line: skip the first transfer, then sample 400.
    duplex.a().send(block);
    for (int i = 0; i < 400; ++i) {
      const Seconds before = clock.now();
      duplex.a().send(block);
      speed.add(static_cast<double>(block.size()) / (clock.now() - before));
    }
    std::printf("%-16s  %12.3f  %12.3f  %9.2f%%  %11.2f%%\n",
                params.name.c_str(), params.bandwidth_Bps / 1e6,
                speed.mean() / 1e6, speed.stddev_percent(),
                paper_stddev[idx++]);
  }

  std::printf(
      "\nShape check: means track Fig. 5 (26.32 / 7.52 / 0.147 / 0.109 "
      "MB/s), the\ninternational link is by far the most variable.\n");
  return 0;
}
