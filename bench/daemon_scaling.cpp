// Daemon fan-out scaling (DESIGN.md §13): one in-process acexd event loop
// serving 1 / 64 / 256 / 512 concurrent loopback TCP subscribers with
// heterogeneous negotiated compression parameters. Reports wall-clock
// publish-to-verified-delivery throughput per subscriber count, the
// aggregate wire bytes the daemon pushed, and the loop wakeup count —
// the scaling story behind the "hundreds of concurrent subscribers"
// claim, measured over real sockets rather than the in-process broker
// harness fanout_scaling uses.

#include <sys/resource.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "net/client.hpp"
#include "net/daemon.hpp"
#include "net/demo_stream.hpp"
#include "util/clock.hpp"

namespace {

using namespace acex;

/// Each subscriber fd costs one descriptor on both ends plus the daemon's
/// listener/pipe plumbing; 512 subscribers therefore needs ~1100 fds.
/// Returns the count the current RLIMIT_NOFILE can actually host.
std::size_t raise_fd_limit(std::size_t want_subs) {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return want_subs;
  const rlim_t need = static_cast<rlim_t>(want_subs) * 2 + 64;
  if (lim.rlim_cur < need) {
    rlimit raised = lim;
    raised.rlim_cur = need > lim.rlim_max ? lim.rlim_max : need;
    (void)setrlimit(RLIMIT_NOFILE, &raised);
    (void)getrlimit(RLIMIT_NOFILE, &lim);
  }
  if (lim.rlim_cur < need) {
    const std::size_t fit = (static_cast<std::size_t>(lim.rlim_cur) - 64) / 2;
    std::fprintf(stderr,
                 "daemon_scaling: RLIMIT_NOFILE %llu caps the run at %zu "
                 "subscribers (wanted %zu)\n",
                 static_cast<unsigned long long>(lim.rlim_cur), fit,
                 want_subs);
    return fit;
  }
  return want_subs;
}

struct RunResult {
  std::size_t subscribers = 0;
  double seconds = 0;
  double blocks_per_second = 0;
  double payload_mib_per_second = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t wakeups = 0;
};

RunResult run_once(std::size_t subscribers, std::size_t blocks,
                   std::size_t block_size) {
  net::DaemonConfig config;
  config.tick_interval = 0.02;
  config.session.liveness_timeout = 30.0;  // no liveness churn mid-bench
  config.session.suspect_grace = 30.0;
  // The whole publish burst is enqueued up front; deep egress queues keep
  // the measurement about socket fan-out, not eviction/NACK recovery.
  config.session.subscriber.egress_capacity = 4 * blocks;
  net::Daemon daemon(config);
  daemon.start();

  // Heterogeneous offers: cycle method preference and block size so the
  // daemon carries genuinely distinct negotiated pipelines side by side.
  const std::vector<std::vector<MethodId>> method_cycle = {
      {MethodId::kHuffman, MethodId::kNone},
      {MethodId::kLempelZiv, MethodId::kNone},
      {MethodId::kLzw, MethodId::kNone},
      {MethodId::kNone},
  };

  std::vector<std::unique_ptr<net::DaemonClient>> clients;
  clients.reserve(subscribers);
  for (std::size_t i = 0; i < subscribers; ++i) {
    net::DaemonClientConfig cfg;
    cfg.offer.methods = method_cycle[i % method_cycle.size()];
    cfg.offer.block_size =
        static_cast<std::uint32_t>(8 * 1024 * ((i % 4) + 1));
    cfg.offer.name = "bench-" + std::to_string(i);
    clients.push_back(
        std::make_unique<net::DaemonClient>(daemon.port(), cfg));
  }

  const std::uint64_t seed = 20040926;
  std::size_t expected_bytes = 0;
  std::vector<Bytes> payload;
  payload.reserve(blocks);
  for (std::size_t i = 0; i < blocks; ++i) {
    payload.push_back(
        net::demo_block(seed, static_cast<std::uint32_t>(i), block_size));
    expected_bytes += payload.back().size();
  }

  MonotonicClock clock;
  const Seconds start = clock.now();
  for (Bytes& block : payload) daemon.publish(std::move(block));

  // Drive every client off its own thread (the client API is blocking);
  // the run ends when the last subscriber has decoded every byte.
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> drivers;
  drivers.reserve(clients.size());
  for (auto& client : clients) {
    drivers.emplace_back([&client, &failures, expected_bytes] {
      if (!client->poll_until(expected_bytes, 120000)) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  const Seconds elapsed = clock.now() - start;

  for (auto& client : clients) client->bye();
  daemon.stop();
  const net::DaemonStats stats = daemon.stats();

  if (failures.load() != 0) {
    std::fprintf(stderr, "daemon_scaling: %zu/%zu subscribers timed out\n",
                 failures.load(), subscribers);
  }

  RunResult r;
  r.subscribers = subscribers;
  r.seconds = elapsed;
  r.blocks_per_second = static_cast<double>(blocks) / elapsed;
  r.payload_mib_per_second =
      static_cast<double>(expected_bytes) * static_cast<double>(subscribers) /
      elapsed / (1024.0 * 1024.0);
  r.wire_bytes = stats.bytes_out;
  r.wakeups = stats.loop_wakeups;
  return r;
}

}  // namespace

int main() {
  bench::header("acexd fan-out scaling (real loopback sockets)");

  constexpr std::size_t kBlocks = 48;
  constexpr std::size_t kBlockSize = 16 * 1024;
  const std::size_t max_subs = raise_fd_limit(512);

  std::printf("%6s  %9s  %10s  %14s  %12s  %9s\n", "subs", "time(s)",
              "blocks/s", "payload MiB/s", "wire bytes", "wakeups");
  bench::rule();

  for (const std::size_t subs : {std::size_t{1}, std::size_t{64},
                                 std::size_t{256}, std::size_t{512}}) {
    if (subs > max_subs) {
      std::printf("%6zu  (skipped: fd limit)\n", subs);
      continue;
    }
    const RunResult r = run_once(subs, kBlocks, kBlockSize);
    std::printf("%6zu  %9.3f  %10.1f  %14.2f  %12llu  %9llu\n",
                r.subscribers, r.seconds, r.blocks_per_second,
                r.payload_mib_per_second,
                static_cast<unsigned long long>(r.wire_bytes),
                static_cast<unsigned long long>(r.wakeups));
    const std::string label = std::to_string(subs);
    bench::record_result("bench.daemon.seconds", "subs", label, r.seconds);
    bench::record_result("bench.daemon.payload_MiBps", "subs", label,
                         r.payload_mib_per_second);
    bench::record_result("bench.daemon.wire_bytes", "subs", label,
                         static_cast<double>(r.wire_bytes));
  }

  bench::write_results_json("daemon_scaling");
  return 0;
}
