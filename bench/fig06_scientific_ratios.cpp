// Figure 6: per-field compression ratios on the molecular-dynamics data —
// "type", "velocity", and "coordinates" series compress very differently
// (paper: coordinates nearly incompressible for every method; types
// compress best; velocities in between), which is why the selector must
// sample data, not just watch the link.

#include "bench_common.hpp"
#include "workloads/molecular.hpp"

int main() {
  using namespace acex;

  workloads::MolecularConfig config;
  config.atom_count = 65536;
  workloads::MolecularGenerator gen(config);
  for (int i = 0; i < 4; ++i) gen.step();

  struct Field {
    const char* name;
    Bytes data;
  };
  const std::vector<Field> fields = {
      {"type", gen.types_bytes()},
      {"velocity", gen.velocities_bytes()},
      {"coordinates", gen.coordinates_bytes()},
  };

  bench::header("Figure 6: ratio per MD field (percent of original)");
  std::printf("%-14s  %10s", "method", "original");
  for (const auto& f : fields) std::printf("  %12s", f.name);
  std::printf("\n");
  bench::rule();

  std::printf("%-14s  %9.1f%%", "(none)", 100.0);
  for (const auto& f : fields) {
    std::printf("  %11.1f%%", 100.0);
    (void)f;
  }
  std::printf("\n");

  std::map<std::string, std::map<MethodId, double>> grid;
  for (const MethodId m : paper_methods()) {
    std::printf("%-14s  %10s", std::string(method_name(m)).c_str(), "");
    for (const auto& f : fields) {
      const auto r = bench::measure(m, f.data);
      grid[f.name][m] = r.ratio_percent();
      std::printf("  %11.1f%%", r.ratio_percent());
    }
    std::printf("\n");
  }

  const bool coords_hard =
      grid["coordinates"][MethodId::kHuffman] > 85.0 &&
      grid["coordinates"][MethodId::kLempelZiv] > 75.0;
  const bool types_easy = grid["type"][MethodId::kBurrowsWheeler] < 35.0 &&
                          grid["type"][MethodId::kLempelZiv] < 35.0;
  const bool vel_between =
      grid["velocity"][MethodId::kLempelZiv] <
          grid["coordinates"][MethodId::kLempelZiv] &&
      grid["velocity"][MethodId::kLempelZiv] >
          grid["type"][MethodId::kLempelZiv];
  std::printf(
      "\nShape check (paper): coordinates ~incompressible (%s), types "
      "compress best (%s),\nvelocities in between (%s).\n",
      coords_hard ? "ok" : "DIFFERS", types_easy ? "ok" : "DIFFERS",
      vel_between ? "ok" : "DIFFERS");
  return 0;
}
