// Figure 4: "reducing speed" — MBytes removed from the stream per second
// of compression work — per method, on two CPUs (Sun-Fire-280R vs the
// ~2.2x slower Ultra-Sparc). Paper values on the Sun-Fire: LZ highest at
// ~3.5 MB/s, Huffman ~1.8, BW ~0.7, Arithmetic ~0.35.
//
// We measure on the build host and project through the two CpuModel
// profiles, normalizing the Sun-Fire profile so its LZ reducing speed
// matches the paper's 3.5 MB/s — ratios between methods are this host's.

#include "bench_common.hpp"
#include "netsim/cpu_model.hpp"

int main() {
  using namespace acex;
  const Bytes data = bench::commercial_data();

  // Host measurements: best of three runs per method — reducing speed is a
  // capability figure, and one-shot timings wobble with cache state.
  std::map<MethodId, double> host_speed;
  for (const MethodId m : paper_methods()) {
    double best = 0;
    for (int run = 0; run < 3; ++run) {
      best = std::max(best, bench::measure(m, data).reducing_speed());
    }
    host_speed[m] = best;
  }

  const double normalize =
      adaptive::kPaperLzReducingBps /
      std::max(host_speed[MethodId::kLempelZiv], 1.0);

  bench::header("Figure 4: reducing speed (MB removed per second)");
  std::printf("%-16s  %14s  %14s  %14s\n", "method", "host MB/s",
              "Sun-Fire MB/s", "Ultra-Sparc MB/s");
  bench::rule();
  for (const MethodId m : paper_methods()) {
    const double host = host_speed[m] / 1e6;
    const double sunfire = host * normalize *
                           netsim::sun_fire_280r().speed_factor;
    const double ultra = host * normalize * netsim::ultra_sparc().speed_factor;
    std::printf("%-16s  %14.3f  %14.3f  %14.3f\n",
                std::string(method_name(m)).c_str(), host, sunfire, ultra);
  }

  // The property the selection algorithm rests on: LZ reduces at least as
  // fast as the stronger dictionary method (that is what beta > 1 encodes)
  // and arithmetic trails far behind. Our documented deviation (see
  // EXPERIMENTS.md): a 2026 table-driven Huffman tops the chart, where the
  // paper's 2003 implementation placed second — harmless, because the
  // selector thresholds only on LZ.
  const double lz = host_speed[MethodId::kLempelZiv];
  const double bw = host_speed[MethodId::kBurrowsWheeler];
  const double ar = host_speed[MethodId::kArithmetic];
  std::printf(
      "\nShape check (paper): LZ reduces faster than BW (within measurement "
      "slack) and\nfar faster than arithmetic; both CPUs preserve the "
      "ordering: %s\n",
      (lz > bw * 0.9 && ar < lz / 2) ? "reproduced" : "DIFFERS");
  std::printf("(documented deviation: modern Huffman tops this chart; the "
              "paper's placed second)\n");
  return 0;
}
