// Ablation: application-aware columnar shuffling of PBIO streams before
// compression. Fig. 6 shows the MD fields compress at wildly different
// ratios; transposing records so each field's bytes are contiguous lets the
// dictionary methods exploit exactly that — an instance of the
// application-specific handler layer the paper's middleware hosts.

#include "bench_common.hpp"
#include "pbio/columnar.hpp"

int main() {
  using namespace acex;

  // One snapshot = one format header + fixed-size records, the layout the
  // transpose operates on (multi-snapshot streams shuffle per snapshot).
  workloads::MolecularConfig config;
  config.atom_count = 65536;
  workloads::MolecularGenerator gen(config);
  const Bytes stream = gen.pbio_snapshot();
  const Bytes shuffled = pbio::columnar_shuffle(stream);

  bench::header("Ablation: columnar shuffle of PBIO molecular snapshots");
  std::printf("stream: %zu bytes (%zu-byte overhead when shuffled)\n\n",
              stream.size(), shuffled.size() - stream.size());
  std::printf("%-16s  %12s  %12s  %10s\n", "method", "interleaved",
              "columnar", "gain");
  bench::rule();

  for (const MethodId m : paper_methods()) {
    const CodecPtr codec = make_codec(m);
    const double a = static_cast<double>(codec->compress(stream).size());
    const double b = static_cast<double>(codec->compress(shuffled).size());
    std::printf("%-16s  %11.2f%%  %11.2f%%  %9.1f%%\n",
                std::string(method_name(m)).c_str(),
                100.0 * a / static_cast<double>(stream.size()),
                100.0 * b / static_cast<double>(stream.size()),
                100.0 * (a - b) / a);
  }

  std::printf(
      "\nReading: same bytes, same lossless codecs, friendlier order. The "
      "dictionary\nmethods gain (contiguous same-field runs), and ADAPTIVE "
      "arithmetic gains too —\nits model tracks each column's local "
      "statistics. STATIC Huffman is exactly\npermutation-blind (identical "
      "histogram, 0.0 %%), confirming the effect is\nstructural, not "
      "statistical.\n");

  // Fig. 6 per-field view, straight off the ColumnSlices map: each
  // column's bytes are already contiguous in the shuffled form, so the
  // per-field ratio is one codec call per slice — no offset arithmetic.
  const pbio::ColumnSlices slices = pbio::column_slices(shuffled);
  std::printf("\nper-field compressibility (lempel-ziv on each column):\n");
  std::printf("%-14s  %10s  %8s\n", "field", "bytes", "ratio");
  bench::rule();
  const CodecPtr lz = make_codec(MethodId::kLempelZiv);
  for (std::size_t i = 0; i < slices.columns.size(); ++i) {
    const ByteView column = slices.column(shuffled, i);
    std::printf("%-14s  %10zu  %7.2f%%\n", slices.columns[i].name.c_str(),
                column.size(),
                100.0 * static_cast<double>(lz->compress(column).size()) /
                    static_cast<double>(column.size()));
  }
  return 0;
}
