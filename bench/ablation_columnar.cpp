// Ablation: application-aware columnar shuffling of PBIO streams before
// compression. Fig. 6 shows the MD fields compress at wildly different
// ratios; transposing records so each field's bytes are contiguous lets the
// dictionary methods exploit exactly that — an instance of the
// application-specific handler layer the paper's middleware hosts.

#include "bench_common.hpp"
#include "pbio/columnar.hpp"

int main() {
  using namespace acex;

  // One snapshot = one format header + fixed-size records, the layout the
  // transpose operates on (multi-snapshot streams shuffle per snapshot).
  workloads::MolecularConfig config;
  config.atom_count = 65536;
  workloads::MolecularGenerator gen(config);
  const Bytes stream = gen.pbio_snapshot();
  const Bytes shuffled = pbio::columnar_shuffle(stream);

  bench::header("Ablation: columnar shuffle of PBIO molecular snapshots");
  std::printf("stream: %zu bytes (%zu-byte overhead when shuffled)\n\n",
              stream.size(), shuffled.size() - stream.size());
  std::printf("%-16s  %12s  %12s  %10s\n", "method", "interleaved",
              "columnar", "gain");
  bench::rule();

  for (const MethodId m : paper_methods()) {
    const CodecPtr codec = make_codec(m);
    const double a = static_cast<double>(codec->compress(stream).size());
    const double b = static_cast<double>(codec->compress(shuffled).size());
    std::printf("%-16s  %11.2f%%  %11.2f%%  %9.1f%%\n",
                std::string(method_name(m)).c_str(),
                100.0 * a / static_cast<double>(stream.size()),
                100.0 * b / static_cast<double>(stream.size()),
                100.0 * (a - b) / a);
  }

  std::printf(
      "\nReading: same bytes, same lossless codecs, friendlier order. The "
      "dictionary\nmethods gain (contiguous same-field runs), and ADAPTIVE "
      "arithmetic gains too —\nits model tracks each column's local "
      "statistics. STATIC Huffman is exactly\npermutation-blind (identical "
      "histogram, 0.0 %%), confirming the effect is\nstructural, not "
      "statistical.\n");
  return 0;
}
