// Figure 2: compression ratios ("percents of compression", lower = better)
// of the four methods on the commercial transaction data. Paper values:
// Burrows-Wheeler ~30 %, Lempel-Ziv ~35 %, Arithmetic ~45 %, Huffman ~48 %.

#include "bench_common.hpp"
#include "compress/zlib_codec.hpp"

int main() {
  using namespace acex;
  const Bytes data = bench::commercial_data();

  bench::header("Figure 2: compression ratio on commercial (OIS) data");
  std::printf("dataset: %zu bytes of operational transaction text\n\n",
              data.size());
  std::printf("%-16s  %14s  %10s\n", "method", "compressed", "percent");
  bench::rule();

  double prev = 0;
  bool ordered = true;
  for (const MethodId m : paper_methods()) {
    const auto r = bench::measure(m, data);
    std::printf("%-16s  %14zu  %9.2f%%\n",
                std::string(method_name(m)).c_str(), r.compressed_size,
                r.ratio_percent());
    ordered = ordered && r.ratio_percent() >= prev - 0.5;
    prev = r.ratio_percent();
  }
  std::printf(
      "\nShape check (paper: BW < LZ < Arithmetic < Huffman): %s\n",
      ordered ? "ordering reproduced" : "ORDERING DIFFERS");

  // The paper's abstract calls the commercial data "XML"; the same event
  // stream rendered as markup compresses harder still (tags dominate).
  {
    workloads::TransactionGenerator xml_gen(2004);
    const Bytes xml = xml_gen.xml_block(data.size());
    std::printf("\nXML rendering of the same events:\n");
    for (const MethodId m : paper_methods()) {
      const auto r = bench::measure(m, xml);
      std::printf("%-16s  %14zu  %9.2f%%\n",
                  std::string(method_name(m)).c_str(), r.compressed_size,
                  r.ratio_percent());
    }
  }

  {
    const auto w = bench::measure(MethodId::kLzw, data);
    std::printf("(comparator: LZ78/LZW reaches %.2f %% — why the paper took "
                "the LZ77 branch)\n",
                w.ratio_percent());
  }
  if (zlib_available()) {
    const auto z = bench::measure(MethodId::kZlib, data);
    std::printf("(comparator: zlib deflate reaches %.2f %%)\n",
                z.ratio_percent());
  }
  return 0;
}
