// Ablation: why sample 4 KiB? The sampler's prefix must be big enough to
// predict the block's compressibility yet cheap enough to run per block.
// Reports (a) prediction error of the sampled LZ ratio vs the block's true
// LZ ratio, and (b) sampling cost, across prefix sizes.

#include <cmath>

#include "adaptive/sampler.hpp"
#include "bench_common.hpp"

int main() {
  using namespace acex;
  const Bytes commercial = bench::commercial_data(8 * 1024 * 1024);
  const Bytes molecular = bench::molecular_data(16384, 16);

  constexpr std::size_t kBlock = 128 * 1024;

  bench::header("Ablation: sampler prefix size (4 KiB is the paper's)");
  std::printf("%10s  %22s  %22s  %14s\n", "sample", "commercial |err| pp",
              "molecular |err| pp", "cost us/block");
  bench::rule();

  for (const std::size_t bytes :
       {512u, 1024u, 2048u, 4096u, 8192u, 16384u, 65536u}) {
    adaptive::Sampler sampler(bytes);
    LempelZivCodec lz;
    MonotonicClock clock;

    double cost_us = 0;
    std::size_t cost_samples = 0;
    const auto mean_abs_err = [&](const Bytes& data) {
      double err_sum = 0;
      std::size_t blocks = 0;
      for (std::size_t off = 0; off + kBlock <= data.size();
           off += kBlock * 4) {
        const ByteView block = ByteView(data).subspan(off, kBlock);
        const Stopwatch sw(clock);
        const auto s = sampler.sample(block);
        cost_us += sw.elapsed() * 1e6;
        ++cost_samples;
        const double truth =
            100.0 * static_cast<double>(lz.compress(block).size()) /
            static_cast<double>(kBlock);
        err_sum += std::abs(s.ratio_percent - truth);
        ++blocks;
      }
      return err_sum / static_cast<double>(blocks);
    };

    const double commercial_err = mean_abs_err(commercial);
    const double molecular_err = mean_abs_err(molecular);
    std::printf("%9zu B %21.2f %22.2f  %14.1f\n", bytes, commercial_err,
                molecular_err, cost_us / static_cast<double>(cost_samples));
  }

  std::printf(
      "\nExpectation: error drops steeply up to a few KiB then flattens, "
      "while cost keeps\ngrowing — 4 KiB buys most of the accuracy at a "
      "small fraction of a block's work.\n");
  return 0;
}
