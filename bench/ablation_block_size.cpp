// Ablation: why 128 KiB blocks? ("The sizes of the blocks have been chosen
// according to the efficiency of compression methods based on [32,33].")
// Sweeps the streaming block size on the loaded-link commercial scenario:
// small blocks lose compression ratio (per-block headers, less context) and
// pay more per-block overhead; huge blocks react slowly to load changes.

#include "bench_common.hpp"
#include "netsim/load_trace.hpp"

int main() {
  using namespace acex;
  const Bytes data = bench::commercial_data(16 * 1024 * 1024);
  const double cpu_scale = adaptive::cpu_scale_for_lz_speed(
      data, adaptive::kPaperLzReducingBps);

  bench::header("Ablation: streaming block size (loaded 100 Mb link)");
  std::printf("%10s  %10s  %10s  %12s  %10s\n", "block", "total(s)",
              "wire %", "compress(s)", "blocks");
  bench::rule();

  for (const std::size_t kib : {16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    adaptive::ExperimentConfig config;
    config.link = netsim::fast_ethernet_link();
    config.link.jitter_frac = 0.0;
    config.link.share_per_connection = 0.014;
    // Constant 70 % background load keeps the selector in its
    // compression regime for the whole sweep.
    config.background = netsim::LoadTrace({{0, 50}});
    config.adaptive.async_sampling = false;
    config.adaptive.initial_bandwidth_Bps = config.link.bandwidth_Bps;
    config.adaptive.cpu_scale = cpu_scale;
    config.adaptive.decision.block_size = kib * 1024;
    config.adaptive.decision.sample_size =
        std::min<std::size_t>(4096, kib * 1024);

    const auto result = run_adaptive(data, config);
    std::printf("%7zu K  %10.3f  %9.1f%%  %12.3f  %10zu  %s\n", kib,
                result.stream.total_seconds,
                result.stream.wire_ratio_percent(),
                result.stream.compress_seconds, result.stream.blocks.size(),
                result.verified ? "" : "!! round-trip FAILED");
  }
  std::printf(
      "\nReading: the wire ratio improves up to ~128 KiB (the LZ window "
      "fills; per-block\nheaders amortize) and flattens after — the paper's "
      "choice sits at that knee.\nTotal time additionally reflects per-byte "
      "CPU cost, which grows mildly with block\nsize (denser hash chains), "
      "and decision granularity: 128 KiB balances ratio,\nCPU, and how "
      "quickly the selector can react to load changes.\n");
  return 0;
}
