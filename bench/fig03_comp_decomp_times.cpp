// Figure 3: compression and decompression wall times per method on the
// commercial data (paper: measured on a Sun-Fire-280R; Burrows-Wheeler
// compress is by far the slowest at ~8 s on their dataset, Huffman and
// Lempel-Ziv decompress fastest).
//
// We measure on the build host and additionally print the Sun-Fire-scaled
// projection (DESIGN.md §2: the figure's content is the relative ordering,
// which scaling preserves).

#include "bench_common.hpp"
#include "netsim/cpu_model.hpp"

int main() {
  using namespace acex;
  const Bytes data = bench::commercial_data();

  // Calibrate "this host -> Sun-Fire" from LZ's reducing speed (Fig. 4
  // measured ~3.5 MB/s there).
  const double scale = adaptive::cpu_scale_for_lz_speed(
      data, adaptive::kPaperLzReducingBps);

  bench::header("Figure 3: compression / decompression times (commercial)");
  std::printf("dataset: %zu bytes; Sun-Fire projection = host time / %.3f\n\n",
              data.size(), scale);
  std::printf("%-16s  %12s  %12s  %14s  %14s\n", "method", "comp(host s)",
              "decomp(host)", "comp(SunFire)", "decomp(SunFire)");
  bench::rule();

  double bw_comp = 0, huff_comp = 0, arith_decomp = 0, huff_decomp = 0;
  for (const MethodId m : paper_methods()) {
    const auto r = bench::measure(m, data);
    std::printf("%-16s  %12.4f  %12.4f  %14.3f  %14.3f\n",
                std::string(method_name(m)).c_str(), r.compress_time,
                r.decompress_time, r.compress_time / scale,
                r.decompress_time / scale);
    if (m == MethodId::kBurrowsWheeler) bw_comp = r.compress_time;
    if (m == MethodId::kHuffman) {
      huff_comp = r.compress_time;
      huff_decomp = r.decompress_time;
    }
    if (m == MethodId::kArithmetic) arith_decomp = r.decompress_time;
  }

  std::printf(
      "\nShape check (paper): BW compress slowest by a wide margin (%s, "
      "%.1fx Huffman);\narithmetic decompress much slower than Huffman "
      "decompress (%s, %.1fx).\n",
      bw_comp > 3 * huff_comp ? "reproduced" : "DIFFERS",
      bw_comp / huff_comp,
      arith_decomp > 2 * huff_decomp ? "reproduced" : "DIFFERS",
      arith_decomp / huff_decomp);
  return 0;
}
