// Ablation: the RUDP-style bulk transport ([14]) at packet granularity —
// goodput and efficiency across loss rates and window sizes on the
// emulated international link. Context for the paper's architecture: the
// middleware delegates large transfers to transports like this, and the
// compression selector only ever sees their end-to-end accept rate.

#include "bench_common.hpp"
#include "netsim/rudp.hpp"

int main() {
  using namespace acex;
  using netsim::rudp::RudpParams;
  using netsim::rudp::simulate_transfer;

  bench::header("Ablation: RUDP window x loss (international link, 1 MB)");
  std::printf("%8s  %8s  %14s  %12s  %10s\n", "window", "loss", "goodput KB/s",
              "retransmits", "efficiency");
  bench::rule();

  for (const unsigned window : {1u, 8u, 32u, 128u}) {
    for (const double loss : {0.0, 0.02, 0.1}) {
      netsim::LinkParams link = netsim::international_link();
      link.jitter_frac = 0.05;  // keep the grid readable
      link.loss_rate = 0;       // loss is modeled per packet here
      netsim::SimLink forward(link, 7);
      netsim::SimLink reverse(link, 8);
      Rng rng(9);
      RudpParams params;
      params.window = window;
      params.data_loss = loss;
      params.ack_loss = loss / 2;
      const auto r =
          simulate_transfer(1'000'000, forward, reverse, 0, rng, params);
      std::printf("%8u  %7.0f%%  %14.1f  %12llu  %9.1f%%\n", window,
                  loss * 100, r.goodput_Bps / 1e3,
                  static_cast<unsigned long long>(r.retransmissions),
                  r.efficiency * 100);
    }
  }

  std::printf(
      "\nReading: window 1 is stop-and-wait (latency-bound); larger windows "
      "fill the\npipe until loss recovery dominates — the classic ARQ "
      "surface the middleware's\ntransport layer ([14]) navigates "
      "underneath the compression decisions.\n");
  return 0;
}
