// Columnar pipeline grid: {whole-block methods, shuffle + whole-block,
// per-column planned pipelines} x {MD trace, transactional workload}.
//
// The question this bench answers is the DESIGN.md §14 headline: does
// planning a composed stage pipeline PER COLUMN of a shuffled PBIO block
// beat the best single whole-block method, and at what CPU price? Every
// variant is round-trip verified; ratios and blocks/s land in
// BENCH_results.json for the CI artifact.

#include <vector>

#include "bench_common.hpp"
#include "colpipe/columnar_codec.hpp"
#include "compress/zlib_codec.hpp"
#include "pbio/columnar.hpp"

namespace {

using namespace acex;

struct Run {
  double ratio_percent = 0;  ///< encoded bytes / raw bytes, %
  double blocks_per_s = 0;
  double encode_seconds = 0;
};

std::vector<MethodId> whole_block_methods() {
  std::vector<MethodId> methods = paper_methods();
  if (zlib_available()) methods.push_back(MethodId::kZlib);
  return methods;
}

/// Compress every block with `codec` (shuffling first when asked), verify
/// the round trip, and tally ratio + throughput.
Run run_codec(Codec& codec, const std::vector<Bytes>& blocks, bool shuffle) {
  MonotonicClock clock;
  std::size_t raw = 0, encoded = 0;
  double encode_s = 0;
  for (const Bytes& block : blocks) {
    const Bytes input = shuffle ? pbio::columnar_shuffle(block) : block;
    const double t0 = clock.now();
    const Bytes packed = codec.compress(input);
    encode_s += clock.now() - t0;
    Bytes restored = codec.decompress(packed);
    if (shuffle) restored = pbio::columnar_unshuffle(restored);
    if (restored != block) {
      std::fprintf(stderr, "round-trip FAILED\n");
      std::exit(1);
    }
    raw += block.size();
    encoded += packed.size();
  }
  Run run;
  run.ratio_percent =
      100.0 * static_cast<double>(encoded) / static_cast<double>(raw);
  run.encode_seconds = encode_s;
  run.blocks_per_s = static_cast<double>(blocks.size()) / encode_s;
  return run;
}

void record(const char* dataset, const std::string& variant, const Run& run) {
  bench::record_result("bench.columnar_pipelines.ratio_percent", "case",
                       std::string(dataset) + "/" + variant,
                       run.ratio_percent);
  bench::record_result("bench.columnar_pipelines.blocks_per_s", "case",
                       std::string(dataset) + "/" + variant,
                       run.blocks_per_s);
}

void print_row(const std::string& name, const Run& run) {
  std::printf("%-28s  %8.2f%%  %10.1f  %10.3f\n", name.c_str(),
              run.ratio_percent, run.blocks_per_s, run.encode_seconds);
}

/// One dataset through the full grid. Returns true when the per-column
/// planner beats the best whole-block method by >= 10 % ratio at <= 2x its
/// encode CPU (the DESIGN.md §14 acceptance bar).
bool run_dataset(const char* dataset, const std::vector<Bytes>& blocks) {
  std::size_t raw = 0;
  for (const Bytes& b : blocks) raw += b.size();
  std::printf("\n%s: %zu blocks, %zu bytes\n", dataset, blocks.size(), raw);
  std::printf("%-28s  %9s  %10s  %10s\n", "variant", "ratio", "blocks/s",
              "encode s");
  bench::rule();

  Run best_whole;
  std::string best_name;
  for (const MethodId m : whole_block_methods()) {
    const CodecPtr codec = make_codec(m);
    const Run run = run_codec(*codec, blocks, false);
    const std::string name = std::string(method_name(m));
    print_row(name, run);
    record(dataset, name, run);
    if (best_name.empty() || run.ratio_percent < best_whole.ratio_percent) {
      best_whole = run;
      best_name = name;
    }
  }

  // The best whole-block method again, fed the shuffled form: how much of
  // the win is the transpose alone, before any per-column planning?
  {
    const CodecPtr codec = make_codec(method_from_name(best_name));
    const Run run = run_codec(*codec, blocks, true);
    print_row("shuffle+" + best_name, run);
    record(dataset, "shuffle+" + best_name, run);
  }

  colpipe::ColumnarCodec columnar;
  const Run planned = run_codec(columnar, blocks, false);
  print_row("colpipe (per-column)", planned);
  record(dataset, "colpipe", planned);

  const double gain =
      100.0 * (best_whole.ratio_percent - planned.ratio_percent) /
      best_whole.ratio_percent;
  const double cpu_factor = planned.encode_seconds / best_whole.encode_seconds;
  std::printf(
      "colpipe vs %s (best whole-block): %.1f %% smaller at %.2fx encode "
      "CPU\n",
      best_name.c_str(), gain, cpu_factor);
  bench::record_result("bench.columnar_pipelines.gain_percent", "dataset",
                       dataset, gain);
  bench::record_result("bench.columnar_pipelines.cpu_factor", "dataset",
                       dataset, cpu_factor);
  return gain >= 10.0 && cpu_factor <= 2.0;
}

}  // namespace

int main() {
  bench::header("Columnar pipelines: per-column planning vs whole-block");

  // Transactional workload: TPC-H-flavoured fixed-layout records (monotonic
  // counters, low-cardinality enums, skewed quantities, smooth floats).
  std::vector<Bytes> txn_blocks;
  {
    workloads::TransactionGenerator gen(2004);
    for (int i = 0; i < 12; ++i) txn_blocks.push_back(gen.pbio_block(1500));
  }
  const bool txn_ok = run_dataset("transactional", txn_blocks);

  // MD trace: per-snapshot PBIO blocks from the Fig. 6 generator.
  std::vector<Bytes> md_blocks;
  {
    workloads::MolecularConfig config;
    config.atom_count = 2048;
    config.seed = 2004;
    workloads::MolecularGenerator gen(config);
    for (int i = 0; i < 8; ++i) {
      md_blocks.push_back(gen.pbio_snapshot());
      gen.step();
    }
  }
  run_dataset("molecular", md_blocks);

  std::printf("\nacceptance (transactional): >= 10 %% ratio gain at <= 2x "
              "encode CPU: %s\n",
              txn_ok ? "PASS" : "FAIL");
  bench::write_results_json("columnar_pipelines");
  return txn_ok ? 0 : 1;
}
