// acexd — the standalone multi-client distribution daemon (DESIGN.md §13).
//
// Serves a deterministic demo block stream (net/demo_stream.hpp) to every
// TCP subscriber that completes the compression-negotiation handshake.
// Each block embeds its own publish index, so any acexctl subscriber can
// verify completeness and ordering from content alone.
//
//   acexd [--port N] [--port-file PATH] [--blocks N] [--block-size BYTES]
//         [--interval-ms MS] [--seed S] [--wait-subs N]
//         [--wait-timeout-ms MS] [--linger-ms MS] [--backend auto|epoll|poll]
//
// --blocks 0 publishes until SIGTERM/SIGINT. On shutdown a one-line
// summary of the acex.net.* counters is printed and the exit is clean.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "net/daemon.hpp"
#include "net/demo_stream.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

void msleep(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: acexd [--port N] [--port-file PATH] [--blocks N]\n"
      "             [--block-size BYTES] [--interval-ms MS] [--seed S]\n"
      "             [--wait-subs N] [--wait-timeout-ms MS] [--linger-ms MS]\n"
      "             [--backend auto|epoll|poll]\n");
  std::exit(64);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace acex;

  net::DaemonConfig config;
  const char* port_file = nullptr;
  long blocks = 100;
  long block_size = 16 * 1024;
  int interval_ms = 2;
  std::uint64_t seed = 1;
  long wait_subs = 0;
  int wait_timeout_ms = 30000;
  int linger_ms = 500;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--port") {
      config.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--port-file") {
      port_file = next();
    } else if (arg == "--blocks") {
      blocks = std::atol(next());
    } else if (arg == "--block-size") {
      block_size = std::atol(next());
    } else if (arg == "--interval-ms") {
      interval_ms = std::atoi(next());
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--wait-subs") {
      wait_subs = std::atol(next());
    } else if (arg == "--wait-timeout-ms") {
      wait_timeout_ms = std::atoi(next());
    } else if (arg == "--linger-ms") {
      linger_ms = std::atoi(next());
    } else if (arg == "--backend") {
      const std::string b = next();
      if (b == "auto") {
        config.backend = net::LoopBackend::kAuto;
      } else if (b == "epoll") {
        config.backend = net::LoopBackend::kEpoll;
      } else if (b == "poll") {
        config.backend = net::LoopBackend::kPoll;
      } else {
        usage();
      }
    } else {
      usage();
    }
  }
  if (block_size <= 0 || blocks < 0) usage();

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    net::Daemon daemon(config);
    std::printf("acexd: listening on 127.0.0.1:%u\n", daemon.port());
    std::fflush(stdout);
    if (port_file != nullptr) {
      std::FILE* f = std::fopen(port_file, "w");
      if (f == nullptr) {
        std::fprintf(stderr, "acexd: cannot write %s\n", port_file);
        return 1;
      }
      std::fprintf(f, "%u\n", daemon.port());
      std::fclose(f);
    }
    daemon.start();

    if (wait_subs > 0) {
      int waited = 0;
      while (g_stop == 0 &&
             daemon.streaming_count() < static_cast<std::size_t>(wait_subs)) {
        if (waited >= wait_timeout_ms) {
          std::fprintf(stderr, "acexd: timed out waiting for %ld subs\n",
                       wait_subs);
          daemon.stop();
          return 1;
        }
        msleep(10);
        waited += 10;
      }
    }

    std::uint32_t published = 0;
    for (long i = 0; (blocks == 0 || i < blocks) && g_stop == 0; ++i) {
      daemon.publish(net::demo_block(seed, published,
                                     static_cast<std::size_t>(block_size)));
      ++published;
      if (interval_ms > 0) msleep(interval_ms);
    }

    int lingered = 0;
    while (g_stop == 0 && lingered < linger_ms) {
      msleep(20);
      lingered += 20;
    }

    daemon.stop();
    const net::DaemonStats s = daemon.stats();
    std::printf(
        "acexd: clean shutdown published=%u connections=%llu "
        "handshakes=%llu rejects=%llu bytes_in=%llu bytes_out=%llu "
        "wakeups=%llu\n",
        published, static_cast<unsigned long long>(s.connections_total),
        static_cast<unsigned long long>(s.handshakes),
        static_cast<unsigned long long>(s.rejects),
        static_cast<unsigned long long>(s.bytes_in),
        static_cast<unsigned long long>(s.bytes_out),
        static_cast<unsigned long long>(s.loop_wakeups));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "acexd: %s\n", e.what());
    return 1;
  }
}
