// acexfuzz — deterministic fuzzing and differential-testing driver over
// the acex_qa subsystem (DESIGN.md §10). Modes:
//
//   acexfuzz --smoke                     budgeted mutation battery: every
//                                        codec container, frame envelope,
//                                        PBIO stream and event wire image
//                                        is mutated and run through the
//                                        robustness oracles
//   acexfuzz --diff [-n BLOCKS]          differential oracle: serial vs
//            [-w WORKERS]                N-worker wire byte identity per
//                                        paper codec (plus the columnar
//                                        pipeline codec) over fuzzed
//                                        payloads
//   acexfuzz --colpipe                   columnar-pipeline battery: the
//                                        round-trip oracle over PBIO/text/
//                                        random payloads, a truncation
//                                        sweep, and a mutate_colpipe storm
//                                        (forged stage ids, CRC-resealed
//                                        headers) through colpipe_survives
//   acexfuzz --soak SECONDS              invariant soak of the full bridge
//            [--rounds N]                + faulted-link + engine stack
//            [--broker K]                (SECONDS 0 = N deterministic
//            [--churn M]                 rounds); --broker K adds a K-
//                                        subscriber fan-out half with
//                                        subscriber churn every M rounds
//                                        (default 3, 0 = no churn); the
//                                        default soak is unchanged without
//                                        --broker
//   acexfuzz --chaos SECONDS             session-resilience chaos: kill and
//            [--rounds N]                reconnect every subscriber session
//            [--sessions K]              mid-stream over a faulted link and
//                                        check resume byte-identity, expiry
//                                        accounting and obs mirrors
//                                        (SECONDS 0 = one deterministic run
//                                        of N rounds; > 0 = a wall-clock
//                                        budget sweeping seeds from -s)
//   acexfuzz --handshake                 daemon handshake/protocol codec
//                                        battery: truncation + bit-flip +
//                                        varint mutations of offer/params/
//                                        welcome/reject/nack/stat wire
//                                        images — nothing but a typed
//                                        HandshakeError may escape, valid
//                                        inputs must re-encode to a byte-
//                                        identical fixpoint, and negotiate()
//                                        must hold its invariants under
//                                        random offer x policy pairs
//   acexfuzz --shm                       shared-memory descriptor battery:
//                                        mutated/truncated/varint-mangled
//                                        slab descriptors injected into a
//                                        live ShmEndpoint (only counted
//                                        skips, nothing but DecodeError may
//                                        escape a raw decode), forged
//                                        SlabDescriptors thrown at
//                                        resolve/add_ref/drop_ref (only
//                                        typed ShmError), and a truncated/
//                                        forged-header segment-attach sweep
//                                        (every attach must fail typed,
//                                        before a slab is touched)
//   acexfuzz --replay FILE               run one corpus entry through the
//                                        oracle battery (bit-exact output)
//   acexfuzz --emit FILE                 write the deterministic mutated
//                                        input for -s SEED to FILE
//   acexfuzz --minimize FILE             shrink FILE while it keeps
//                                        triggering a finding; writes
//                                        FILE.min
//   acexfuzz --corpus DIR                replay every entry in DIR
//
// Common flags: -s SEED, --iters N (or ACEX_FUZZ_ITERS), --seeds ROUNDS,
// --size BYTES, -b BLOCK_BYTES, --out DIR (crash corpus, default
// qa/corpus).
//
// Every run is a pure function of the seed: the same invocation finds the
// same findings forever, and every finding is persisted to the crash
// corpus so `acexfuzz --replay` reproduces it from the file alone.
// Exit codes: 0 clean, 1 findings/violations, 2 usage or config error.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "colpipe/columnar_codec.hpp"
#include "compress/frame.hpp"
#include "compress/registry.hpp"
#include "compress/zlib_codec.hpp"
#include "net/handshake.hpp"
#include "net/protocol.hpp"
#include "qa/chaos.hpp"
#include "qa/corpus.hpp"
#include "qa/generators.hpp"
#include "qa/mutate.hpp"
#include "qa/oracles.hpp"
#include "qa/soak.hpp"
#include "shm/bus.hpp"
#include "util/crc32.hpp"
#include "workloads/molecular.hpp"
#include "workloads/transactions.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace acex;

enum class Mode { kNone, kSmoke, kDiff, kColpipe, kSoak, kChaos, kHandshake,
                  kShm, kReplay, kEmit, kMinimize, kCorpus };

struct Options {
  Mode mode = Mode::kNone;
  std::uint64_t seed = 1;
  int iters = 0;               // 0 = ACEX_FUZZ_ITERS or the built-in 60
  std::size_t seed_rounds = 3; // independent seed rounds per smoke run
  std::size_t size = 4096;     // seed payload size
  std::size_t block_size = 2048;
  std::size_t diff_blocks = 64;  // fuzzed blocks per codec in --diff
  std::size_t workers = 4;
  double soak_seconds = 0;
  std::size_t soak_rounds = 20;
  double chaos_seconds = 0;
  std::size_t chaos_sessions = 16;
  std::size_t broker_subscribers = 0;  // 0 = broker half off
  std::size_t broker_churn = 3;
  std::string out_dir = "qa/corpus";
  std::string path;            // FILE or DIR operand of the mode
};

int usage() {
  std::fprintf(stderr,
               "usage: acexfuzz (--smoke | --diff | --colpipe |"
               " --soak SECONDS | --chaos SECONDS |\n"
               "                 --handshake | --shm | --replay FILE |"
               " --emit FILE | --minimize FILE | --corpus DIR)\n"
               "                [-s SEED] [--iters N] [--seeds ROUNDS]"
               " [--size BYTES]\n"
               "                [-b BLOCK_BYTES] [-n DIFF_BLOCKS]"
               " [-w WORKERS]\n"
               "                [--rounds N] [--broker K] [--churn M]"
               " [--sessions K]\n"
               "                [--out DIR]\n");
  return 2;
}

/// A named oracle outcome plus the findings ledger shared by every mode.
struct Findings {
  std::size_t inputs = 0;
  std::size_t findings = 0;
  qa::Corpus corpus;

  explicit Findings(std::string dir) : corpus(std::move(dir)) {}

  /// Account one oracle run; persists the input on failure.
  void check(const char* tag, const qa::Verdict& verdict, ByteView input) {
    ++inputs;
    if (verdict.ok) return;
    ++findings;
    std::string saved = "(unsaved)";
    try {
      saved = corpus.save(tag, input);
    } catch (const Error& e) {
      std::fprintf(stderr, "acexfuzz: cannot persist finding: %s\n", e.what());
    }
    std::fprintf(stderr, "acexfuzz: FINDING [%s] %s\n  input: %s\n", tag,
                 verdict.detail.c_str(), saved.c_str());
  }
};

std::vector<MethodId> smoke_methods() {
  std::vector<MethodId> methods = paper_methods();
  if (zlib_available()) methods.push_back(MethodId::kZlib);
  return methods;
}

/// The arbitrary-bytes oracle battery --replay/--corpus/--minimize use:
/// which decoders reject or bound this input, and does the frame path
/// survive it. Returns (name, verdict) pairs in a fixed order.
std::vector<std::pair<std::string, qa::Verdict>> battery(const Bytes& input) {
  std::vector<std::pair<std::string, qa::Verdict>> results;
  const CodecRegistry registry = CodecRegistry::with_builtins();
  for (const MethodId id : smoke_methods()) {
    results.emplace_back(
        std::string("decode.") + std::string(method_name(id)),
        qa::decoder_bounds(id, input, input.size()));
  }
  results.emplace_back("frame", qa::frame_survives(input, registry));
  results.emplace_back("pbio", qa::pbio_survives(input));
  results.emplace_back("event", qa::event_survives(input));
  return results;
}

// ------------------------------------------------------------------ smoke
int run_smoke(const Options& opt) {
  const int iters = opt.iters > 0 ? opt.iters : qa::fuzz_iterations(60);
  Findings ledger(opt.out_dir);
  const CodecRegistry registry = CodecRegistry::with_builtins();
  const std::vector<MethodId> methods = smoke_methods();

  for (std::size_t round = 0; round < opt.seed_rounds; ++round) {
    const std::uint64_t seed = opt.seed + round;
    const auto payloads = qa::seed_payloads(opt.size, seed);

    for (const auto& [tag, data] : payloads) {
      for (const MethodId id : methods) {
        // Clean-input invariants first: round-trip and determinism.
        ledger.check("roundtrip", qa::codec_roundtrip(id, data), data);
        ledger.check("cross_version",
                     qa::frame_cross_version(id, data, seed * 977 + 11,
                                             registry),
                     data);

        // Mutated codec containers through the bounded-decode oracle.
        const CodecPtr codec = make_codec(id);
        const Bytes packed = codec->compress(data);
        Rng rng(seed ^ (static_cast<std::uint64_t>(id) << 32) ^
                crc32(ByteView(reinterpret_cast<const std::uint8_t*>(tag),
                               std::strlen(tag))));
        for (int i = 0; i < iters; ++i) {
          const Bytes mutated = qa::mutate_container(packed, rng);
          ledger.check("container", qa::decoder_bounds(id, mutated, data.size()),
                       mutated);
        }

        // Mutated frame envelopes through the frame survival oracle.
        const CodecPtr framing = make_codec(id);
        const Bytes framed =
            frame_compress_seq(*framing, data, seed * 131 + ledger.inputs % 7);
        for (int i = 0; i < iters; ++i) {
          const Bytes mutated = qa::mutate_frame(framed, rng);
          ledger.check("frame", qa::frame_survives(mutated, registry), mutated);
        }
      }
      ledger.check("zlib", qa::zlib_agreement(data), data);
    }

    // Structured streams: PBIO records and event wire images.
    Rng srng(seed * 0x9E3779B97F4A7C15ull + 3);
    const Bytes pbio_stream = qa::seed_pbio_stream(seed);
    const Bytes event_wire = qa::seed_event_wire(seed);
    for (int i = 0; i < iters; ++i) {
      const Bytes mutated = qa::mutate_pbio(pbio_stream, srng);
      ledger.check("pbio", qa::pbio_survives(mutated), mutated);
    }
    for (int i = 0; i < iters; ++i) {
      const Bytes mutated = qa::mutate(event_wire, srng);
      ledger.check("event", qa::event_survives(mutated), mutated);
    }
    std::fprintf(stderr, "acexfuzz: smoke round %zu/%zu: %zu inputs so far\n",
                 round + 1, opt.seed_rounds, ledger.inputs);
  }

  std::printf("smoke: %zu inputs, %zu findings, seed %llu, %d iters/target\n",
              ledger.inputs, ledger.findings,
              static_cast<unsigned long long>(opt.seed), iters);
  return ledger.findings == 0 ? 0 : 1;
}

// ------------------------------------------------------------------- diff
int run_diff(const Options& opt) {
  Findings ledger(opt.out_dir);
  // Enough regimes x seeds to pass `diff_blocks` blocks through every
  // paper codec; each payload is sized for several blocks.
  const std::size_t payload_size = opt.block_size * 8;

  // Paper codecs plus the columnar pipeline codec: the identity must hold
  // for application-registered methods too (the oracle registers colpipe on
  // both ends itself).
  std::vector<MethodId> diff_methods = paper_methods();
  diff_methods.push_back(MethodId::kColumnar);
  for (const MethodId id : diff_methods) {
    std::size_t blocks_done = 0;
    std::uint64_t seed = opt.seed;
    while (blocks_done < opt.diff_blocks) {
      const auto payloads = qa::seed_payloads(payload_size, seed++);
      for (const auto& [tag, data] : payloads) {
        if (blocks_done >= opt.diff_blocks || data.empty()) continue;
        std::size_t blocks = 0;
        ledger.check("diff",
                     qa::serial_parallel_identity(data, id, opt.workers,
                                                  opt.block_size, &blocks),
                     data);
        blocks_done += blocks;
      }
    }
    std::printf("diff: %s: %zu blocks byte-identical at %zu workers\n",
                std::string(method_name(id)).c_str(), blocks_done,
                opt.workers);
  }

  // The adaptive path only promises delivered-payload identity.
  const auto payloads = qa::seed_payloads(payload_size, opt.seed + 1031);
  for (const auto& [tag, data] : payloads) {
    ledger.check("diff_adaptive",
                 qa::serial_parallel_adaptive(data, opt.workers,
                                              opt.block_size),
                 data);
  }

  std::printf("diff: %zu oracle runs, %zu findings\n", ledger.inputs,
              ledger.findings);
  return ledger.findings == 0 ? 0 : 1;
}

// ---------------------------------------------------------------- colpipe
int run_colpipe(const Options& opt) {
  const int iters = opt.iters > 0 ? opt.iters : qa::fuzz_iterations(80);
  Findings ledger(opt.out_dir);

  for (std::size_t round = 0; round < opt.seed_rounds; ++round) {
    const std::uint64_t seed = opt.seed + round;
    Rng rng(seed ^ 0xC01b17e5ull);

    // Targets spanning the codec's regimes: schema-bearing PBIO blocks
    // (columnar path), text (opaque fallback), incompressible noise, and
    // the empty payload.
    std::vector<std::pair<const char*, Bytes>> targets;
    workloads::TransactionGenerator txn(seed);
    targets.emplace_back("txn_pbio", txn.pbio_block(256));
    workloads::MolecularConfig mdc;
    mdc.atom_count = 512;
    mdc.seed = seed;
    workloads::MolecularGenerator md(mdc);
    targets.emplace_back("md_pbio", md.pbio_snapshot());
    workloads::TransactionGenerator text(seed + 1);
    targets.emplace_back("text", text.text_block(opt.size));
    targets.emplace_back("random", rng.bytes(opt.size));
    targets.emplace_back("empty", Bytes{});

    colpipe::ColumnarCodec codec;
    for (const auto& [tag, data] : targets) {
      (void)tag;
      // Clean-input invariants: round-trip identity and determinism.
      ledger.check("colpipe.roundtrip", qa::colpipe_roundtrip(data), data);

      const Bytes packed = codec.compress(data);

      // Every truncation of the container must be rejected cleanly or
      // decode within bounds — never crash.
      const std::size_t cuts = std::min<std::size_t>(packed.size(), 48);
      for (std::size_t len = 0; len < cuts; ++len) {
        const Bytes prefix(packed.begin(),
                           packed.begin() + static_cast<std::ptrdiff_t>(len));
        ledger.check("colpipe.truncate",
                     qa::colpipe_survives(prefix, data.size()), prefix);
      }

      // Structure-aware mutation storm: forged stage ids, varint damage,
      // and CRC-resealed pipeline headers so corruption penetrates past
      // the header check.
      for (int i = 0; i < iters; ++i) {
        const Bytes mutated = qa::mutate_colpipe(packed, rng);
        ledger.check("colpipe.survives",
                     qa::colpipe_survives(mutated, data.size()), mutated);
      }
    }
    std::fprintf(stderr, "acexfuzz: colpipe round %zu/%zu: %zu inputs so far\n",
                 round + 1, opt.seed_rounds, ledger.inputs);
  }

  std::printf("colpipe: %zu inputs, %zu findings, seed %llu, %d iters/target\n",
              ledger.inputs, ledger.findings,
              static_cast<unsigned long long>(opt.seed), iters);
  return ledger.findings == 0 ? 0 : 1;
}

// ------------------------------------------------------------------- soak
int run_soak_mode(const Options& opt) {
  qa::SoakConfig config;
  config.seconds = opt.soak_seconds;
  config.rounds = opt.soak_rounds;
  config.seed = opt.seed;
  config.workers = opt.workers;
  config.block_size = opt.block_size;
  config.broker_subscribers = opt.broker_subscribers;
  config.broker_churn_every = opt.broker_churn;
  const qa::SoakReport report = qa::run_soak(config);

  std::printf(
      "soak: %zu rounds, seed %llu\n"
      "  events: %llu published, %llu delivered, %llu abandoned, "
      "%llu retransmits\n"
      "  blocks: %llu sent, %llu recovered, %llu abandoned, "
      "%llu retransmits\n"
      "  faults injected: %llu\n",
      report.rounds, static_cast<unsigned long long>(config.seed),
      static_cast<unsigned long long>(report.events_published),
      static_cast<unsigned long long>(report.events_delivered),
      static_cast<unsigned long long>(report.events_unrecovered),
      static_cast<unsigned long long>(report.event_retransmits),
      static_cast<unsigned long long>(report.blocks_sent),
      static_cast<unsigned long long>(report.blocks_recovered),
      static_cast<unsigned long long>(report.blocks_abandoned),
      static_cast<unsigned long long>(report.block_retransmits),
      static_cast<unsigned long long>(report.faults_injected));
  if (config.broker_subscribers > 0) {
    std::printf(
        "  broker: %llu blocks x %zu subs, %llu recovered, %llu abandoned, "
        "%llu retransmits\n"
        "  broker encode cache: %llu encodes, %llu hits\n",
        static_cast<unsigned long long>(report.broker_blocks),
        config.broker_subscribers,
        static_cast<unsigned long long>(report.broker_recovered),
        static_cast<unsigned long long>(report.broker_abandoned),
        static_cast<unsigned long long>(report.broker_retransmits),
        static_cast<unsigned long long>(report.broker_encodes),
        static_cast<unsigned long long>(report.broker_cache_hits));
  }
  for (const std::string& violation : report.violations) {
    std::fprintf(stderr, "acexfuzz: VIOLATION %s\n", violation.c_str());
  }
  std::printf("soak: %zu violations\n", report.violations.size());
  return report.ok() ? 0 : 1;
}

// ------------------------------------------------------------------ chaos
int run_chaos_once(const qa::ChaosConfig& config, qa::Corpus& corpus) {
  const qa::ChaosReport report = qa::run_chaos(config);
  std::printf(
      "chaos: seed %llu: %zu rounds, %zu sessions, %llu blocks\n"
      "  kills %llu, resumes %llu, restarts %llu, expired %llu, "
      "delivered %llu, heartbeats %llu\n",
      static_cast<unsigned long long>(config.seed), report.rounds,
      config.sessions, static_cast<unsigned long long>(report.published),
      static_cast<unsigned long long>(report.kills),
      static_cast<unsigned long long>(report.resumes),
      static_cast<unsigned long long>(report.restarts),
      static_cast<unsigned long long>(report.expired),
      static_cast<unsigned long long>(report.delivered),
      static_cast<unsigned long long>(report.heartbeats));
  for (const std::string& violation : report.violations) {
    std::fprintf(stderr, "acexfuzz: VIOLATION %s\n", violation.c_str());
  }
  if (!report.ok()) {
    // The whole run is a pure function of its config, so the repro is the
    // config itself; persist it as a corpus note for the nightly artifact.
    const std::string repro =
        "acexfuzz --chaos 0 -s " + std::to_string(config.seed) +
        " --rounds " + std::to_string(config.rounds) + " --sessions " +
        std::to_string(config.sessions) + " -b " +
        std::to_string(config.block_size) + "\n";
    try {
      const std::string saved = corpus.save(
          "chaos", ByteView(reinterpret_cast<const std::uint8_t*>(
                                repro.data()),
                            repro.size()));
      std::fprintf(stderr, "acexfuzz: chaos repro saved to %s\n",
                   saved.c_str());
    } catch (const Error& e) {
      std::fprintf(stderr, "acexfuzz: cannot persist chaos repro: %s\n",
                   e.what());
    }
  }
  std::printf("chaos: %zu violations\n", report.violations.size());
  return report.ok() ? 0 : 1;
}

int run_chaos_mode(const Options& opt) {
  qa::ChaosConfig config;
  config.rounds = opt.soak_rounds > 0 ? opt.soak_rounds : config.rounds;
  config.sessions = opt.chaos_sessions;
  config.block_size = opt.block_size;
  config.seed = opt.seed;
  qa::Corpus corpus(opt.out_dir);

  if (opt.chaos_seconds <= 0) return run_chaos_once(config, corpus);

  // Wall-clock budget: sweep seeds until time is up; any violating seed
  // fails the whole sweep (its repro line is already in the corpus).
  const auto start = std::chrono::steady_clock::now();
  const auto budget = std::chrono::duration<double>(opt.chaos_seconds);
  int worst = 0;
  std::size_t runs = 0;
  while (std::chrono::steady_clock::now() - start < budget) {
    worst = std::max(worst, run_chaos_once(config, corpus));
    ++config.seed;
    ++runs;
  }
  std::printf("chaos: swept %zu seeds in %.1fs budget\n", runs,
              opt.chaos_seconds);
  return worst;
}

// -------------------------------------------------------------- handshake
/// One fuzz target: a canonical wire image plus a decode->re-encode->
/// re-decode fixpoint check. `decode_fixpoint` must throw HandshakeError
/// (and nothing else) on inputs it cannot accept; when it accepts, the
/// re-encoded form must decode back to the same value (canonicalization
/// is a fixpoint, so a forged-but-parseable image cannot smuggle state
/// that survives one hop but not two).
struct HandshakeTarget {
  const char* tag;
  Bytes wire;
  void (*decode_fixpoint)(ByteView);
};

void offer_fixpoint(ByteView wire) {
  const net::CompressionOffer a = net::offer_decode(wire);
  const net::CompressionOffer b = net::offer_decode(net::offer_encode(a));
  if (!(a == b)) throw std::logic_error("offer fixpoint violated");
}

void params_fixpoint(ByteView wire) {
  const net::NegotiatedParams a = net::params_decode(wire);
  const net::NegotiatedParams b = net::params_decode(net::params_encode(a));
  if (!(a == b)) throw std::logic_error("params fixpoint violated");
}

void welcome_fixpoint(ByteView wire) {
  const net::Welcome a = net::welcome_decode(wire);
  const net::Welcome b = net::welcome_decode(net::welcome_encode(a));
  if (!(a == b)) throw std::logic_error("welcome fixpoint violated");
}

void reject_fixpoint(ByteView wire) {
  const net::Reject a = net::reject_decode(wire);
  const net::Reject b = net::reject_decode(net::reject_encode(a));
  if (!(a == b)) throw std::logic_error("reject fixpoint violated");
}

void nack_fixpoint(ByteView wire) {
  const auto a = net::nack_decode(wire);
  const auto b = net::nack_decode(net::nack_encode(a));
  if (a != b) throw std::logic_error("nack fixpoint violated");
}

void stats_fixpoint(ByteView wire) {
  const net::DaemonStats a = net::stats_decode(wire);
  const net::DaemonStats b = net::stats_decode(net::stats_encode(a));
  if (!(a == b)) throw std::logic_error("stats fixpoint violated");
}

void msg_fixpoint(ByteView wire) {
  const net::Msg a = net::unwrap(wire);
  const net::Msg b = net::unwrap(net::wrap(a.kind, a.payload));
  if (a.kind != b.kind || a.payload != b.payload) {
    throw std::logic_error("msg fixpoint violated");
  }
}

/// Deterministic canonical wire images for one seed round.
std::vector<HandshakeTarget> handshake_targets(std::uint64_t seed) {
  Rng rng(seed * 0xD1B54A32D192ED03ull + 5);
  std::vector<HandshakeTarget> targets;

  net::CompressionOffer fresh;
  fresh.name = "fuzz-" + std::to_string(rng.below(1000));
  fresh.block_size = static_cast<std::uint32_t>(1 + rng.below(1 << 22));
  fresh.target_rate_Bps = rng.below(1ull << 44);
  targets.push_back({"offer", net::offer_encode(fresh), &offer_fixpoint});

  // Non-default policy id: the extension TLV is on the wire, so the
  // mutation battery storms the policy field bytes too. Unknown ids are
  // legal at the CODEC layer (decode keeps them raw for negotiate() to
  // reject), so the fixpoint must hold for them as well.
  net::CompressionOffer policy_offer = fresh;
  policy_offer.policy_id = rng.chance(0.5) ? 1 + rng.below(3) : rng();
  targets.push_back(
      {"offer_policy", net::offer_encode(policy_offer), &offer_fixpoint});

  net::CompressionOffer resume;
  resume.methods = {MethodId::kLempelZiv, MethodId::kNone};
  resume.context_takeover = false;
  resume.resume_session = 1 + rng.below(1 << 16);
  resume.resume_token = rng();
  resume.resume_from = rng.below(1 << 20);
  targets.push_back(
      {"offer_resume", net::offer_encode(resume), &offer_fixpoint});

  net::NegotiatedParams params;
  params.methods = {MethodId::kBurrowsWheeler, MethodId::kHuffman,
                    MethodId::kNone};
  params.block_size = static_cast<std::uint32_t>(4096 + rng.below(1 << 20));
  params.expansion_slack = static_cast<std::uint32_t>(rng.below(4096));
  const auto& policies = adaptive::all_policies();
  params.policy = policies[rng.below(policies.size())];
  targets.push_back({"params", net::params_encode(params), &params_fixpoint});

  net::Welcome welcome;
  welcome.session_id = 1 + rng.below(1 << 20);
  welcome.token = rng();
  welcome.resumed = rng.chance(0.5);
  welcome.replayed = rng.below(1 << 12);
  welcome.params = params;
  targets.push_back(
      {"welcome", net::welcome_encode(welcome), &welcome_fixpoint});

  net::Reject reject;
  reject.status = net::HandshakeStatus::kNoCommonMethod;
  reject.reason = "offer and policy share no codec";
  targets.push_back({"reject", net::reject_encode(reject), &reject_fixpoint});

  std::vector<std::uint64_t> sequences;
  for (std::size_t i = 0; i < 1 + rng.below(32); ++i) {
    sequences.push_back(rng.below(1ull << 32));
  }
  targets.push_back({"nack", net::nack_encode(sequences), &nack_fixpoint});

  net::DaemonStats stats;
  stats.connections_total = rng.below(1 << 16);
  stats.bytes_out = rng.below(1ull << 40);
  targets.push_back({"stats", net::stats_encode(stats), &stats_fixpoint});

  targets.push_back(
      {"msg", net::wrap(net::MsgKind::kControl, net::offer_encode(fresh)),
       &msg_fixpoint});
  return targets;
}

int run_handshake(const Options& opt) {
  const int iters = opt.iters > 0 ? opt.iters : qa::fuzz_iterations(120);
  std::size_t inputs = 0;
  std::size_t findings = 0;
  const auto finding = [&](const char* tag, const std::string& detail) {
    ++findings;
    std::fprintf(stderr, "acexfuzz: FINDING [handshake.%s] %s\n", tag,
                 detail.c_str());
  };

  for (std::size_t round = 0; round < opt.seed_rounds; ++round) {
    const std::uint64_t seed = opt.seed + round;
    Rng rng(seed ^ 0xACE1ACE1ACE1ACE1ull);

    for (const HandshakeTarget& target : handshake_targets(seed)) {
      // The canonical image itself must pass its fixpoint.
      ++inputs;
      try {
        target.decode_fixpoint(target.wire);
      } catch (const std::exception& e) {
        finding(target.tag, std::string("clean input rejected: ") + e.what());
      }

      // Mutation battery: generic bit flips/splices, hard truncation, and
      // adversarial varint overwrites. Only HandshakeError may escape.
      for (int i = 0; i < iters; ++i) {
        Bytes evil;
        switch (rng.below(4)) {
          case 0:
            evil = qa::mutate(target.wire, rng);
            break;
          case 1:
            evil = target.wire;
            if (!evil.empty()) evil.resize(rng.below(evil.size()));
            break;
          case 2:
            evil = qa::mutate_varint_at(
                target.wire, rng.below(target.wire.size() + 1), rng);
            break;
          default:
            evil = qa::mutate(qa::mutate(target.wire, rng), rng);
            break;
        }
        ++inputs;
        try {
          target.decode_fixpoint(evil);
        } catch (const net::HandshakeError&) {
          // The one sanctioned outcome for garbage.
        } catch (const std::exception& e) {
          finding(target.tag, std::string("non-handshake escape: ") +
                                  e.what());
        }
      }
    }

    // negotiate() under random structurally-valid offer x policy pairs:
    // either a typed reject, or a result inside every negotiated bound.
    const std::vector<MethodId> pool = {
        MethodId::kNone,      MethodId::kHuffman,
        MethodId::kArithmetic, MethodId::kLempelZiv,
        MethodId::kBurrowsWheeler, MethodId::kLzw};
    for (int i = 0; i < iters; ++i) {
      net::CompressionOffer offer;
      offer.methods.clear();
      const std::size_t n = rng.below(pool.size() + 1);
      for (std::size_t k = 0; k < n; ++k) {
        offer.methods.push_back(pool[rng.below(pool.size())]);
      }
      offer.block_size = static_cast<std::uint32_t>(rng.below(1ull << 33));
      offer.expansion_slack =
          static_cast<std::uint32_t>(rng.below(1ull << 22));
      offer.context_takeover = rng.chance(0.5);
      offer.target_rate_Bps = rng.below(1ull << 50);
      // Known ids, unknown small ids, and full-garbage u64s in one storm.
      offer.policy_id = rng.chance(0.6) ? rng.below(8) : rng();

      net::ServerPolicy policy;
      policy.methods.clear();
      const std::size_t m = rng.below(pool.size() + 1);
      for (std::size_t k = 0; k < m; ++k) {
        policy.methods.push_back(pool[rng.below(pool.size())]);
      }
      policy.min_block_size =
          static_cast<std::uint32_t>(rng.below(1 << 20));
      policy.max_block_size =
          policy.min_block_size +
          static_cast<std::uint32_t>(rng.below(1 << 22));
      policy.max_expansion_slack =
          static_cast<std::uint32_t>(rng.below(1 << 16));
      policy.allow_context_takeover = rng.chance(0.5);
      policy.max_target_rate_Bps = rng.below(1ull << 50);
      if (rng.chance(0.3)) {
        // Server allows only a random subset of policies.
        policy.policies.clear();
        for (const adaptive::DecisionPolicy p : adaptive::all_policies()) {
          if (rng.chance(0.5)) policy.policies.push_back(p);
        }
      }

      ++inputs;
      try {
        const net::NegotiatedParams result = net::negotiate(offer, policy);
        if (result.methods.empty()) {
          finding("negotiate", "empty negotiated method list");
        }
        if (!adaptive::known_policy(offer.policy_id)) {
          finding("negotiate", "unknown policy id accepted");
        } else if (static_cast<std::uint64_t>(result.policy) !=
                   offer.policy_id) {
          finding("negotiate", "negotiated policy differs from the offer");
        }
        if (result.block_size < policy.min_block_size ||
            result.block_size > policy.max_block_size) {
          finding("negotiate", "block size escaped the policy window");
        }
        if (result.expansion_slack > policy.max_expansion_slack) {
          finding("negotiate", "slack above the policy cap");
        }
        if (result.context_takeover &&
            !(offer.context_takeover && policy.allow_context_takeover)) {
          finding("negotiate", "context takeover granted unilaterally");
        }
        for (const MethodId method : result.methods) {
          const bool offered =
              std::find(offer.methods.begin(), offer.methods.end(),
                        method) != offer.methods.end();
          if (method != MethodId::kNone && !offered) {
            finding("negotiate", "negotiated a method the client never "
                                 "offered");
          }
        }
      } catch (const net::HandshakeError&) {
        // Typed rejects are legal outcomes of adversarial pairs.
      } catch (const std::exception& e) {
        finding("negotiate", std::string("non-handshake escape: ") +
                                 e.what());
      }
    }
    std::fprintf(stderr,
                 "acexfuzz: handshake round %zu/%zu: %zu inputs so far\n",
                 round + 1, opt.seed_rounds, inputs);
  }

  std::printf(
      "handshake: %zu inputs, %zu findings, seed %llu, %d iters/target\n",
      inputs, findings, static_cast<unsigned long long>(opt.seed), iters);
  return findings == 0 ? 0 : 1;
}

// -------------------------------------------------- shm descriptor battery
/// Shared-memory hardening oracle (DESIGN.md §16): a slab descriptor is
/// the only thing that crosses the wire on the shm path, so a flipped bit
/// in one must never be dereferenced into the arena — and a segment whose
/// header lies about its geometry must be rejected before a slab is
/// touched. Three storms, one seed, zero tolerated escapes.
int run_shm(const Options& opt) {
  const int iters = opt.iters > 0 ? opt.iters : qa::fuzz_iterations(120);
  std::size_t inputs = 0;
  std::size_t findings = 0;
  const auto finding = [&](const char* tag, const std::string& detail) {
    ++findings;
    std::fprintf(stderr, "acexfuzz: FINDING [shm.%s] %s\n", tag,
                 detail.c_str());
  };

  for (std::size_t round = 0; round < opt.seed_rounds; ++round) {
    const std::uint64_t seed = opt.seed + round;
    Rng rng(seed ^ 0x51AB51AB51AB51ABull);

    // --- storm 1: descriptor wire mutation through a live endpoint ---
    shm::ShmBusConfig cfg;
    cfg.ring.slab_count = 8;
    cfg.ring.slab_size = 4096;
    cfg.ring.reclaim_wait = 0;
    cfg.queue_capacity = 64;
    shm::ShmBus bus(cfg);
    const auto ep = bus.endpoint();

    for (int i = 0; i < iters; ++i) {
      Bytes payload(1 + rng.below(512));
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.below(256));

      // The clean path first: a staged payload's descriptor must decode
      // to a fixpoint and round-trip the payload byte-exact.
      const BufferView staged = bus.stage(payload);
      const auto desc = bus.ring().descriptor_of(staged);
      if (!desc) {
        finding("descriptor", "staged view has no descriptor");
        continue;
      }
      const Bytes wire = shm::encode_descriptor(*desc);
      ++inputs;
      try {
        const shm::SlabDescriptor back = shm::decode_descriptor(wire);
        if (back.offset != desc->offset || back.length != desc->length ||
            back.generation != desc->generation) {
          finding("fixpoint", "descriptor decode is not a fixpoint");
        }
      } catch (const std::exception& e) {
        finding("fixpoint", std::string("clean descriptor rejected: ") +
                                e.what());
      }

      // Mutation battery: bit flips, truncation, varint mangling. A raw
      // decode may fail ONLY with DecodeError; an injected wire may only
      // be counted and skipped by the endpoint, never thrown.
      Bytes evil;
      switch (rng.below(3)) {
        case 0:
          evil = qa::mutate(wire, rng);
          break;
        case 1:
          evil = wire;
          evil.resize(rng.below(evil.size() + 1));
          break;
        default:
          evil = qa::mutate_varint_at(wire, rng.below(wire.size() + 1), rng);
          break;
      }
      if (evil == wire) evil.push_back(0x00);  // force a real mutation
      ++inputs;
      try {
        (void)shm::decode_descriptor(evil);
      } catch (const DecodeError&) {
        // the one sanctioned outcome for garbage
      } catch (const std::exception& e) {
        finding("decode", std::string("non-typed escape: ") + e.what());
      }

      const shm::ShmEndpointStats before = ep->stats();
      ep->inject_raw(evil);
      try {
        while (ep->receive_buffer()) {
        }
      } catch (const std::exception& e) {
        finding("receive", std::string("receive threw on injected wire: ") +
                               e.what());
      }
      const shm::ShmEndpointStats after = ep->stats();
      if (after.corrupt_descriptors + after.stale_descriptors +
              after.received ==
          before.corrupt_descriptors + before.stale_descriptors +
              before.received) {
        finding("accounting", "injected wire vanished without being counted");
      }
    }

    // --- storm 2: forged SlabDescriptor structs against the ring ---
    for (int i = 0; i < iters; ++i) {
      shm::SlabDescriptor forged;
      forged.offset = rng.chance(0.5) ? rng.below(1ull << 40)
                                      : rng.below(16) * cfg.ring.slab_size;
      forged.length = static_cast<std::uint32_t>(rng.below(1ull << 20));
      forged.generation = static_cast<std::uint32_t>(rng.below(8));
      ++inputs;
      try {
        const BufferView view = bus.ring().resolve(forged);
        // A lucky forgery that resolves must still stay inside the arena.
        const auto* base = static_cast<const std::uint8_t*>(
            bus.segment().data());
        if (view.data() < base || view.data() + view.size() >
                                      base + bus.segment().size()) {
          finding("resolve", "resolved view escapes the segment");
        }
      } catch (const shm::ShmError&) {
        // typed rejection (including ShmStaleError) is the contract
      } catch (const std::exception& e) {
        finding("resolve", std::string("non-typed escape: ") + e.what());
      }
      (void)bus.ring().add_ref(forged);   // must never crash or throw
      bus.ring().drop_ref(forged);        // noexcept no-op on garbage
    }

    // --- storm 3: truncated / forged-header segment attach sweep ---
    for (int i = 0; i < iters; ++i) {
      ++inputs;
      try {
        switch (rng.below(3)) {
          case 0: {  // random garbage pretending to be a ring
            shm::ShmSegment junk =
                shm::ShmSegment::anonymous(1 + rng.below(8192));
            auto* bytes = static_cast<std::uint8_t*>(junk.data());
            for (std::size_t k = 0; k < junk.size(); ++k) {
              bytes[k] = static_cast<std::uint8_t>(rng.below(256));
            }
            shm::SlabRing attached(junk, cfg.ring, /*attach=*/true);
            finding("attach", "garbage segment attached as a ring");
            break;
          }
          case 1: {  // valid ring, then a header field forged
            shm::RingConfig small;
            small.slab_count = 2;
            small.slab_size = 256;
            shm::ShmSegment seg = shm::ShmSegment::anonymous(
                shm::SlabRing::segment_size(small));
            shm::SlabRing ring(seg, small);
            auto* header = static_cast<std::uint32_t*>(seg.data());
            // magic, version, slab_count, or slab_size — all must be
            // caught by validation, not by a wild slab dereference.
            header[rng.below(4)] ^= static_cast<std::uint32_t>(
                1u + rng.below(0xFFFFFFFFull));
            shm::SlabRing attached(seg, small, /*attach=*/true);
            // Survivable only if the forgery kept the geometry inside
            // the mapping (e.g. slab_count shrank): that is legal.
            if (shm::SlabRing::segment_size(
                    {attached.slab_count(), attached.slab_size()}) >
                seg.size()) {
              finding("attach", "forged header over-claims the mapping");
            }
            break;
          }
          default: {  // segment physically shorter than the ring header
            shm::ShmSegment stub =
                shm::ShmSegment::anonymous(1 + rng.below(63));
            shm::SlabRing attached(stub, cfg.ring, /*attach=*/true);
            finding("attach", "sub-header segment attached as a ring");
            break;
          }
        }
      } catch (const shm::ShmError&) {
        // typed rejection is the expected outcome for every branch
      } catch (const std::exception& e) {
        finding("attach", std::string("non-typed escape: ") + e.what());
      }
    }
  }

  std::printf("shm: %zu inputs, %zu findings (seeds %zu, %d iters)\n",
              inputs, findings, opt.seed_rounds, iters);
  return findings == 0 ? 0 : 1;
}

// ------------------------------------------- replay / emit / minimize / corpus
/// Deterministic single input for -s SEED: pick an artifact class and
/// apply one structure-aware mutation. Pure function of the seed.
Bytes emit_input(const Options& opt) {
  Rng rng(opt.seed);
  const auto payloads = qa::seed_payloads(opt.size, opt.seed);
  const auto& chosen = payloads[rng.below(payloads.size())];
  switch (rng.below(4)) {
    case 0: {  // mutated codec container
      const auto& methods = paper_methods();
      const CodecPtr codec = make_codec(methods[rng.below(methods.size())]);
      return qa::mutate_container(codec->compress(chosen.data), rng);
    }
    case 1: {  // mutated v2 frame
      const auto& methods = paper_methods();
      const CodecPtr codec = make_codec(methods[rng.below(methods.size())]);
      return qa::mutate_frame(
          frame_compress_seq(*codec, chosen.data, rng.below(1 << 20)), rng);
    }
    case 2:  // mutated PBIO stream
      return qa::mutate_pbio(qa::seed_pbio_stream(opt.seed), rng);
    default:  // mutated event wire image
      return qa::mutate(qa::seed_event_wire(opt.seed), rng);
  }
}

int run_replay_one(const Bytes& input, const std::string& label) {
  int failures = 0;
  std::printf("replay %s: %zu bytes, crc32 %08x\n", label.c_str(),
              input.size(), crc32(input));
  for (const auto& [name, verdict] : battery(input)) {
    std::printf("  %-22s %s%s%s\n", name.c_str(),
                verdict.ok ? "ok" : "FINDING", verdict.ok ? "" : ": ",
                verdict.detail.c_str());
    if (!verdict.ok) ++failures;
  }
  return failures;
}

int run_replay(const Options& opt) {
  const Bytes input = qa::Corpus::load(opt.path);
  return run_replay_one(input, opt.path) == 0 ? 0 : 1;
}

int run_emit(const Options& opt) {
  const Bytes input = emit_input(opt);
  std::ofstream out(opt.path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot create " + opt.path);
  out.write(reinterpret_cast<const char*>(input.data()),
            static_cast<std::streamsize>(input.size()));
  if (!out) throw IoError("failed writing " + opt.path);
  std::printf("emit %s: %zu bytes, crc32 %08x, seed %llu\n", opt.path.c_str(),
              input.size(), crc32(input),
              static_cast<unsigned long long>(opt.seed));
  return 0;
}

int run_minimize(const Options& opt) {
  const Bytes input = qa::Corpus::load(opt.path);
  const auto fails_somewhere = [](const Bytes& candidate) {
    for (const auto& [name, verdict] : battery(candidate)) {
      if (!verdict.ok) return true;
    }
    return false;
  };
  if (!fails_somewhere(input)) {
    std::fprintf(stderr,
                 "acexfuzz: %s triggers no finding; nothing to minimize\n",
                 opt.path.c_str());
    return 1;
  }
  const Bytes minimal = qa::minimize(input, fails_somewhere);
  const std::string out_path = opt.path + ".min";
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot create " + out_path);
  out.write(reinterpret_cast<const char*>(minimal.data()),
            static_cast<std::streamsize>(minimal.size()));
  if (!out) throw IoError("failed writing " + out_path);
  std::printf("minimize: %zu -> %zu bytes, wrote %s\n", input.size(),
              minimal.size(), out_path.c_str());
  return 0;
}

int run_corpus(const Options& opt) {
  const qa::Corpus corpus(opt.path);
  const std::vector<std::string> entries = corpus.files();
  int failures = 0;
  for (const std::string& path : entries) {
    failures += run_replay_one(qa::Corpus::load(path), path);
  }
  std::printf("corpus: %zu entries, %d findings\n", entries.size(), failures);
  return failures == 0 ? 0 : 1;
}

int run(const Options& opt) {
  switch (opt.mode) {
    case Mode::kSmoke:    return run_smoke(opt);
    case Mode::kDiff:     return run_diff(opt);
    case Mode::kColpipe:  return run_colpipe(opt);
    case Mode::kSoak:     return run_soak_mode(opt);
    case Mode::kChaos:    return run_chaos_mode(opt);
    case Mode::kHandshake: return run_handshake(opt);
    case Mode::kShm:      return run_shm(opt);
    case Mode::kReplay:   return run_replay(opt);
    case Mode::kEmit:     return run_emit(opt);
    case Mode::kMinimize: return run_minimize(opt);
    case Mode::kCorpus:   return run_corpus(opt);
    case Mode::kNone:     break;
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw ConfigError(arg + " needs a value");
        return argv[++i];
      };
      const auto set_mode = [&](Mode mode) {
        if (opt.mode != Mode::kNone) {
          throw ConfigError("exactly one mode flag is allowed");
        }
        opt.mode = mode;
      };
      if (arg == "--smoke") {
        set_mode(Mode::kSmoke);
      } else if (arg == "--diff") {
        set_mode(Mode::kDiff);
      } else if (arg == "--colpipe") {
        set_mode(Mode::kColpipe);
      } else if (arg == "--soak") {
        set_mode(Mode::kSoak);
        opt.soak_seconds = std::stod(next());
        if (opt.soak_seconds < 0) throw ConfigError("--soak must be >= 0");
      } else if (arg == "--chaos") {
        set_mode(Mode::kChaos);
        opt.chaos_seconds = std::stod(next());
        if (opt.chaos_seconds < 0) throw ConfigError("--chaos must be >= 0");
        opt.soak_rounds = 24;  // chaos default; --rounds overrides
      } else if (arg == "--handshake") {
        set_mode(Mode::kHandshake);
      } else if (arg == "--shm") {
        set_mode(Mode::kShm);
      } else if (arg == "--replay") {
        set_mode(Mode::kReplay);
        opt.path = next();
      } else if (arg == "--emit") {
        set_mode(Mode::kEmit);
        opt.path = next();
      } else if (arg == "--minimize") {
        set_mode(Mode::kMinimize);
        opt.path = next();
      } else if (arg == "--corpus") {
        set_mode(Mode::kCorpus);
        opt.path = next();
      } else if (arg == "-s") {
        opt.seed = std::stoull(next());
      } else if (arg == "--iters") {
        opt.iters = std::stoi(next());
        if (opt.iters <= 0) throw ConfigError("--iters must be > 0");
      } else if (arg == "--seeds") {
        opt.seed_rounds = std::stoul(next());
        if (opt.seed_rounds == 0) throw ConfigError("--seeds must be > 0");
      } else if (arg == "--size") {
        opt.size = std::stoul(next());
        if (opt.size == 0) throw ConfigError("--size must be > 0");
      } else if (arg == "-b") {
        opt.block_size = std::stoul(next());
        if (opt.block_size == 0) throw ConfigError("-b must be > 0");
      } else if (arg == "-n") {
        opt.diff_blocks = std::stoul(next());
        if (opt.diff_blocks == 0) throw ConfigError("-n must be > 0");
      } else if (arg == "-w") {
        opt.workers = std::stoul(next());
        if (opt.workers == 0) throw ConfigError("-w must be > 0");
      } else if (arg == "--rounds") {
        opt.soak_rounds = std::stoul(next());
      } else if (arg == "--broker") {
        opt.broker_subscribers = std::stoul(next());
        if (opt.broker_subscribers == 0) {
          throw ConfigError("--broker must be > 0");
        }
      } else if (arg == "--churn") {
        opt.broker_churn = std::stoul(next());
      } else if (arg == "--sessions") {
        opt.chaos_sessions = std::stoul(next());
        if (opt.chaos_sessions == 0) throw ConfigError("--sessions must be > 0");
      } else if (arg == "--out") {
        opt.out_dir = next();
      } else {
        return usage();
      }
    }
    if (opt.mode == Mode::kNone) return usage();
    return run(opt);
  } catch (const acex::Error& e) {
    std::fprintf(stderr, "acexfuzz: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "acexfuzz: internal error: %s\n", e.what());
    return 2;
  }
}
