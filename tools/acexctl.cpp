// acexctl — client CLI for acexd (DESIGN.md §13).
//
//   acexctl sub  --port N [--name LABEL] [--methods a,b,c]
//                [--block-size BYTES] [--slack BYTES]
//                [--no-context-takeover] [--target-rate BPS]
//                [--expect-blocks N] [--seed S] [--verify] [--verify-wire]
//                [--kill-after N --resume] [--timeout-ms MS]
//   acexctl stat --port N
//   acexctl tail --port N [--count N] [--seed S] [--timeout-ms MS]
//
// sub subscribes with a compression offer built from the flags, drains the
// stream until --expect-blocks demo blocks arrived, and verifies them:
// --verify regenerates every block from (seed, embedded index) and demands
// byte identity; --verify-wire additionally replays the same publishes
// through a private in-process broker configured with the NEGOTIATED
// parameters and demands that the daemon's wire frames were byte-identical
// (it forces a maximal target rate so method selection is deterministic).
// --kill-after N --resume drops the socket without a bye after N blocks and
// resumes the session on a fresh connection — the verified stream must
// show no gap and no duplicate across the cut.
//
// Exit codes: 0 ok, 1 verification/protocol failure, 2 timeout, 64 usage.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "broker/broker.hpp"
#include "net/client.hpp"
#include "net/demo_stream.hpp"
#include "util/crc32.hpp"

namespace {

using namespace acex;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: acexctl sub|stat|tail --port N [options]\n"
               "  sub:  --name S --methods a,b,c --block-size N --slack N\n"
               "        --no-context-takeover --target-rate N --policy P\n"
               "        (P: bandwidth|cpu-efficiency|energy-proxy|\n"
               "            target-rate, or a raw numeric id)\n"
               "        --expect-blocks N --seed S --verify --verify-wire\n"
               "        --kill-after N --resume --timeout-ms MS\n"
               "  tail: --count N --seed S --timeout-ms MS\n");
  std::exit(64);
}

void msleep(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::vector<MethodId> parse_methods(const std::string& csv) {
  std::vector<MethodId> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string name =
        csv.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!name.empty()) out.push_back(method_from_name(name));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Decision policy by name, or a raw numeric id so skew against a newer
/// server's policy table stays testable from the CLI.
std::uint64_t parse_policy(const std::string& text) {
  for (const adaptive::DecisionPolicy p : adaptive::all_policies()) {
    if (text == adaptive::policy_name(p)) {
      return static_cast<std::uint64_t>(p);
    }
  }
  char* end = nullptr;
  const std::uint64_t raw = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0') usage();
  return raw;
}

/// Sink for the private reproduction run: collects the wire frames the
/// broker pumps, in order.
class CaptureTransport final : public transport::Transport {
 public:
  void send(ByteView message) override {
    crc_.update(message);
    ++frames_;
  }
  std::optional<Bytes> receive() override { return std::nullopt; }
  const Clock& clock() const override { return clock_; }
  std::uint32_t crc() const noexcept { return crc_.value(); }
  std::uint64_t frames() const noexcept { return frames_; }

 private:
  MonotonicClock clock_;
  Crc32 crc_;
  std::uint64_t frames_ = 0;
};

/// Replay the same demo publishes through a private broker with the same
/// negotiated parameters and return the wire CRC of its frame stream.
CaptureTransport reproduce_wire(const net::NegotiatedParams& params,
                                std::uint64_t seed, std::uint32_t blocks,
                                std::size_t block_size) {
  CaptureTransport capture;
  broker::FanoutBroker broker;
  broker::SubscriberConfig sub;
  net::apply(params, sub.adaptive);
  const broker::SubscriberId id = broker.subscribe(capture, sub);
  for (std::uint32_t i = 0; i < blocks; ++i) {
    broker.publish(net::demo_block(seed, i, block_size));
    broker.pump(id);
  }
  return capture;
}

/// Count complete, verified demo blocks in `stream`; returns the number of
/// blocks, or -1 on a verification failure at `*bad_at`.
long scan_blocks(ByteView stream, std::uint64_t seed, bool verify,
                 std::size_t* bad_at) {
  long count = 0;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    const std::size_t size = net::demo_block_size(stream.subspan(pos));
    if (size == 0 || pos + size > stream.size()) break;  // partial tail
    if (verify && !net::demo_block_verify(seed, stream.subspan(pos, size))) {
      *bad_at = pos;
      return -1;
    }
    pos += size;
    ++count;
  }
  return count;
}

int cmd_stat(std::uint16_t port) {
  net::DaemonClientConfig cfg;
  net::DaemonClient client(port, cfg);
  const net::DaemonStats s = client.stat();
  std::printf(
      "acexctl stat: connections=%llu open=%llu handshakes=%llu "
      "rejects=%llu bytes_in=%llu bytes_out=%llu wakeups=%llu "
      "blocks=%llu\n",
      static_cast<unsigned long long>(s.connections_total),
      static_cast<unsigned long long>(s.connections_open),
      static_cast<unsigned long long>(s.handshakes),
      static_cast<unsigned long long>(s.rejects),
      static_cast<unsigned long long>(s.bytes_in),
      static_cast<unsigned long long>(s.bytes_out),
      static_cast<unsigned long long>(s.loop_wakeups),
      static_cast<unsigned long long>(s.blocks_published));
  client.bye();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  if (cmd != "sub" && cmd != "stat" && cmd != "tail") usage();

  std::uint16_t port = 0;
  net::DaemonClientConfig cfg;
  long expect_blocks = 0;
  long count = 10;  // tail
  std::uint64_t seed = 1;
  bool verify = false;
  bool verify_wire = false;
  long kill_after = 0;
  bool do_resume = false;
  int timeout_ms = 30000;
  std::size_t block_size_hint = 16 * 1024;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--port") {
      port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--name") {
      cfg.offer.name = next();
    } else if (arg == "--methods") {
      cfg.offer.methods = parse_methods(next());
    } else if (arg == "--block-size") {
      cfg.offer.block_size = static_cast<std::uint32_t>(std::atol(next()));
    } else if (arg == "--slack") {
      cfg.offer.expansion_slack =
          static_cast<std::uint32_t>(std::atol(next()));
    } else if (arg == "--no-context-takeover") {
      cfg.offer.context_takeover = false;
    } else if (arg == "--target-rate") {
      cfg.offer.target_rate_Bps = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--policy") {
      cfg.offer.policy_id = parse_policy(next());
    } else if (arg == "--expect-blocks") {
      expect_blocks = std::atol(next());
    } else if (arg == "--count") {
      count = std::atol(next());
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--verify-wire") {
      verify_wire = true;
    } else if (arg == "--kill-after") {
      kill_after = std::atol(next());
    } else if (arg == "--resume") {
      do_resume = true;
    } else if (arg == "--timeout-ms") {
      timeout_ms = std::atoi(next());
    } else if (arg == "--publish-block-size") {
      block_size_hint = static_cast<std::size_t>(std::atol(next()));
    } else {
      usage();
    }
  }
  if (port == 0) usage();

  try {
    if (cmd == "stat") return cmd_stat(port);

    if (verify_wire) {
      // Pin method selection: an unreachable target rate escalates every
      // block to the strongest negotiated method, making the daemon's
      // choices independent of socket timing — reproducible offline.
      cfg.offer.target_rate_Bps = 1ull << 60;
    }
    if (cmd == "tail") {
      verify = true;
      expect_blocks = count;
    }

    net::DaemonClient client(port, cfg);
    const net::Welcome& w = client.welcome();
    std::string methods;
    for (const MethodId m : w.params.methods) {
      if (!methods.empty()) methods += ",";
      methods += method_name(m);
    }
    std::printf(
        "acexctl: session=%llu negotiated methods=%s block=%u slack=%u "
        "takeover=%d\n",
        static_cast<unsigned long long>(w.session_id), methods.c_str(),
        w.params.block_size, w.params.expansion_slack,
        w.params.context_takeover ? 1 : 0);
    std::fflush(stdout);

    MonotonicClock clock;
    const Seconds deadline = clock.now() + timeout_ms / 1000.0;
    long done = 0;
    long printed = 0;
    bool resumed = false;
    std::size_t bad_at = 0;
    for (;;) {
      done = scan_blocks(client.stream(), seed, verify, &bad_at);
      if (done < 0) {
        std::fprintf(stderr, "acexctl: block verify FAILED at offset %zu\n",
                     bad_at);
        return 1;
      }
      if (cmd == "tail") {
        for (; printed < done; ++printed) {
          std::printf("acexctl tail: block %ld ok\n", printed);
        }
        std::fflush(stdout);
      }
      if (expect_blocks > 0 && done >= expect_blocks) break;
      if (clock.now() >= deadline) {
        std::fprintf(stderr, "acexctl: timed out with %ld/%ld blocks\n",
                     done, expect_blocks);
        return 2;
      }
      if (!resumed && do_resume && kill_after > 0 && done >= kill_after) {
        client.drop();
        msleep(50);
        client.resume(port);
        resumed = true;
        std::printf("acexctl: killed after %ld blocks, resumed (replayed=%llu)\n",
                    done,
                    static_cast<unsigned long long>(client.welcome().replayed));
        std::fflush(stdout);
        continue;
      }
      if (!client.connected()) {
        std::fprintf(stderr, "acexctl: connection lost with %ld/%ld blocks\n",
                     done, expect_blocks);
        return 1;
      }
      client.poll(50);
    }

    if (verify_wire) {
      if (resumed || kill_after > 0) {
        std::fprintf(stderr,
                     "acexctl: --verify-wire cannot run across a kill\n");
        return 64;
      }
      const CaptureTransport expected = reproduce_wire(
          client.welcome().params, seed,
          static_cast<std::uint32_t>(expect_blocks), block_size_hint);
      if (expected.frames() != client.data_frames()) {
        // Frame loss (egress eviction) makes a wire comparison moot; the
        // content identity above already passed.
        std::printf(
            "acexctl: wire check skipped (frames %llu vs %llu — NACK "
            "recovery reordered the stream)\n",
            static_cast<unsigned long long>(client.data_frames()),
            static_cast<unsigned long long>(expected.frames()));
      } else if (expected.crc() != client.wire_crc()) {
        std::fprintf(stderr, "acexctl: wire CRC mismatch %08x vs %08x\n",
                     client.wire_crc(), expected.crc());
        return 1;
      } else {
        std::printf("acexctl: wire byte-identical across %llu frames\n",
                    static_cast<unsigned long long>(client.data_frames()));
      }
    }

    client.bye();
    std::printf("acexctl: ok blocks=%ld bytes=%zu frames=%llu resumed=%d\n",
                done, client.stream().size(),
                static_cast<unsigned long long>(client.data_frames()),
                resumed ? 1 : 0);
    return 0;
  } catch (const net::HandshakeError& e) {
    std::fprintf(stderr, "acexctl: rejected (%s): %s\n",
                 std::string(net::handshake_status_name(e.status())).c_str(),
                 e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "acexctl: %s\n", e.what());
    return 1;
  }
}
