// acexstat — observability smoke tool: drives a parallel adaptive stream
// over a fault-injecting simulated link, then prints the metrics registry
// and block-lifecycle trace that run produced (DESIGN.md §9).
//
//   acexstat [-w WORKERS] [-n BLOCKS] [-b BLOCK_KIB] [-s SEED]
//            [--json PATH] [--prom PATH] [--spans]
//
// The run itself doubles as a consistency check: the obs counters mirrored
// by FaultInjectingTransport must match the injector's own tallies exactly,
// the NACK/retransmit counters must match the sender/receiver bookkeeping,
// and every histogram must satisfy p50 <= p99. Any violation exits 1 —
// CI runs this binary as a test.
//
// --json / --prom write the same snapshot through the JSON-lines or
// Prometheus exporter ("-" for stdout); --spans dumps the raw span ring.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "adaptive/pipeline.hpp"
#include "engine/parallel_sender.hpp"
#include "netsim/link.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "transport/fault_transport.hpp"
#include "transport/sim_transport.hpp"
#include "util/error.hpp"

namespace {

using namespace acex;

struct Options {
  std::size_t workers = 8;
  std::size_t blocks = 64;
  std::size_t block_kib = 4;
  std::uint64_t seed = 17;
  std::string json_path;  // empty = off, "-" = stdout
  std::string prom_path;
  bool dump_spans = false;
};

netsim::LinkParams flat_link(double bps) {
  netsim::LinkParams p;
  p.bandwidth_Bps = bps;
  p.jitter_frac = 0;
  p.latency_s = 0;
  return p;
}

/// Deterministic test payload: repetitive text with a pseudo-random block
/// mixed in every fourth block, so the selector exercises several methods.
Bytes make_payload(std::size_t blocks, std::size_t block_size,
                   std::uint64_t seed) {
  Bytes data;
  data.reserve(blocks * block_size);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  const char* words[] = {"exchange ", "configurable ", "compression ",
                         "adaptive "};
  for (std::size_t b = 0; b < blocks; ++b) {
    if (b % 4 == 3) {
      for (std::size_t i = 0; i < block_size; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        data.push_back(static_cast<std::uint8_t>(x));
      }
    } else {
      while (data.size() < (b + 1) * block_size) {
        const char* w = words[(b + data.size() / 16) % 4];
        for (const char* c = w; *c && data.size() < (b + 1) * block_size; ++c) {
          data.push_back(static_cast<std::uint8_t>(*c));
        }
      }
    }
  }
  return data;
}

void write_output(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot create " + path);
  out << text;
  if (!out) throw IoError("failed writing " + path);
}

/// One cross-check line; returns false (and complains) on mismatch.
bool check_eq(const char* what, std::uint64_t obs_value,
              std::uint64_t expected, int& failures) {
  if (obs_value == expected) return true;
  std::fprintf(stderr, "acexstat: MISMATCH %s: obs=%llu expected=%llu\n", what,
               static_cast<unsigned long long>(obs_value),
               static_cast<unsigned long long>(expected));
  ++failures;
  return false;
}

std::uint64_t counter_value(const obs::MetricsSnapshot& snapshot,
                            const std::string& name) {
  const obs::MetricPoint* p = snapshot.find(name);
  return p ? p->counter : 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: acexstat [-w WORKERS] [-n BLOCKS] [-b BLOCK_KIB] "
               "[-s SEED] [--json PATH] [--prom PATH] [--spans]\n");
  return 2;
}

int run(const Options& opt) {
  // Scope every series to this run (the instruments themselves are
  // process-wide and permanent; only the values reset).
  obs::MetricsRegistry::global().reset_values();
  obs::BlockTracer::global().clear();

  VirtualClock clock;
  netsim::SimLink forward(flat_link(5e6), opt.seed);
  netsim::SimLink reverse(flat_link(1e9), opt.seed + 1);
  transport::SimDuplex duplex(forward, reverse, clock);

  transport::FaultConfig faults;
  faults.bit_flip_prob = 0.02;
  faults.drop_prob = 0.01;
  faults.duplicate_prob = 0.01;
  faults.reorder_prob = 0.02;
  faults.seed = opt.seed;
  transport::FaultInjectingTransport lossy(duplex.a(), faults);

  adaptive::AdaptiveConfig config;
  config.async_sampling = false;  // deterministic
  config.decision.block_size = opt.block_kib * 1024;
  config.decision.sample_size = std::min<std::size_t>(1024, opt.block_kib * 1024);
  config.worker_threads = opt.workers;
  config.retransmit_capacity = opt.blocks + 8;  // keep every frame replayable
  config.retransmit_max_retries = 4;
  engine::ParallelSender sender(lossy, config);
  adaptive::AdaptiveReceiver rx(duplex.b(),
                                {adaptive::RecoveryPolicy::kNack, 4});

  const Bytes data =
      make_payload(opt.blocks, config.decision.block_size, opt.seed);
  const adaptive::StreamReport stream = sender.send_all(data);
  lossy.flush();

  std::map<std::uint64_t, Bytes> recovered;
  const auto absorb = [&](const adaptive::ReceiveReport& report) {
    for (const adaptive::FrameOutcome& f : report.frames) {
      if (f.status == adaptive::FrameOutcome::Status::kOk) {
        recovered.emplace(f.sequence, f.data);
      }
    }
  };
  absorb(rx.receive_report());

  std::uint64_t nacks_issued = 0;
  for (int round = 0; round < 16; ++round) {
    const std::vector<std::uint64_t> nacks = rx.take_nacks();
    if (nacks.empty()) break;
    nacks_issued += nacks.size();
    sender.sender().retransmit(nacks);
    lossy.flush();
    absorb(rx.receive_report());
  }

  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::global().snapshot();
  const std::vector<obs::SpanEvent> spans = obs::BlockTracer::global().snapshot();

  // ------------------------------------------------ consistency checks
  int failures = 0;
  const transport::FaultCounters& c = lossy.counters();
  check_eq("fault.messages",
           counter_value(snapshot, "acex.transport.fault.messages"),
           c.messages, failures);
  check_eq("fault.drops", counter_value(snapshot, "acex.transport.fault.drops"),
           c.drops, failures);
  check_eq("fault.reorders",
           counter_value(snapshot, "acex.transport.fault.reorders"), c.reorders,
           failures);
  check_eq("fault.duplicates",
           counter_value(snapshot, "acex.transport.fault.duplicates"),
           c.duplicates, failures);
  check_eq("fault.bit_flips",
           counter_value(snapshot, "acex.transport.fault.bit_flips"),
           c.bit_flips, failures);
  check_eq("fault.truncations",
           counter_value(snapshot, "acex.transport.fault.truncations"),
           c.truncations, failures);
  check_eq("fault.clean", counter_value(snapshot, "acex.transport.fault.clean"),
           c.clean, failures);
  check_eq("rx.nacks_issued",
           counter_value(snapshot, "acex.adaptive.rx.nacks_issued"),
           nacks_issued, failures);
  check_eq("tx.retransmits",
           counter_value(snapshot, "acex.adaptive.retransmits"),
           sender.sender().degradation().retransmits, failures);
  check_eq("blocks", counter_value(snapshot, "acex.adaptive.blocks"),
           stream.blocks.size(), failures);

  for (const obs::MetricPoint& point : snapshot.points) {
    if (point.kind != obs::MetricPoint::Kind::kHistogram) continue;
    if (point.hist.count == 0) continue;
    if (!(point.hist.p50() <= point.hist.p99())) {
      std::fprintf(stderr, "acexstat: INSANE QUANTILES %s: p50=%g > p99=%g\n",
                   point.full_name().c_str(), point.hist.p50(),
                   point.hist.p99());
      ++failures;
    }
  }

  // ------------------------------------------------------------ output
  std::printf("acexstat: %zu blocks x %zu KiB, %zu workers, seed %llu\n",
              opt.blocks, opt.block_kib, sender.worker_count(),
              static_cast<unsigned long long>(opt.seed));
  std::printf("recovered %zu/%zu blocks, %llu NACKs issued\n\n",
              recovered.size(), stream.blocks.size(),
              static_cast<unsigned long long>(nacks_issued));
  std::fputs(obs::to_text(snapshot).c_str(), stdout);

  // Per-stage span digest: the block lifecycle at a glance.
  std::map<obs::Stage, std::pair<std::uint64_t, double>> stages;
  for (const obs::SpanEvent& span : spans) {
    auto& [count, total] = stages[span.stage];
    ++count;
    total += span.duration_us();
  }
  std::printf("\nspans (%llu recorded, %llu dropped by ring wrap)\n",
              static_cast<unsigned long long>(obs::BlockTracer::global().recorded()),
              static_cast<unsigned long long>(obs::BlockTracer::global().dropped()));
  for (const auto& [stage, acc] : stages) {
    std::printf("  %-10s %8llu spans  mean %10.1f us\n",
                std::string(obs::stage_name(stage)).c_str(),
                static_cast<unsigned long long>(acc.first),
                acc.first ? acc.second / static_cast<double>(acc.first) : 0.0);
  }

  if (opt.dump_spans) {
    std::fputs("\n", stdout);
    std::fputs(obs::to_json_lines(spans).c_str(), stdout);
  }
  if (!opt.json_path.empty()) {
    write_output(opt.json_path,
                 obs::to_json_lines(snapshot) + obs::to_json_lines(spans));
  }
  if (!opt.prom_path.empty()) {
    write_output(opt.prom_path, obs::to_prometheus(snapshot));
  }

  if (failures != 0) {
    std::fprintf(stderr, "acexstat: %d consistency check(s) FAILED\n",
                 failures);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw ConfigError(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "-w") {
        opt.workers = std::stoul(next());
      } else if (arg == "-n") {
        opt.blocks = std::stoul(next());
        if (opt.blocks == 0) throw ConfigError("-n must be > 0");
      } else if (arg == "-b") {
        opt.block_kib = std::stoul(next());
        if (opt.block_kib == 0) throw ConfigError("-b must be > 0");
      } else if (arg == "-s") {
        opt.seed = std::stoull(next());
      } else if (arg == "--json") {
        opt.json_path = next();
      } else if (arg == "--prom") {
        opt.prom_path = next();
      } else if (arg == "--spans") {
        opt.dump_spans = true;
      } else {
        return usage();
      }
    }
    return run(opt);
  } catch (const acex::Error& e) {
    std::fprintf(stderr, "acexstat: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "acexstat: internal error: %s\n", e.what());
    return 1;
  }
}
