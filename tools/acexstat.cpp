// acexstat — observability smoke tool: drives a parallel adaptive stream
// over a fault-injecting simulated link, then prints the metrics registry
// and block-lifecycle trace that run produced (DESIGN.md §9).
//
//   acexstat [-w WORKERS] [-n BLOCKS] [-b BLOCK_KIB] [-s SEED]
//            [--json PATH] [--prom PATH] [--spans]
//   acexstat --broker SUBS [-n BLOCKS] [-b BLOCK_KIB] [-s SEED]
//   acexstat --chaos SESSIONS [-s SEED]
//   acexstat --shm SUBS [-n BLOCKS] [-b BLOCK_KIB] [-w WORKERS]
//
// The run itself doubles as a consistency check: the obs counters mirrored
// by FaultInjectingTransport must match the injector's own tallies exactly,
// the NACK/retransmit counters must match the sender/receiver bookkeeping,
// and every histogram must satisfy p50 <= p99. Any violation exits 1 —
// CI runs this binary as a test.
//
// --chaos SESSIONS runs the session-resilience battery instead: SESSIONS
// durable sessions are killed and reconnected mid-stream over faulted
// links (qa::run_chaos), and every `acex.session.*` series is checked
// against the chaos harness's own ground truth. Any mismatch exits 1.
//
// --broker SUBS runs the fan-out demo instead: SUBS subscribers on
// heterogeneous links (half fast, half slow, every fourth one faulted)
// receive the same block stream through one FanoutBroker, and every
// broker obs series — blocks, encode-cache hits/misses, per-subscriber
// frames/drops/fallbacks — is checked against the broker's own ground
// truth and the receivers' byte-exact recovery. Any mismatch exits 1.
//
// --shm SUBS runs the shared-memory fan-out demo instead: SUBS ShmBus
// endpoints receive the same block stream as descriptor-only messages
// staged once into refcounted slabs (DESIGN.md §16), verified byte-
// identical to the frames a plain capture transport would have carried,
// then a deliberately undersized ring exercises the force-reclaim /
// stale-descriptor / stale-release ladder. Every `acex.shm.*` series is
// checked against the ring's and endpoints' own ground truth.
//
// --json / --prom write the same snapshot through the JSON-lines or
// Prometheus exporter ("-" for stdout); --spans dumps the raw span ring.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "adaptive/pipeline.hpp"
#include "broker/broker.hpp"
#include "engine/parallel_sender.hpp"
#include "netsim/link.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "qa/chaos.hpp"
#include "shm/bus.hpp"
#include "transport/fault_transport.hpp"
#include "transport/sim_transport.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace {

using namespace acex;

struct Options {
  std::size_t workers = 8;
  std::size_t blocks = 64;
  std::size_t block_kib = 4;
  std::uint64_t seed = 17;
  std::size_t broker_subs = 0;  // > 0 switches to the fan-out demo
  std::size_t chaos_sessions = 0;  // > 0 switches to the chaos battery
  std::size_t shm_subs = 0;  // > 0 switches to the shared-memory demo
  std::string json_path;  // empty = off, "-" = stdout
  std::string prom_path;
  bool dump_spans = false;
};

netsim::LinkParams flat_link(double bps) {
  netsim::LinkParams p;
  p.bandwidth_Bps = bps;
  p.jitter_frac = 0;
  p.latency_s = 0;
  return p;
}

/// Deterministic test payload: repetitive text with a pseudo-random block
/// mixed in every fourth block, so the selector exercises several methods.
Bytes make_payload(std::size_t blocks, std::size_t block_size,
                   std::uint64_t seed) {
  Bytes data;
  data.reserve(blocks * block_size);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  const char* words[] = {"exchange ", "configurable ", "compression ",
                         "adaptive "};
  for (std::size_t b = 0; b < blocks; ++b) {
    if (b % 4 == 3) {
      for (std::size_t i = 0; i < block_size; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        data.push_back(static_cast<std::uint8_t>(x));
      }
    } else {
      while (data.size() < (b + 1) * block_size) {
        const char* w = words[(b + data.size() / 16) % 4];
        for (const char* c = w; *c && data.size() < (b + 1) * block_size; ++c) {
          data.push_back(static_cast<std::uint8_t>(*c));
        }
      }
    }
  }
  return data;
}

void write_output(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot create " + path);
  out << text;
  if (!out) throw IoError("failed writing " + path);
}

/// One cross-check line; returns false (and complains) on mismatch.
bool check_eq(const char* what, std::uint64_t obs_value,
              std::uint64_t expected, int& failures) {
  if (obs_value == expected) return true;
  std::fprintf(stderr, "acexstat: MISMATCH %s: obs=%llu expected=%llu\n", what,
               static_cast<unsigned long long>(obs_value),
               static_cast<unsigned long long>(expected));
  ++failures;
  return false;
}

std::uint64_t counter_value(const obs::MetricsSnapshot& snapshot,
                            const std::string& name) {
  const obs::MetricPoint* p = snapshot.find(name);
  return p ? p->counter : 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: acexstat [-w WORKERS] [-n BLOCKS] [-b BLOCK_KIB] "
               "[-s SEED] [--json PATH] [--prom PATH] [--spans]\n"
               "       acexstat --broker SUBS [-n BLOCKS] [-b BLOCK_KIB] "
               "[-s SEED]\n"
               "       acexstat --chaos SESSIONS [-s SEED]\n"
               "       acexstat --shm SUBS [-n BLOCKS] [-b BLOCK_KIB] "
               "[-w WORKERS]\n");
  return 2;
}

// ------------------------------------------------------ fan-out demo mode
/// One broker subscriber endpoint for the demo: its own sim duplex (all on
/// a shared virtual clock), optionally behind a fault injector, with a
/// NACK receiver draining the far side.
struct DemoSubscriber {
  std::unique_ptr<netsim::SimLink> forward;
  std::unique_ptr<netsim::SimLink> reverse;
  std::unique_ptr<transport::SimDuplex> duplex;
  std::unique_ptr<transport::FaultInjectingTransport> lossy;  // may be null
  std::unique_ptr<adaptive::AdaptiveReceiver> rx;
  broker::SubscriberId id = 0;
  std::string name;
  bool faulted = false;
  std::map<std::uint64_t, std::uint32_t> recovered;  // sequence -> crc32
};

int run_broker_demo(const Options& opt) {
  obs::MetricsRegistry::global().reset_values();
  obs::BlockTracer::global().clear();

  const std::size_t block_size = opt.block_kib * 1024;
  VirtualClock clock;
  broker::BrokerConfig bc;
  bc.worker_threads = opt.workers;
  broker::FanoutBroker broker(bc);

  // Heterogeneous fleet: even subscribers ride a fast link, odd ones a slow
  // link (so the planners pick different methods and the encode cache has
  // real groups to share), and every fourth link drops/corrupts frames.
  std::vector<std::unique_ptr<DemoSubscriber>> subs;
  for (std::size_t i = 0; i < opt.broker_subs; ++i) {
    auto sub = std::make_unique<DemoSubscriber>();
    const bool fast = i % 2 == 0;
    const double link_bps = fast ? 5e7 : 2e5;
    sub->forward = std::make_unique<netsim::SimLink>(flat_link(link_bps),
                                                     opt.seed + i * 2);
    sub->reverse = std::make_unique<netsim::SimLink>(flat_link(1e9),
                                                     opt.seed + i * 2 + 1);
    sub->duplex = std::make_unique<transport::SimDuplex>(
        *sub->forward, *sub->reverse, clock);
    transport::Transport* wire = &sub->duplex->a();
    if (i % 4 == 3) {
      sub->faulted = true;
      transport::FaultConfig faults;
      faults.drop_prob = 0.05;
      faults.bit_flip_prob = 0.02;
      faults.seed = opt.seed * 31 + i;
      sub->lossy = std::make_unique<transport::FaultInjectingTransport>(
          *wire, faults);
      wire = sub->lossy.get();
    }
    adaptive::ReceiverConfig rc;
    rc.policy = adaptive::RecoveryPolicy::kNack;
    rc.nack_retry_cap = 4;
    sub->rx =
        std::make_unique<adaptive::AdaptiveReceiver>(sub->duplex->b(), rc);

    broker::SubscriberConfig sc;
    sub->name = (fast ? "fast-" : "slow-") + std::to_string(i);
    if (sub->faulted) sub->name += "-faulted";
    sc.name = sub->name;
    sc.adaptive.decision.block_size = block_size;
    sc.adaptive.decision.sample_size = std::min<std::size_t>(1024, block_size);
    sc.adaptive.initial_bandwidth_Bps = link_bps;
    sc.adaptive.retransmit_capacity = opt.blocks + 8;
    sc.adaptive.retransmit_max_retries = 4;
    sc.egress_capacity = opt.blocks + 8;
    sub->id = broker.subscribe(*wire, sc);
    subs.push_back(std::move(sub));
  }

  // Publish the stream, pump every subscriber, drain + NACK-replay the
  // faulted ones until every receiver has every block.
  const Bytes data = make_payload(opt.blocks, block_size, opt.seed);
  std::vector<std::uint32_t> truth;
  for (std::size_t at = 0; at < data.size(); at += block_size) {
    const std::size_t len = std::min(block_size, data.size() - at);
    const ByteView block(data.data() + at, len);
    truth.push_back(crc32(block));
    broker.publish(block);
  }

  int failures = 0;
  const auto drain = [&](DemoSubscriber& sub) {
    for (const adaptive::FrameOutcome& f : sub.rx->receive_report().frames) {
      if (f.status != adaptive::FrameOutcome::Status::kOk) continue;
      if (f.sequence >= truth.size()) {
        std::fprintf(stderr, "acexstat: %s got unpublished sequence %llu\n",
                     sub.name.c_str(),
                     static_cast<unsigned long long>(f.sequence));
        ++failures;
        continue;
      }
      const std::uint32_t got = crc32(f.data);
      sub.recovered.emplace(f.sequence, got);
      if (got != truth[static_cast<std::size_t>(f.sequence)]) {
        std::fprintf(stderr, "acexstat: %s block %llu payload diverged\n",
                     sub.name.c_str(),
                     static_cast<unsigned long long>(f.sequence));
        ++failures;
      }
    }
  };
  for (auto& sub : subs) {
    broker.pump(sub->id);
    if (sub->lossy) sub->lossy->flush();
    drain(*sub);
    for (int round = 0; round < 16; ++round) {
      const std::vector<std::uint64_t> nacks = sub->rx->take_nacks();
      if (nacks.empty()) break;
      broker.retransmit(sub->id, nacks);
      broker.pump(sub->id);
      if (sub->lossy) sub->lossy->flush();
      drain(*sub);
    }
  }

  // ---------------------- obs counters vs ground truth, per subscriber --
  auto& reg = obs::MetricsRegistry::global();
  const broker::BrokerStats bs = broker.stats();
  std::uint64_t total_frames = 0;
  for (auto& sub : subs) {
    const broker::SubscriberStats ss = broker.subscriber_stats(sub->id);
    total_frames += ss.frames;
    const std::string tag = "sub." + sub->name;
    check_eq((tag + ".frames").c_str(),
             reg.counter("acex.broker.sub.frames", "subscriber", sub->name)
                 .value(),
             ss.frames, failures);
    check_eq((tag + ".drops").c_str(),
             reg.counter("acex.broker.sub.drops", "subscriber", sub->name)
                 .value(),
             ss.drops, failures);
    check_eq((tag + ".fallbacks").c_str(),
             reg.counter("acex.broker.sub.fallbacks", "subscriber", sub->name)
                 .value(),
             ss.fallbacks, failures);
    check_eq((tag + ".recovered").c_str(), sub->recovered.size(),
             truth.size(), failures);
    if (broker.disconnected(sub->id)) {
      std::fprintf(stderr, "acexstat: %s disconnected unexpectedly\n",
                   sub->name.c_str());
      ++failures;
    }
  }

  // Broker-wide identities: every series equals the broker's bookkeeping,
  // the cache accounts for every planned frame, and misses == codec runs.
  check_eq("broker.blocks",
           reg.counter("acex.broker.blocks").value(), bs.blocks, failures);
  check_eq("broker.blocks.truth", bs.blocks, truth.size(), failures);
  check_eq("broker.cache.hits",
           reg.counter("acex.broker.encode_cache.hits").value(), bs.cache_hits,
           failures);
  check_eq("broker.cache.misses",
           reg.counter("acex.broker.encode_cache.misses").value(),
           bs.cache_misses, failures);
  check_eq("broker.encodes==misses", bs.encodes, bs.cache_misses, failures);
  check_eq("broker.cache.total", bs.cache_hits + bs.cache_misses,
           total_frames, failures);
  check_eq("broker.subscribers",
           static_cast<std::uint64_t>(
               reg.gauge("acex.broker.subscribers").value()),
           subs.size(), failures);
  // Fault mirror: the only injectors alive are the demo's own.
  std::uint64_t fault_messages = 0;
  for (const auto& sub : subs) {
    if (sub->lossy) fault_messages += sub->lossy->counters().messages;
  }
  check_eq("fault.messages",
           reg.counter("acex.transport.fault.messages").value(),
           fault_messages, failures);

  const double hit_ratio =
      bs.cache_hits + bs.cache_misses == 0
          ? 0.0
          : static_cast<double>(bs.cache_hits) /
                static_cast<double>(bs.cache_hits + bs.cache_misses);
  std::printf(
      "acexstat --broker: %zu subscribers x %zu blocks (%zu KiB), seed %llu\n"
      "  encodes %llu, cache hits %llu (%.1f%% shared), last block had %llu "
      "method group(s)\n"
      "  every subscriber recovered %zu/%zu blocks byte-exact\n",
      subs.size(), truth.size(), opt.block_kib,
      static_cast<unsigned long long>(opt.seed),
      static_cast<unsigned long long>(bs.encodes),
      static_cast<unsigned long long>(bs.cache_hits), hit_ratio * 100.0,
      static_cast<unsigned long long>(bs.last_groups), truth.size(),
      truth.size());
  if (failures != 0) {
    std::fprintf(stderr, "acexstat: %d broker consistency check(s) FAILED\n",
                 failures);
    return 1;
  }
  std::printf("  obs counters match ground truth on every series\n");
  return 0;
}

// ----------------------------------------- shared-memory fan-out demo
/// Reference sink: what the TCP path would have carried, frame by frame.
struct ShmDemoCapture final : transport::Transport {
  void send(ByteView message) override {
    frames.emplace_back(message.begin(), message.end());
  }
  std::optional<Bytes> receive() override { return std::nullopt; }
  const Clock& clock() const override { return clock_; }
  std::vector<Bytes> frames;

 private:
  MonotonicClock clock_;
};

int run_shm_demo(const Options& opt) {
  obs::MetricsRegistry::global().reset_values();
  obs::BlockTracer::global().clear();

  const std::size_t block_size = opt.block_kib * 1024;
  const Bytes data = make_payload(opt.blocks, block_size, opt.seed);
  int failures = 0;
  auto& reg = obs::MetricsRegistry::global();

  // Phase 1: fan out through a well-sized slab ring and verify the
  // descriptor path carries frames byte-identical to a capture transport.
  shm::ShmBusConfig bus_cfg;
  bus_cfg.ring.slab_count = opt.blocks + 16;
  bus_cfg.ring.slab_size = block_size + 512;
  bus_cfg.queue_capacity = opt.blocks + 8;
  shm::RingStats ring_truth;
  shm::ShmBusStats bus_truth;
  std::uint64_t stale_descriptors = 0;
  {
    const auto fan_out = [&](shm::ShmBus* bus) {
      broker::BrokerConfig bc;
      bc.worker_threads = opt.workers;
      if (bus != nullptr) bc.frame_builder = bus->frame_builder();
      broker::FanoutBroker broker(bc);
      std::vector<std::unique_ptr<shm::ShmEndpoint>> eps;
      std::vector<std::unique_ptr<ShmDemoCapture>> sinks;
      for (std::size_t i = 0; i < opt.shm_subs; ++i) {
        broker::SubscriberConfig sc;
        sc.adaptive.decision.block_size = block_size;
        sc.adaptive.decision.sample_size =
            std::min<std::size_t>(1024, block_size);
        sc.egress_capacity = opt.blocks + 8;
        if (bus != nullptr) {
          eps.push_back(bus->endpoint());
          broker.subscribe(*eps.back(), sc);
        } else {
          sinks.push_back(std::make_unique<ShmDemoCapture>());
          broker.subscribe(*sinks.back(), sc);
        }
      }
      for (std::size_t at = 0; at < data.size(); at += block_size) {
        broker.publish(
            ByteView(data.data() + at, std::min(block_size, data.size() - at)));
      }
      broker.pump_all();

      if (bus != nullptr) {
        // Mid-flight, with every frame still pinned by descriptors and
        // retransmit rings: the gauges must mirror the ring exactly.
        const shm::RingStats mid = bus->ring().stats();
        check_eq("shm.slabs_in_use.gauge",
                 static_cast<std::uint64_t>(
                     reg.gauge("acex.shm.slabs_in_use").value()),
                 mid.slabs_in_use, failures);
        check_eq("shm.occupancy.gauge",
                 static_cast<std::uint64_t>(
                     reg.gauge("acex.shm.ring.occupancy_pct").value()),
                 static_cast<std::uint64_t>(100.0 * mid.slabs_in_use /
                                            static_cast<double>(mid.slab_count)),
                 failures);
      }
      std::vector<std::vector<Bytes>> out(opt.shm_subs);
      for (std::size_t i = 0; i < opt.shm_subs; ++i) {
        if (bus != nullptr) {
          while (auto frame = eps[i]->receive()) out[i].push_back(*frame);
          stale_descriptors += eps[i]->stats().stale_descriptors;
        } else {
          out[i] = sinks[i]->frames;
        }
      }
      return out;
    };

    const auto reference = fan_out(nullptr);
    shm::ShmBus bus(bus_cfg);
    const auto via_shm = fan_out(&bus);
    for (std::size_t i = 0; i < opt.shm_subs; ++i) {
      if (reference[i] != via_shm[i]) {
        std::fprintf(stderr,
                     "acexstat: MISMATCH shm subscriber %zu frames differ "
                     "from the capture path\n", i);
        ++failures;
      }
      check_eq("shm.frames_per_sub", via_shm[i].size(), opt.blocks, failures);
    }
    ring_truth = bus.ring().stats();
    bus_truth = bus.stats();
    check_eq("shm.copy_fallbacks.phase1", bus_truth.copy_fallbacks, 0,
             failures);
    check_eq("shm.staged_frames", bus_truth.staged, opt.blocks, failures);
  }

  // Phase 2: a deliberately undersized ring (2 slabs, zero reclaim grace)
  // walks the whole degradation ladder — force-reclaim, stale descriptor,
  // stale release, corrupt injection — so the failure-path series have
  // real ground truth to be checked against.
  shm::ShmBusConfig tiny_cfg;
  tiny_cfg.ring.slab_count = 2;
  tiny_cfg.ring.slab_size = 4096;
  tiny_cfg.ring.reclaim_wait = 0;
  shm::ShmBus tiny(tiny_cfg);
  {
    const auto ep = tiny.endpoint();
    const Bytes small(64, 0x5A);
    // A held view outliving its slab: send/receive one, keep the view
    // pinned while two more sends force-reclaim its slab underneath it.
    ep->send(small);
    std::optional<BufferView> held = ep->receive_buffer();
    if (!held) {
      std::fprintf(stderr, "acexstat: shm stress receive came up empty\n");
      return 1;
    }
    ep->send(small);
    ep->send(small);  // ring full: force-reclaims the held view's slab
    held.reset();     // stale release: the slab moved on without us
    // A queued descriptor outliving its slab: fill both slabs with queued
    // sends, then a third send reclaims the oldest while still queued.
    while (ep->receive_buffer()) {
    }
    ep->send(small);
    ep->send(small);
    ep->send(small);
    // Garbage on the wire is counted and skipped, never fatal.
    ep->inject_raw(Bytes{0xDE, 0xAD, 0xBE, 0xEF});
    while (ep->receive_buffer()) {
    }
    stale_descriptors += ep->stats().stale_descriptors;
    check_eq("shm.stress.corrupt", ep->stats().corrupt_descriptors, 1,
             failures);
    check_eq("shm.stress.stale", ep->stats().stale_descriptors, 1, failures);
  }
  const shm::RingStats tiny_truth = tiny.ring().stats();
  const shm::ShmBusStats tiny_bus = tiny.stats();

  // Every acex.shm.* series must equal the sum of the two rings' own
  // bookkeeping (the instruments are process-global, the truth is not).
  check_eq("shm.copy_fallbacks",
           reg.counter("acex.shm.copy_fallbacks").value(),
           bus_truth.copy_fallbacks + tiny_bus.copy_fallbacks, failures);
  check_eq("shm.force_reclaims",
           reg.counter("acex.shm.force_reclaims").value(),
           ring_truth.force_reclaims + tiny_truth.force_reclaims, failures);
  check_eq("shm.stale_releases",
           reg.counter("acex.shm.stale_releases").value(),
           ring_truth.stale_releases + tiny_truth.stale_releases, failures);
  check_eq("shm.stale_descriptors",
           reg.counter("acex.shm.stale_descriptors").value(),
           stale_descriptors, failures);
  check_eq("shm.reclaim_wait.count",
           reg.histogram("acex.shm.reclaim_wait_seconds").count(),
           ring_truth.reclaim_waits + tiny_truth.reclaim_waits, failures);
  check_eq("shm.stress.force_reclaims", tiny_truth.force_reclaims, 2,
           failures);
  // Everything was drained and released: the gauges must read empty.
  check_eq("shm.slabs_in_use.final",
           static_cast<std::uint64_t>(
               reg.gauge("acex.shm.slabs_in_use").value()),
           ring_truth.slabs_in_use + tiny_truth.slabs_in_use, failures);

  std::printf(
      "acexstat --shm: %zu subscribers x %zu blocks (%zu KiB), %zu workers\n"
      "  staged %llu frames (%llu bytes) once each, %llu zero-copy "
      "deliveries, 0 copy fallbacks\n"
      "  stress ring: %llu force-reclaims, %llu stale releases, %llu stale "
      "descriptors, all typed and counted\n",
      opt.shm_subs, opt.blocks, opt.block_kib,
      opt.workers,
      static_cast<unsigned long long>(bus_truth.staged),
      static_cast<unsigned long long>(bus_truth.staged_bytes),
      static_cast<unsigned long long>(
          static_cast<std::uint64_t>(opt.shm_subs) * opt.blocks),
      static_cast<unsigned long long>(tiny_truth.force_reclaims),
      static_cast<unsigned long long>(tiny_truth.stale_releases),
      static_cast<unsigned long long>(stale_descriptors));
  if (failures != 0) {
    std::fprintf(stderr, "acexstat: %d shm consistency check(s) FAILED\n",
                 failures);
    return 1;
  }
  std::printf("  shm obs series match ground truth on every series, frames "
              "byte-identical to the capture path\n");
  return 0;
}

// -------------------------------------------------- chaos battery mode
int run_chaos_stat(const Options& opt) {
  // Reset first so the session series are exactly this run's ground truth
  // (the harness's own mirror checks use deltas; here we can be absolute).
  obs::MetricsRegistry::global().reset_values();
  obs::BlockTracer::global().clear();

  qa::ChaosConfig config;
  config.sessions = opt.chaos_sessions;
  config.seed = opt.seed;
  const qa::ChaosReport report = qa::run_chaos(config);

  int failures = 0;
  for (const std::string& violation : report.violations) {
    std::fprintf(stderr, "acexstat: CHAOS VIOLATION %s\n", violation.c_str());
    ++failures;
  }

  auto& reg = obs::MetricsRegistry::global();
  check_eq("session.resumes", reg.counter("acex.session.resumes").value(),
           report.resumes, failures);
  check_eq("session.restarts", reg.counter("acex.session.restarts").value(),
           report.restarts, failures);
  check_eq("session.expired", reg.counter("acex.session.expired").value(),
           report.expired, failures);
  check_eq("session.heartbeats", reg.counter("acex.session.heartbeats").value(),
           report.heartbeats, failures);
  // Every session ends the run attached: live gauge full, parked empty,
  // and the budget ladder back at its normal stage.
  check_eq("session.live",
           static_cast<std::uint64_t>(reg.gauge("acex.session.live").value()),
           opt.chaos_sessions, failures);
  check_eq("session.parked",
           static_cast<std::uint64_t>(reg.gauge("acex.session.parked").value()),
           0, failures);
  check_eq("budget.stage",
           static_cast<std::uint64_t>(reg.gauge("acex.budget.stage").value()),
           0, failures);

  std::printf(
      "acexstat --chaos: %zu sessions, seed %llu, %zu rounds, %llu blocks\n"
      "  kills %llu, resumes %llu, restarts %llu, expired %llu, "
      "delivered %llu\n",
      opt.chaos_sessions, static_cast<unsigned long long>(opt.seed),
      report.rounds, static_cast<unsigned long long>(report.published),
      static_cast<unsigned long long>(report.kills),
      static_cast<unsigned long long>(report.resumes),
      static_cast<unsigned long long>(report.restarts),
      static_cast<unsigned long long>(report.expired),
      static_cast<unsigned long long>(report.delivered));
  if (failures != 0) {
    std::fprintf(stderr, "acexstat: %d chaos consistency check(s) FAILED\n",
                 failures);
    return 1;
  }
  std::printf("  session obs series match ground truth, every session "
              "resumed byte-exact\n");
  return 0;
}

int run(const Options& opt) {
  // Scope every series to this run (the instruments themselves are
  // process-wide and permanent; only the values reset).
  obs::MetricsRegistry::global().reset_values();
  obs::BlockTracer::global().clear();

  VirtualClock clock;
  netsim::SimLink forward(flat_link(5e6), opt.seed);
  netsim::SimLink reverse(flat_link(1e9), opt.seed + 1);
  transport::SimDuplex duplex(forward, reverse, clock);

  transport::FaultConfig faults;
  faults.bit_flip_prob = 0.02;
  faults.drop_prob = 0.01;
  faults.duplicate_prob = 0.01;
  faults.reorder_prob = 0.02;
  faults.seed = opt.seed;
  transport::FaultInjectingTransport lossy(duplex.a(), faults);

  adaptive::AdaptiveConfig config;
  config.async_sampling = false;  // deterministic
  config.decision.block_size = opt.block_kib * 1024;
  config.decision.sample_size = std::min<std::size_t>(1024, opt.block_kib * 1024);
  config.worker_threads = opt.workers;
  config.retransmit_capacity = opt.blocks + 8;  // keep every frame replayable
  config.retransmit_max_retries = 4;
  engine::ParallelSender sender(lossy, config);
  adaptive::AdaptiveReceiver rx(duplex.b(),
                                {adaptive::RecoveryPolicy::kNack, 4});

  const Bytes data =
      make_payload(opt.blocks, config.decision.block_size, opt.seed);
  const adaptive::StreamReport stream = sender.send_all(data);
  lossy.flush();

  std::map<std::uint64_t, Bytes> recovered;
  const auto absorb = [&](const adaptive::ReceiveReport& report) {
    for (const adaptive::FrameOutcome& f : report.frames) {
      if (f.status == adaptive::FrameOutcome::Status::kOk) {
        recovered.emplace(f.sequence, f.data);
      }
    }
  };
  absorb(rx.receive_report());

  std::uint64_t nacks_issued = 0;
  for (int round = 0; round < 16; ++round) {
    const std::vector<std::uint64_t> nacks = rx.take_nacks();
    if (nacks.empty()) break;
    nacks_issued += nacks.size();
    sender.sender().retransmit(nacks);
    lossy.flush();
    absorb(rx.receive_report());
  }

  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::global().snapshot();
  const std::vector<obs::SpanEvent> spans = obs::BlockTracer::global().snapshot();

  // ------------------------------------------------ consistency checks
  int failures = 0;
  const transport::FaultCounters& c = lossy.counters();
  check_eq("fault.messages",
           counter_value(snapshot, "acex.transport.fault.messages"),
           c.messages, failures);
  check_eq("fault.drops", counter_value(snapshot, "acex.transport.fault.drops"),
           c.drops, failures);
  check_eq("fault.reorders",
           counter_value(snapshot, "acex.transport.fault.reorders"), c.reorders,
           failures);
  check_eq("fault.duplicates",
           counter_value(snapshot, "acex.transport.fault.duplicates"),
           c.duplicates, failures);
  check_eq("fault.bit_flips",
           counter_value(snapshot, "acex.transport.fault.bit_flips"),
           c.bit_flips, failures);
  check_eq("fault.truncations",
           counter_value(snapshot, "acex.transport.fault.truncations"),
           c.truncations, failures);
  check_eq("fault.clean", counter_value(snapshot, "acex.transport.fault.clean"),
           c.clean, failures);
  check_eq("rx.nacks_issued",
           counter_value(snapshot, "acex.adaptive.rx.nacks_issued"),
           nacks_issued, failures);
  check_eq("tx.retransmits",
           counter_value(snapshot, "acex.adaptive.retransmits"),
           sender.sender().degradation().retransmits, failures);
  check_eq("blocks", counter_value(snapshot, "acex.adaptive.blocks"),
           stream.blocks.size(), failures);

  for (const obs::MetricPoint& point : snapshot.points) {
    if (point.kind != obs::MetricPoint::Kind::kHistogram) continue;
    if (point.hist.count == 0) continue;
    if (!(point.hist.p50() <= point.hist.p99())) {
      std::fprintf(stderr, "acexstat: INSANE QUANTILES %s: p50=%g > p99=%g\n",
                   point.full_name().c_str(), point.hist.p50(),
                   point.hist.p99());
      ++failures;
    }
  }

  // ------------------------------------------------------------ output
  std::printf("acexstat: %zu blocks x %zu KiB, %zu workers, seed %llu\n",
              opt.blocks, opt.block_kib, sender.worker_count(),
              static_cast<unsigned long long>(opt.seed));
  std::printf("recovered %zu/%zu blocks, %llu NACKs issued\n\n",
              recovered.size(), stream.blocks.size(),
              static_cast<unsigned long long>(nacks_issued));
  std::fputs(obs::to_text(snapshot).c_str(), stdout);

  // Per-stage span digest: the block lifecycle at a glance.
  std::map<obs::Stage, std::pair<std::uint64_t, double>> stages;
  for (const obs::SpanEvent& span : spans) {
    auto& [count, total] = stages[span.stage];
    ++count;
    total += span.duration_us();
  }
  std::printf("\nspans (%llu recorded, %llu dropped by ring wrap)\n",
              static_cast<unsigned long long>(obs::BlockTracer::global().recorded()),
              static_cast<unsigned long long>(obs::BlockTracer::global().dropped()));
  for (const auto& [stage, acc] : stages) {
    std::printf("  %-10s %8llu spans  mean %10.1f us\n",
                std::string(obs::stage_name(stage)).c_str(),
                static_cast<unsigned long long>(acc.first),
                acc.first ? acc.second / static_cast<double>(acc.first) : 0.0);
  }

  if (opt.dump_spans) {
    std::fputs("\n", stdout);
    std::fputs(obs::to_json_lines(spans).c_str(), stdout);
  }
  if (!opt.json_path.empty()) {
    write_output(opt.json_path,
                 obs::to_json_lines(snapshot) + obs::to_json_lines(spans));
  }
  if (!opt.prom_path.empty()) {
    write_output(opt.prom_path, obs::to_prometheus(snapshot));
  }

  if (failures != 0) {
    std::fprintf(stderr, "acexstat: %d consistency check(s) FAILED\n",
                 failures);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw ConfigError(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "-w") {
        opt.workers = std::stoul(next());
      } else if (arg == "--broker") {
        opt.broker_subs = std::stoul(next());
        if (opt.broker_subs == 0) throw ConfigError("--broker must be > 0");
      } else if (arg == "--chaos") {
        opt.chaos_sessions = std::stoul(next());
        if (opt.chaos_sessions == 0) throw ConfigError("--chaos must be > 0");
      } else if (arg == "--shm") {
        opt.shm_subs = std::stoul(next());
        if (opt.shm_subs == 0) throw ConfigError("--shm must be > 0");
      } else if (arg == "-n") {
        opt.blocks = std::stoul(next());
        if (opt.blocks == 0) throw ConfigError("-n must be > 0");
      } else if (arg == "-b") {
        opt.block_kib = std::stoul(next());
        if (opt.block_kib == 0) throw ConfigError("-b must be > 0");
      } else if (arg == "-s") {
        opt.seed = std::stoull(next());
      } else if (arg == "--json") {
        opt.json_path = next();
      } else if (arg == "--prom") {
        opt.prom_path = next();
      } else if (arg == "--spans") {
        opt.dump_spans = true;
      } else {
        return usage();
      }
    }
    if (opt.chaos_sessions > 0) return run_chaos_stat(opt);
    if (opt.shm_subs > 0) return run_shm_demo(opt);
    return opt.broker_subs > 0 ? run_broker_demo(opt) : run(opt);
  } catch (const acex::Error& e) {
    std::fprintf(stderr, "acexstat: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "acexstat: internal error: %s\n", e.what());
    return 1;
  }
}
