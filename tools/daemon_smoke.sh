#!/usr/bin/env bash
# Daemon integration smoke (DESIGN.md §13): start acexd on an ephemeral
# port, attach SUBS loopback acexctl subscribers with heterogeneous
# negotiated parameters, kill one mid-stream and resume it, and demand
# that every subscriber verifies every demo block byte-identically and
# the daemon shuts down clean.
#
# Environment / arguments:
#   ACEXD, ACEXCTL  paths to the binaries (required)
#   SUBS            subscriber count          (default 64)
#   BLOCKS          demo blocks to publish    (default 40)
#   BLOCK_SIZE      bytes per demo block      (default 8192)
#   SEED            demo stream seed          (default 7)
set -euo pipefail

ACEXD=${ACEXD:?path to acexd binary}
ACEXCTL=${ACEXCTL:?path to acexctl binary}
SUBS=${SUBS:-64}
BLOCKS=${BLOCKS:-40}
BLOCK_SIZE=${BLOCK_SIZE:-8192}
SEED=${SEED:-7}

d=$(mktemp -d)
DPID=
cleanup() {
  [ -n "$DPID" ] && kill "$DPID" 2> /dev/null || true
  rm -rf "$d"
}
trap cleanup EXIT

# Publishing is gated on --wait-subs so no subscriber misses block 0; the
# long linger keeps the daemon serving until we SIGTERM it ourselves once
# every subscriber has verified its stream.
"$ACEXD" --port 0 --port-file "$d/port" --blocks "$BLOCKS" \
  --block-size "$BLOCK_SIZE" --interval-ms 2 --seed "$SEED" \
  --wait-subs "$SUBS" --wait-timeout-ms 60000 --linger-ms 120000 \
  > "$d/acexd.log" 2>&1 &
DPID=$!

for _ in $(seq 1 200); do
  [ -s "$d/port" ] && break
  sleep 0.05
done
[ -s "$d/port" ] || { echo "FAIL: acexd never wrote its port file"; exit 1; }
PORT=$(cat "$d/port")

methods=(huffman lempel-ziv burrows-wheeler none lzw arithmetic)
pids=()
for i in $(seq 1 "$SUBS"); do
  m=${methods[$((i % 6))]}
  bs=$((4096 * ((i % 4) + 1)))
  if [ "$i" -eq 1 ]; then
    # The designated victim: abrupt kill after 5 verified blocks, then a
    # token-authenticated resume — the stream must close the gap with no
    # duplicate and no hole.
    "$ACEXCTL" sub --port "$PORT" --name "smoke-$i" --methods "$m,none" \
      --block-size "$bs" --expect-blocks "$BLOCKS" --seed "$SEED" --verify \
      --kill-after 5 --resume --timeout-ms 120000 \
      > "$d/sub-$i.log" 2>&1 &
  else
    "$ACEXCTL" sub --port "$PORT" --name "smoke-$i" --methods "$m,none" \
      --block-size "$bs" --expect-blocks "$BLOCKS" --seed "$SEED" --verify \
      --timeout-ms 120000 > "$d/sub-$i.log" 2>&1 &
  fi
  pids+=($!)
done

fails=0
for idx in "${!pids[@]}"; do
  n=$((idx + 1))
  if ! wait "${pids[$idx]}"; then
    echo "FAIL: subscriber $n:"
    cat "$d/sub-$n.log"
    fails=$((fails + 1))
  fi
done

kill -TERM "$DPID"
if ! wait "$DPID"; then
  echo "FAIL: acexd exited nonzero:"
  cat "$d/acexd.log"
  exit 1
fi
DPID=

grep -q "clean shutdown" "$d/acexd.log" ||
  { echo "FAIL: no clean shutdown line"; cat "$d/acexd.log"; exit 1; }
grep -q "resumed (replayed=" "$d/sub-1.log" ||
  { echo "FAIL: victim never resumed"; cat "$d/sub-1.log"; exit 1; }
[ "$fails" -eq 0 ] || exit 1

echo "daemon smoke: $SUBS subscribers x $BLOCKS blocks verified," \
     "kill/resume byte-identical, clean shutdown"
