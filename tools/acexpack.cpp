// acexpack — file compression CLI over the acex codecs and frame format.
//
//   acexpack c [-m METHOD] [-b BLOCK_KIB] INPUT OUTPUT   compress
//   acexpack d INPUT OUTPUT                              decompress
//   acexpack bench INPUT                                 measure all methods
//
// METHOD: none | huffman | arithmetic | lempel-ziv | burrows-wheeler |
//         auto (default: per-block sampling-based choice, as §2.5 does
//         without a network: repetitive blocks go to LZ, others to
//         Huffman) | best (try every method per block, keep the smallest).
//
// Container format: "ACXP" magic, version byte, then length-prefixed acex
// frames (each frame is self-describing and CRC-checked).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "adaptive/sampler.hpp"
#include "compress/frame.hpp"
#include "compress/metrics.hpp"
#include "compress/registry.hpp"
#include "util/error.hpp"
#include "util/varint.hpp"

namespace {

using namespace acex;

constexpr char kMagic[4] = {'A', 'C', 'X', 'P'};
constexpr std::uint8_t kVersion = 1;

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open " + path);
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  in.seekg(0, std::ios::beg);
  Bytes data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (!in) throw IoError("failed reading " + path);
  return data;
}

void write_file(const std::string& path, ByteView data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot create " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw IoError("failed writing " + path);
}

/// §2.5 without a network: pick by the 4 KiB sample's compressibility.
MethodId choose_auto(const adaptive::Sampler& sampler, ByteView block) {
  const auto s = sampler.sample(block);
  if (s.ratio_percent < 48.78) return MethodId::kLempelZiv;
  if (s.ratio_percent < 95.0) return MethodId::kHuffman;
  return MethodId::kNone;
}

int cmd_compress(const std::string& method_arg, std::size_t block_size,
                 const std::string& input, const std::string& output) {
  const Bytes data = read_file(input);
  const CodecRegistry registry = CodecRegistry::with_builtins();
  const adaptive::Sampler sampler(4096);

  const bool auto_mode = method_arg == "auto";
  const bool best_mode = method_arg == "best";
  CodecPtr fixed;
  if (!auto_mode && !best_mode) fixed = make_codec(method_from_name(method_arg));

  Bytes out;
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(kVersion);

  std::size_t counts[256] = {};
  for (std::size_t off = 0; off < data.size() || off == 0; off += block_size) {
    if (off >= data.size() && off != 0) break;
    const std::size_t len =
        std::min(block_size, data.size() - std::min(off, data.size()));
    const ByteView block = ByteView(data).subspan(off, len);

    Bytes framed;
    if (best_mode) {
      for (const MethodId m :
           {MethodId::kNone, MethodId::kHuffman, MethodId::kLempelZiv,
            MethodId::kBurrowsWheeler}) {
        CodecPtr codec = make_codec(m);
        Bytes candidate = frame_compress(*codec, block);
        if (framed.empty() || candidate.size() < framed.size()) {
          framed = std::move(candidate);
        }
      }
    } else if (auto_mode) {
      CodecPtr codec = make_codec(choose_auto(sampler, block));
      framed = frame_compress(*codec, block);
    } else {
      framed = frame_compress(*fixed, block);
    }
    ++counts[static_cast<std::uint8_t>(frame_parse(framed).method)];
    put_varint(out, framed.size());
    out.insert(out.end(), framed.begin(), framed.end());
    if (data.empty()) break;
  }

  write_file(output, out);
  std::printf("%s: %zu -> %zu bytes (%.1f %%)\n", output.c_str(), data.size(),
              out.size(),
              data.empty() ? 100.0
                           : 100.0 * static_cast<double>(out.size()) /
                                 static_cast<double>(data.size()));
  for (int m = 0; m < 256; ++m) {
    if (counts[m] != 0) {
      std::printf("  %-16s %zu block(s)\n",
                  std::string(method_name(static_cast<MethodId>(m))).c_str(),
                  counts[m]);
    }
  }
  return 0;
}

int cmd_decompress(const std::string& input, const std::string& output) {
  const Bytes packed = read_file(input);
  if (packed.size() < 5 || std::memcmp(packed.data(), kMagic, 4) != 0) {
    throw DecodeError("not an acexpack container");
  }
  if (packed[4] != kVersion) throw DecodeError("unsupported container version");

  const CodecRegistry registry = CodecRegistry::with_builtins();
  Bytes out;
  std::size_t pos = 5;
  std::size_t frames = 0;
  while (pos < packed.size()) {
    const std::uint64_t frame_size = get_varint(packed, &pos);
    if (pos + frame_size > packed.size()) {
      throw DecodeError("truncated container frame");
    }
    const Bytes block =
        frame_decompress(ByteView(packed).subspan(pos, frame_size), registry);
    out.insert(out.end(), block.begin(), block.end());
    pos += frame_size;
    ++frames;
  }
  write_file(output, out);
  std::printf("%s: %zu frames -> %zu bytes\n", output.c_str(), frames,
              out.size());
  return 0;
}

int cmd_bench(const std::string& input) {
  const Bytes data = read_file(input);
  MonotonicClock clock;
  std::printf("%-16s  %12s  %8s  %12s  %12s\n", "method", "bytes", "ratio",
              "comp MB/s", "decomp MB/s");
  for (const MethodId m : paper_methods()) {
    CodecPtr codec = make_codec(m);
    const auto r = measure_codec(*codec, data, clock);
    std::printf("%-16s  %12zu  %7.2f%%  %12.2f  %12.2f\n",
                std::string(method_name(m)).c_str(), r.compressed_size,
                r.ratio_percent(),
                static_cast<double>(data.size()) / r.compress_time / 1e6,
                static_cast<double>(data.size()) / r.decompress_time / 1e6);
  }
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  acexpack c [-m METHOD] [-b BLOCK_KIB] INPUT OUTPUT\n"
      "  acexpack d INPUT OUTPUT\n"
      "  acexpack bench INPUT\n"
      "METHOD: none huffman arithmetic lempel-ziv burrows-wheeler auto "
      "best\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty()) return usage();
    const std::string& cmd = args[0];

    if (cmd == "c") {
      std::string method = "auto";
      std::size_t block_kib = 128;
      std::size_t i = 1;
      while (i + 1 < args.size() && args[i].size() == 2 && args[i][0] == '-') {
        if (args[i] == "-m") {
          method = args[i + 1];
        } else if (args[i] == "-b") {
          block_kib = static_cast<std::size_t>(std::stoul(args[i + 1]));
          if (block_kib == 0) throw ConfigError("block size must be > 0");
        } else {
          return usage();
        }
        i += 2;
      }
      if (args.size() - i != 2) return usage();
      return cmd_compress(method, block_kib * 1024, args[i], args[i + 1]);
    }
    if (cmd == "d") {
      if (args.size() != 3) return usage();
      return cmd_decompress(args[1], args[2]);
    }
    if (cmd == "bench") {
      if (args.size() != 2) return usage();
      return cmd_bench(args[1]);
    }
    return usage();
  } catch (const acex::Error& e) {
    std::fprintf(stderr, "acexpack: %s\n", e.what());
    return 1;
  }
}
