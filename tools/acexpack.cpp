// acexpack — file compression CLI over the acex codecs and frame format.
//
//   acexpack c [-m METHOD] [-b BLOCK_KIB] [-j JOBS] [--stats] INPUT OUTPUT
//   acexpack d INPUT OUTPUT                                        decompress
//   acexpack bench INPUT                                           measure all
//
// --stats prints the process metrics registry (per-method block timings,
// worker-pool gauges) after the run — the same snapshot acexstat renders.
//
// METHOD: none | huffman | arithmetic | lempel-ziv | burrows-wheeler |
//         lzw | colpipe (per-column composable pipelines over a PBIO block;
//         non-PBIO input falls back to a planned opaque pipeline) | auto
//         (default: per-block sampling-based choice, as §2.5 does without a
//         network: repetitive blocks go to LZ, others to Huffman) | best
//         (try every method per block, keep the smallest).
//
// -j JOBS compresses blocks on a worker pool (0 = one worker per hardware
// thread).  Method selection stays on the driver thread; the container is
// byte-identical to a serial run because frames are emitted in block order.
//
// Container format: "ACXP" magic, version byte, then length-prefixed acex
// frames (each frame is self-describing and CRC-checked).

#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "adaptive/sampler.hpp"
#include "colpipe/columnar_codec.hpp"
#include "compress/frame.hpp"
#include "compress/metrics.hpp"
#include "compress/registry.hpp"
#include "engine/block_pipeline.hpp"
#include "engine/thread_pool.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/varint.hpp"

namespace {

using namespace acex;

constexpr char kMagic[4] = {'A', 'C', 'X', 'P'};
constexpr std::uint8_t kVersion = 1;

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open " + path);
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  in.seekg(0, std::ios::beg);
  Bytes data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (!in) throw IoError("failed reading " + path);
  return data;
}

void write_file(const std::string& path, ByteView data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot create " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw IoError("failed writing " + path);
}

/// Builtins plus the application-registered columnar pipeline codec —
/// acexpack is both ends of the exchange, so it opts in on both sides and
/// freezes before any worker touches the registry.
CodecRegistry pack_registry() {
  CodecRegistry registry = CodecRegistry::with_builtins();
  colpipe::register_columnar(registry);
  registry.freeze();
  return registry;
}

/// §2.5 without a network: pick by the 4 KiB sample's compressibility.
MethodId choose_auto(const adaptive::Sampler& sampler, ByteView block) {
  const auto s = sampler.sample(block);
  if (s.ratio_percent < 48.78) return MethodId::kLempelZiv;
  if (s.ratio_percent < 95.0) return MethodId::kHuffman;
  return MethodId::kNone;
}

Bytes pack_block_inner(const CodecRegistry& registry, ByteView block,
                       MethodId method, bool best) {
  if (!best) return frame_compress(*registry.create(method), block);
  Bytes framed;
  for (const MethodId m :
       {MethodId::kNone, MethodId::kHuffman, MethodId::kLempelZiv,
        MethodId::kBurrowsWheeler}) {
    Bytes candidate = frame_compress(*registry.create(m), block);
    if (framed.empty() || candidate.size() < framed.size()) {
      framed = std::move(candidate);
    }
  }
  return framed;
}

/// One block framed with METHOD, or with whichever method packs smallest
/// when `best` is set.  Runs on worker threads: the obs instruments it
/// feeds are lock-free and process-wide (--stats renders them), and the
/// registry is frozen before the pool starts.
Bytes pack_block(const CodecRegistry& registry, ByteView block,
                 MethodId method, bool best) {
  MonotonicClock clock;
  const Stopwatch sw(clock);
  Bytes framed = pack_block_inner(registry, block, method, best);
  obs::MetricsRegistry::global()
      .histogram("acex.pack.block_us", "method",
                 best ? "best" : method_name(method))
      .record(sw.elapsed() * 1e6);
  return framed;
}

/// Worker jobs must not throw; carry codec failures back to the driver.
struct PackResult {
  Bytes framed;
  std::exception_ptr failure;
};

int cmd_compress(const std::string& method_arg, std::size_t block_size,
                 std::size_t jobs, bool stats, const std::string& input,
                 const std::string& output) {
  const Bytes data = read_file(input);
  const adaptive::Sampler sampler(4096);
  const CodecRegistry registry = pack_registry();

  const bool auto_mode = method_arg == "auto";
  const bool best_mode = method_arg == "best";
  MethodId fixed_method = MethodId::kNone;
  if (!auto_mode && !best_mode) fixed_method = method_from_name(method_arg);

  // Carve the input into block views (one empty block for an empty file).
  std::vector<ByteView> blocks;
  for (std::size_t off = 0; off < data.size() || off == 0; off += block_size) {
    blocks.push_back(ByteView(data).subspan(
        off, std::min(block_size, data.size() - std::min(off, data.size()))));
    if (data.empty()) break;
  }

  Bytes out;
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(kVersion);

  std::size_t counts[256] = {};
  const auto emit = [&](PackResult result) {
    if (result.failure) std::rethrow_exception(result.failure);
    ++counts[static_cast<std::uint8_t>(frame_parse(result.framed).method)];
    put_varint(out, result.framed.size());
    out.insert(out.end(), result.framed.begin(), result.framed.end());
  };
  const auto job_for = [&](ByteView block) {
    // Selection happens here, on the driver; workers only encode.
    const MethodId method =
        auto_mode ? choose_auto(sampler, block) : fixed_method;
    return [&registry, block, method, best_mode] {
      PackResult result;
      try {
        result.framed = pack_block(registry, block, method, best_mode);
      } catch (...) {
        result.failure = std::current_exception();
      }
      return result;
    };
  };

  const std::size_t workers = engine::resolve_worker_threads(jobs);
  if (workers <= 1) {
    for (const ByteView block : blocks) emit(job_for(block)());
  } else {
    engine::ThreadPool pool(workers);
    engine::ParallelBlockPipeline<PackResult> pipeline(pool, 2 * workers);
    for (const ByteView block : blocks) {
      while (pipeline.in_flight() >= pipeline.window_capacity()) {
        emit(pipeline.collect());
      }
      pipeline.submit(job_for(block));
      PackResult ready;
      while (pipeline.try_collect(ready)) emit(std::move(ready));
    }
    while (pipeline.in_flight() > 0) emit(pipeline.collect());
  }

  write_file(output, out);
  std::printf("%s: %zu -> %zu bytes (%.1f %%)\n", output.c_str(), data.size(),
              out.size(),
              data.empty() ? 100.0
                           : 100.0 * static_cast<double>(out.size()) /
                                 static_cast<double>(data.size()));
  for (int m = 0; m < 256; ++m) {
    if (counts[m] != 0) {
      std::printf("  %-16s %zu block(s)\n",
                  std::string(method_name(static_cast<MethodId>(m))).c_str(),
                  counts[m]);
    }
  }
  if (stats) {
    std::printf("\n");
    std::fputs(obs::to_text(obs::MetricsRegistry::global().snapshot()).c_str(),
               stdout);
  }
  return 0;
}

int cmd_decompress(const std::string& input, const std::string& output) {
  const Bytes packed = read_file(input);
  if (packed.size() < 5 || std::memcmp(packed.data(), kMagic, 4) != 0) {
    throw DecodeError("not an acexpack container");
  }
  if (packed[4] != kVersion) throw DecodeError("unsupported container version");

  const CodecRegistry registry = pack_registry();
  Bytes out;
  std::size_t pos = 5;
  std::size_t frames = 0;
  while (pos < packed.size()) {
    const std::uint64_t frame_size = get_varint(packed, &pos);
    if (pos + frame_size > packed.size()) {
      throw DecodeError("truncated container frame");
    }
    const Bytes block =
        frame_decompress(ByteView(packed).subspan(pos, frame_size), registry);
    out.insert(out.end(), block.begin(), block.end());
    pos += frame_size;
    ++frames;
  }
  write_file(output, out);
  std::printf("%s: %zu frames -> %zu bytes\n", output.c_str(), frames,
              out.size());
  return 0;
}

int cmd_bench(const std::string& input) {
  const Bytes data = read_file(input);
  MonotonicClock clock;
  std::printf("%-16s  %12s  %8s  %12s  %12s\n", "method", "bytes", "ratio",
              "comp MB/s", "decomp MB/s");
  for (const MethodId m : paper_methods()) {
    CodecPtr codec = make_codec(m);
    const auto r = measure_codec(*codec, data, clock);
    std::printf("%-16s  %12zu  %7.2f%%  %12.2f  %12.2f\n",
                std::string(method_name(m)).c_str(), r.compressed_size,
                r.ratio_percent(),
                static_cast<double>(data.size()) / r.compress_time / 1e6,
                static_cast<double>(data.size()) / r.decompress_time / 1e6);
  }
  return 0;
}

constexpr const char* kValidMethods =
    "none huffman arithmetic lempel-ziv burrows-wheeler lzw colpipe auto best";

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  acexpack c [-m|--method METHOD] [-b BLOCK_KIB] [-j JOBS] [--stats] "
      "INPUT OUTPUT\n"
      "  acexpack d INPUT OUTPUT\n"
      "  acexpack bench INPUT\n"
      "METHOD: %s\n"
      "JOBS: worker threads for block compression (0 = all hardware "
      "threads)\n"
      "--stats: print the metrics-registry snapshot after compressing\n",
      kValidMethods);
  return 2;
}

/// std::stoul without the raw std::invalid_argument / out_of_range escape.
std::size_t parse_count(const std::string& text, const char* what) {
  try {
    std::size_t end = 0;
    const unsigned long value = std::stoul(text, &end);
    if (end != text.size()) throw ConfigError("");
    return static_cast<std::size_t>(value);
  } catch (const std::exception&) {
    throw ConfigError(std::string(what) + " must be a non-negative integer, " +
                      "got '" + text + "'");
  }
}

bool method_arg_valid(const std::string& name) {
  if (name == "auto" || name == "best") return true;
  try {
    method_from_name(name);
    return true;
  } catch (const Error&) {
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty()) return usage();
    const std::string& cmd = args[0];

    if (cmd == "c") {
      std::string method = "auto";
      std::size_t block_kib = 128;
      std::size_t jobs = 1;
      bool stats = false;
      std::size_t i = 1;
      while (i < args.size() && args[i].size() >= 2 && args[i][0] == '-') {
        if (args[i] == "--stats") {
          stats = true;
          i += 1;
          continue;
        }
        if (i + 1 >= args.size()) return usage();
        if (args[i] == "-m" || args[i] == "--method") {
          method = args[i + 1];
        } else if (args[i] == "-b") {
          block_kib = parse_count(args[i + 1], "block size");
          if (block_kib == 0) throw ConfigError("block size must be > 0");
        } else if (args[i] == "-j" || args[i] == "--jobs") {
          jobs = parse_count(args[i + 1], "jobs");
        } else {
          return usage();
        }
        i += 2;
      }
      if (args.size() - i != 2) return usage();
      if (!method_arg_valid(method)) {
        std::fprintf(stderr, "acexpack: unknown method '%s' (valid: %s)\n",
                     method.c_str(), kValidMethods);
        return 2;
      }
      return cmd_compress(method, block_kib * 1024, jobs, stats, args[i],
                          args[i + 1]);
    }
    if (cmd == "d") {
      if (args.size() != 3) return usage();
      return cmd_decompress(args[1], args[2]);
    }
    if (cmd == "bench") {
      if (args.size() != 2) return usage();
      return cmd_bench(args[1]);
    }
    return usage();
  } catch (const acex::Error& e) {
    std::fprintf(stderr, "acexpack: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "acexpack: internal error: %s\n", e.what());
    return 1;
  }
}
