// Quickstart: the acex public API in five minutes.
//
//   1. compress bytes with any of the paper's codecs;
//   2. wrap payloads in self-describing frames (CRC-checked, method-tagged);
//   3. let the §2.5 selection algorithm pick methods per block, adaptively,
//      while streaming over an emulated network link.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "adaptive/pipeline.hpp"
#include "compress/frame.hpp"
#include "compress/registry.hpp"
#include "netsim/link.hpp"
#include "transport/sim_transport.hpp"
#include "workloads/transactions.hpp"

int main() {
  using namespace acex;

  // ----- 1. plain codecs -------------------------------------------------
  workloads::TransactionGenerator gen(1);
  const Bytes data = gen.text_block(256 * 1024);

  std::printf("codecs on %zu bytes of transaction text:\n", data.size());
  for (const MethodId id : paper_methods()) {
    CodecPtr codec = make_codec(id);
    const Bytes packed = codec->compress(data);
    const Bytes restored = codec->decompress(packed);
    std::printf("  %-16s -> %6zu bytes (%5.1f %%)  lossless=%s\n",
                std::string(method_name(id)).c_str(), packed.size(),
                100.0 * static_cast<double>(packed.size()) /
                    static_cast<double>(data.size()),
                restored == data ? "yes" : "NO");
  }

  // ----- 2. frames -------------------------------------------------------
  // A frame names its codec and carries a CRC of the original bytes, so a
  // receiver needs nothing but the registry to decode it.
  const CodecRegistry registry = CodecRegistry::with_builtins();
  CodecPtr lz = make_codec(MethodId::kLempelZiv);
  const Bytes framed = frame_compress(*lz, data);
  const Bytes back = frame_decompress(framed, registry);
  std::printf("\nframed round-trip: %zu -> %zu -> %zu bytes, intact=%s\n",
              data.size(), framed.size(), back.size(),
              back == data ? "yes" : "NO");

  // ----- 3. adaptive streaming over an emulated link ----------------------
  // A virtual-clock 1 Mb/s link: slow enough that compression clearly pays.
  VirtualClock clock;
  netsim::SimLink forward(netsim::megabit_link(), /*seed=*/7);
  netsim::SimLink reverse(netsim::megabit_link(), /*seed=*/8);
  transport::SimDuplex wire(forward, reverse, clock);

  adaptive::AdaptiveConfig config;
  config.async_sampling = false;  // keep this demo deterministic
  config.on_cpu_time = [&clock](Seconds t) { clock.advance(t); };

  adaptive::AdaptiveSender sender(wire.a(), config);
  adaptive::AdaptiveReceiver receiver(wire.b());

  const Bytes stream_data = gen.text_block(1024 * 1024);
  const adaptive::StreamReport report = sender.send_all(stream_data);
  const Bytes received = receiver.receive_available();

  std::printf("\nadaptive stream over the 1 Mb link:\n");
  for (const auto& b : report.blocks) {
    std::printf("  block %zu: %-16s %6zu -> %6zu bytes\n", b.index,
                std::string(method_name(b.method)).c_str(), b.original_size,
                b.wire_size);
  }
  std::printf(
      "total %.2f virtual seconds (raw would need %.2f s); received "
      "intact=%s\n",
      report.total_seconds,
      static_cast<double>(stream_data.size()) /
          netsim::megabit_link().bandwidth_Bps,
      received == stream_data ? "yes" : "NO");
  return 0;
}
