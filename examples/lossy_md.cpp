// Application-specific lossy compression (§5): the molecular coordinates
// that defeat every lossless method (Fig. 6) compress well once the
// application declares how much precision it actually needs.
//
// A FloatQuantCodec registered at runtime under an application method id
// (the §3.2 "new compression methods can be deployed into systems at
// runtime" mechanism) carries coordinate frames over the emulated
// international link; we compare wire bytes and virtual transfer time
// against the best lossless method and report the worst-case coordinate
// error.
//
// Run: ./build/examples/lossy_md

#include <cmath>
#include <cstdio>
#include <cstring>

#include "compress/quant_codec.hpp"
#include "netsim/link.hpp"
#include "transport/sim_transport.hpp"
#include "workloads/molecular.hpp"

int main() {
  using namespace acex;

  workloads::MolecularConfig mconfig;
  mconfig.atom_count = 8192;
  workloads::MolecularGenerator simulation(mconfig);

  // Both ends agree on the application codec out of band (§3.2: the
  // consumer deploys the method it wants to receive).
  CodecRegistry registry = CodecRegistry::with_builtins();
  register_float_quant(registry, /*precision=*/1e-3);

  const CodecPtr lossy = registry.create(FloatQuantCodec::kId);
  const CodecPtr lossless = registry.create(MethodId::kLempelZiv);

  VirtualClock clock;
  netsim::SimLink atlantic(netsim::international_link(), 11);
  netsim::SimLink back(netsim::international_link(), 12);
  transport::SimDuplex wire(atlantic, back, clock);

  std::printf("streaming 10 coordinate frames (%zu atoms) across the "
              "international link\n\n",
              mconfig.atom_count);
  std::printf("%6s  %10s  %12s  %12s  %12s\n", "frame", "raw", "lossless",
              "lossy", "max err");

  std::size_t raw_total = 0, lossless_total = 0, lossy_total = 0;
  double worst_err = 0;
  for (int frame = 0; frame < 10; ++frame) {
    const Bytes coords = simulation.coordinates_bytes();
    simulation.step();

    const Bytes lossless_packed = lossless->compress(coords);
    const Bytes lossy_packed = lossy->compress(coords);
    wire.a().send(lossy_packed);  // ship the lossy frames for timing

    // Receiver decodes by the agreed method and checks fidelity.
    const Bytes arrived = *wire.b().receive();
    const Bytes restored = lossy->decompress(arrived);
    double max_err = 0;
    for (std::size_t i = 0; i + 4 <= coords.size(); i += 4) {
      float a, b;
      std::memcpy(&a, coords.data() + i, 4);
      std::memcpy(&b, restored.data() + i, 4);
      max_err = std::max(max_err, std::abs(static_cast<double>(a) -
                                           static_cast<double>(b)));
    }
    worst_err = std::max(worst_err, max_err);

    raw_total += coords.size();
    lossless_total += lossless_packed.size();
    lossy_total += lossy_packed.size();
    std::printf("%6d  %10zu  %12zu  %12zu  %12.2e\n", frame, coords.size(),
                lossless_packed.size(), lossy_packed.size(), max_err);
  }

  const double intl = netsim::international_link().bandwidth_Bps;
  std::printf("\ntotals: raw %zu B, lossless %zu B (%.0f %%), lossy %zu B "
              "(%.0f %%)\n",
              raw_total, lossless_total,
              100.0 * static_cast<double>(lossless_total) /
                  static_cast<double>(raw_total),
              lossy_total,
              100.0 * static_cast<double>(lossy_total) /
                  static_cast<double>(raw_total));
  std::printf("transfer at %.3f MB/s: raw %.0f s, lossless %.0f s, lossy "
              "%.0f s (measured %.0f s virtual)\n",
              intl / 1e6, static_cast<double>(raw_total) / intl,
              static_cast<double>(lossless_total) / intl,
              static_cast<double>(lossy_total) / intl, clock.now());
  std::printf("worst-case coordinate error: %.2e (precision grid 1e-3)\n",
              worst_err);
  return 0;
}
