// WAN collaboration: the paper's motivating scenario — a scientist in
// Atlanta streams molecular-dynamics snapshots to a collaborator behind
// the GaTech <-> Bar-Ilan international link (0.109 MB/s, 46 % jitter).
//
// The snapshots travel as PBIO records through an ECho-style event channel
// bridged over the emulated link. A producer-side SwitchableCompressor
// compresses every event; the consumer-side ConsumerController watches
// accept rates and steers the producer through the channel's control path
// — the full §3.2 adaptation loop, across a (virtual) ocean.
//
// Run: ./build/examples/wan_collab

#include <cstdio>

#include "adaptive/echo_integration.hpp"
#include "echo/bridge.hpp"
#include "echo/bus.hpp"
#include "netsim/link.hpp"
#include "pbio/pbio.hpp"
#include "transport/sim_transport.hpp"
#include "workloads/molecular.hpp"

int main() {
  using namespace acex;

  // --- the ocean ---------------------------------------------------------
  VirtualClock clock;
  netsim::SimLink atlantic(netsim::international_link(), 2026);
  netsim::SimLink back_channel(netsim::international_link(), 2027);
  transport::SimDuplex wire(atlantic, back_channel, clock);

  // --- Atlanta (producer) -------------------------------------------------
  echo::EventBus atlanta;
  const auto raw = atlanta.create_channel("md.snapshots");
  adaptive::SwitchableCompressor compressor(MethodId::kNone);
  const auto compressed = atlanta.derive_channel(
      raw, compressor.handler(), "md.snapshots.compressed");
  atlanta.channel(compressed).on_control(compressor.control_sink());
  echo::ChannelSender uplink(atlanta.channel(compressed), wire.a());

  // --- Ramat-Gan (consumer) ----------------------------------------------
  echo::EventBus ramat_gan;
  const auto inbound = ramat_gan.create_channel("md.snapshots.inbound");
  echo::ChannelReceiver downlink(ramat_gan.channel(inbound), wire.b());
  adaptive::ConsumerController controller(ramat_gan.channel(inbound), clock);
  // Control signals raised on the local inbound channel must travel back
  // across the bridge to reach the remote producer.
  ramat_gan.channel(inbound).on_control(
      [&downlink](const echo::AttributeMap& attrs) {
        downlink.signal_control(attrs);
      });

  const auto decompress = adaptive::make_decompression_handler();
  std::size_t atoms_seen = 0;
  std::size_t events_seen = 0;
  ramat_gan.channel(inbound).subscribe([&](const echo::Event& event) {
    const MethodId best = controller.observe(event);
    (void)best;  // the controller signals the producer on change
    const auto restored = decompress(event);
    const auto records = pbio::decode_stream(restored->payload);
    atoms_seen += records.size();
    ++events_seen;
  });

  // --- the collaboration --------------------------------------------------
  workloads::MolecularConfig mconfig;
  mconfig.atom_count = 2048;  // ~66 KB per snapshot
  workloads::MolecularGenerator simulation(mconfig);

  std::printf("streaming 30 snapshots of %zu atoms across the Atlantic...\n\n",
              mconfig.atom_count);
  MethodId last = MethodId::kNone;
  for (int step = 0; step < 30; ++step) {
    atlanta.channel(raw).submit(echo::Event(simulation.pbio_snapshot()));
    simulation.step();
    downlink.poll();        // deliver to the consumer
    uplink.pump_control();  // apply any method-change request

    if (compressor.method() != last || step == 0) {
      std::printf("  t=%7.2f s  snapshot %2d  producer now compresses "
                  "with: %s\n",
                  clock.now(), step,
                  std::string(method_name(compressor.method())).c_str());
      last = compressor.method();
    }
  }

  std::printf(
      "\ndelivered %zu events (%zu atom records) in %.1f virtual seconds\n",
      events_seen, atoms_seen, clock.now());
  std::printf("consumer switched the producer %llu time(s); final method: "
              "%s\n",
              static_cast<unsigned long long>(controller.switches()),
              std::string(method_name(compressor.method())).c_str());
  std::printf("bytes on the wire: %llu (raw would be ~%zu)\n",
              static_cast<unsigned long long>(wire.a().bytes_sent()),
              static_cast<std::size_t>(30) *
                  simulation.pbio_snapshot().size());
  return 0;
}
