// Operational information system feed: the paper's commercial workload
// ([2], an airline operations system) streamed over a corporate 100 Mb
// intranet whose load follows the MBone trace — the exact setting of
// Figs. 8-10, driven through the high-level experiment API.
//
// Watch the selector walk through its regimes as the load ramps:
// no compression -> Lempel-Ziv -> Burrows-Wheeler -> back.
//
// Run: ./build/examples/ois_feed

#include <cstdio>
#include <string>

#include "adaptive/experiment.hpp"
#include "adaptive/telemetry.hpp"
#include "echo/channel.hpp"
#include "netsim/load_trace.hpp"
#include "workloads/transactions.hpp"

int main() {
  using namespace acex;

  // 80 one-second blocks against a time-compressed MBone trace.
  workloads::TransactionGenerator gen(99);
  const Bytes feed = gen.text_block(80 * 128 * 1024);

  adaptive::ExperimentConfig config;
  config.link = netsim::fast_ethernet_link();
  config.link.share_per_connection = 0.014;
  config.background = netsim::mbone_trace().scaled(4.0).time_scaled(0.5);
  config.pace = 1.0;
  config.adaptive.async_sampling = false;
  config.adaptive.initial_bandwidth_Bps = config.link.bandwidth_Bps;
  config.adaptive.cpu_scale = adaptive::cpu_scale_for_lz_speed(
      feed, adaptive::kPaperLzReducingBps);

  std::printf("streaming the OIS feed (one 128 KiB block per second)...\n\n");
  const auto result = run_adaptive(feed, config);

  std::printf("%8s  %6s  %-16s  %10s  %s\n", "time(s)", "load", "method",
              "wire", "link pressure");
  for (const auto& b : result.stream.blocks) {
    const double load = config.background.value_at(b.submitted);
    const auto bars = static_cast<std::size_t>(load / 4);
    std::printf("%8.1f  %6.0f  %-16s  %10zu  %s\n", b.submitted, load,
                std::string(method_name(b.method)).c_str(), b.wire_size,
                std::string(bars, '#').c_str());
  }

  std::printf("\n%zu blocks, %.1f %% of raw bytes on the wire, verified=%s\n",
              result.stream.blocks.size(),
              result.stream.wire_ratio_percent(),
              result.verified ? "yes" : "NO");

  // Operations view: replay the run's measurements through the telemetry
  // channel (attribute-borne, bridgeable) into a dashboard aggregate.
  echo::EventChannel telemetry("ois.telemetry");
  adaptive::TelemetryAggregator dashboard;
  telemetry.subscribe(
      [&dashboard](const echo::Event& e) { dashboard.observe(e); });
  adaptive::TelemetryPublisher publisher(telemetry);
  for (const auto& b : result.stream.blocks) publisher.publish(b);
  publisher.publish_summary(result.stream);

  std::printf("telemetry dashboard: %llu blocks;",
              static_cast<unsigned long long>(dashboard.blocks()));
  for (const auto& [method, count] : dashboard.method_counts()) {
    std::printf("  %s=%llu", method.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("  (wire %.1f %%)\n", dashboard.wire_ratio_percent());
  return 0;
}
