// Multi-consumer fan-out (§3.1/§3.2): "event channel subscription is
// anonymous... event producers cannot take the responsibility of
// customizing event delivery for all or some subset of their consumers" —
// so each consumer DERIVES its own channel with the compression suited to
// its link, without touching the producer or each other.
//
// One OIS producer; three consumers:
//   ops-floor   — same intranet, gigabit: derives a pass-through channel;
//   hq-dash     — loaded 100 Mb office link: derives an LZ channel;
//   partner-wan — international link: derives a Burrows-Wheeler channel.
//
// Each consumer's DerivedChannelSwitcher can re-derive at any time; here
// the WAN consumer demotes itself to LZ mid-run when its deadline changes.
//
// Run: ./build/examples/multi_consumer

#include <cstdio>

#include "adaptive/echo_integration.hpp"
#include "echo/bus.hpp"
#include "netsim/link.hpp"
#include "workloads/transactions.hpp"

namespace {

using namespace acex;

struct Consumer {
  const char* name;
  netsim::LinkParams link;
  MethodId method;
  std::size_t wire_bytes = 0;
  std::size_t events = 0;
  Seconds wire_seconds = 0;
};

}  // namespace

int main() {
  using namespace acex;

  echo::EventBus bus;
  const auto source = bus.create_channel("ois.events");

  Consumer consumers[] = {
      {"ops-floor", netsim::gigabit_link(), MethodId::kNone},
      {"hq-dash", netsim::fast_ethernet_link(), MethodId::kLempelZiv},
      {"partner-wan", netsim::international_link(),
       MethodId::kBurrowsWheeler},
  };

  // Each consumer derives its own channel; the sinks just account for what
  // WOULD cross each consumer's link.
  std::vector<std::unique_ptr<adaptive::DerivedChannelSwitcher>> switchers;
  for (auto& c : consumers) {
    switchers.push_back(std::make_unique<adaptive::DerivedChannelSwitcher>(
        bus, source,
        [&c](const echo::Event& e) {
          c.wire_bytes += e.payload.size();
          c.wire_seconds += static_cast<double>(e.payload.size()) /
                            c.link.bandwidth_Bps;
          ++c.events;
        },
        c.method));
  }

  workloads::TransactionGenerator gen(42);
  std::size_t raw_bytes = 0;
  for (int i = 0; i < 40; ++i) {
    if (i == 20) {
      // The WAN consumer's interactive session ends; bulk fidelity matters
      // less than CPU, so it re-derives with the cheaper method. Nobody
      // else notices.
      switchers[2]->switch_method(MethodId::kLempelZiv);
      std::printf("  [t=%d] partner-wan re-derived its channel: %s -> %s\n",
                  i, "burrows-wheeler", "lempel-ziv");
    }
    const Bytes payload = gen.text_block(64 * 1024);
    raw_bytes += payload.size();
    bus.channel(source).submit(echo::Event(payload));
  }

  std::printf("\nproducer published %zu events, %zu bytes (knows nothing of "
              "its consumers)\n\n",
              static_cast<std::size_t>(40), raw_bytes);
  std::printf("%-12s  %-16s  %10s  %8s  %14s\n", "consumer", "final method",
              "wire bytes", "ratio", "est. wire time");
  for (std::size_t i = 0; i < std::size(consumers); ++i) {
    const auto& c = consumers[i];
    std::printf("%-12s  %-16s  %10zu  %7.1f%%  %12.2f s\n", c.name,
                std::string(method_name(switchers[i]->method())).c_str(),
                c.wire_bytes,
                100.0 * static_cast<double>(c.wire_bytes) /
                    static_cast<double>(raw_bytes),
                c.wire_seconds);
  }
  std::printf(
      "\nsource channel still has exactly %zu taps (one per derived "
      "channel);\nderivations and switches never re-engineered the "
      "producer.\n",
      bus.channel(source).subscriber_count());
  return 0;
}
