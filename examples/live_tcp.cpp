// Live TCP demo: the same adaptive pipeline on a real kernel network stack
// — no emulation, wall-clock time, loopback TCP. A sender thread streams
// transaction data through AdaptiveSender; the main thread receives,
// decodes each self-describing frame, and verifies the bytes.
//
// On loopback the measured accept rate is enormous, so the §2.5 algorithm
// should conclude compression is NOT worth it (the paper's intranet
// conclusion) — run it and see. Pass a target rate in MB/s to throttle the
// sender artificially and watch the decision flip:
//
//   ./build/examples/live_tcp            # loopback speed: expect "none"
//   ./build/examples/live_tcp 2          # a 2 MB/s path: expect LZ/BW
//   ./build/examples/live_tcp 2 pipelined  # + compress-ahead overlap

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "adaptive/pipeline.hpp"
#include "transport/rate_limit.hpp"
#include "transport/tcp_transport.hpp"
#include "workloads/transactions.hpp"

int main(int argc, char** argv) {
  using namespace acex;
  const double throttle_MBps = argc > 1 ? std::atof(argv[1]) : 0.0;
  const bool pipelined = argc > 2 && std::strcmp(argv[2], "pipelined") == 0;

  transport::TcpListener listener(0);
  std::printf("listening on 127.0.0.1:%u%s\n", listener.port(),
              throttle_MBps > 0 ? " (throttled)" : "");

  workloads::TransactionGenerator gen(5);
  const Bytes data = gen.text_block(4 * 1024 * 1024);

  std::thread sender_thread([&listener, &data, throttle_MBps, pipelined] {
    transport::TcpTransport raw = listener.accept();
    transport::RateLimitedTransport throttled(raw, throttle_MBps * 1e6 + 1);
    transport::Transport& wire =
        throttle_MBps > 0 ? static_cast<transport::Transport&>(throttled)
                          : raw;

    adaptive::AdaptiveConfig config;
    config.initial_bandwidth_Bps =
        throttle_MBps > 0 ? throttle_MBps * 1e6 : 100e6;
    adaptive::AdaptiveSender sender(wire, config);
    const auto report =
        pipelined ? sender.send_all_pipelined(data) : sender.send_all(data);

    std::printf("\nsender: %zu blocks in %.3f s wall%s\n",
                report.blocks.size(), report.total_seconds,
                pipelined ? " (compression overlapped)" : "");
    for (const auto& b : report.blocks) {
      if (b.index % 8 == 0 || b.index + 1 == report.blocks.size()) {
        std::printf("  block %2zu: %-16s %6zu -> %6zu bytes (%.1f MB/s "
                    "observed)\n",
                    b.index, std::string(method_name(b.method)).c_str(),
                    b.original_size, b.wire_size,
                    b.bandwidth_estimate_Bps / 1e6);
      }
    }
    raw.shutdown_send();
  });

  transport::TcpTransport client = transport::tcp_connect(listener.port());
  adaptive::AdaptiveReceiver receiver(client);
  Bytes received;
  while (true) {
    const Bytes chunk = receiver.receive_available();
    if (chunk.empty()) break;
    received.insert(received.end(), chunk.begin(), chunk.end());
    if (received.size() >= data.size()) break;
  }
  sender_thread.join();

  std::printf("\nreceiver: %zu bytes across %zu frames, intact=%s\n",
              received.size(), receiver.frames_received(),
              received == data ? "yes" : "NO");
  return 0;
}
